"""Workload patterns.

:class:`PoissonWorkload` implements the §5.5 open-loop model: flows arrive
as a Poisson process whose rate is chosen so the *average* offered load on
the host links equals ``load`` (e.g. 0.5 for the paper's 50%); sources and
destinations are uniform random distinct hosts; sizes come from a
:class:`~repro.traffic.cdf.PiecewiseCdf`.

The helpers below build the paper's microbenchmark patterns: staggered
elephants (Figs. 1/9), incast (last-hop congestion), and permutation
traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.rng import SeedSequenceFactory
from repro.traffic.cdf import PiecewiseCdf
from repro.transport.flow import Flow
from repro.units import SEC


class PoissonWorkload:
    """Pre-generates a deterministic flow list for an open-loop experiment.

    The arrival rate is ``load * n_hosts * host_rate_gbps / (8 * mean_size)``
    flows per second: each host link is offered ``load`` of its capacity on
    average (the standard data-center-simulation convention the paper uses).
    """

    def __init__(
        self,
        n_hosts: int,
        host_rate_gbps: float,
        cdf: PiecewiseCdf,
        load: float,
        seeds: SeedSequenceFactory,
        start_ps: int = 0,
        first_flow_id: int = 0,
    ) -> None:
        if not (0.0 < load < 1.0):
            raise ValueError(f"load must be in (0,1), got {load}")
        if n_hosts < 2:
            raise ValueError("need at least two hosts")
        self.n_hosts = n_hosts
        self.host_rate_gbps = host_rate_gbps
        self.cdf = cdf
        self.load = load
        self.start_ps = start_ps
        self.first_flow_id = first_flow_id
        self._rng = seeds.stream("traffic")
        mean_size = cdf.mean()
        bytes_per_sec = load * n_hosts * host_rate_gbps * 1e9 / 8.0
        self.lambda_flows_per_sec = bytes_per_sec / mean_size

    def generate(self, n_flows: int) -> List[Flow]:
        """The first ``n_flows`` arrivals (deterministic in the seed)."""
        rng = self._rng
        flows: List[Flow] = []
        t = float(self.start_ps)
        mean_gap_ps = SEC / self.lambda_flows_per_sec
        for i in range(n_flows):
            t += rng.expovariate(1.0) * mean_gap_ps
            src = rng.randrange(self.n_hosts)
            dst = rng.randrange(self.n_hosts - 1)
            if dst >= src:
                dst += 1
            size = self.cdf.sample(rng)
            flows.append(
                Flow(
                    self.first_flow_id + i,
                    src,
                    dst,
                    size,
                    start_ps=round(t),
                )
            )
        return flows


def staggered_elephants(
    sender_ids: Sequence[int],
    receiver_id: int,
    size_bytes: int,
    stagger_ps: int,
    first_flow_id: int = 0,
    start_ps: int = 0,
) -> List[Flow]:
    """The Figs. 1/9 pattern: elephant ``i`` starts at ``i * stagger_ps``.
    (Fig. 10: flow0 at t=0, flow1 joins at 300 µs.)"""
    return [
        Flow(
            first_flow_id + i,
            src,
            receiver_id,
            size_bytes,
            start_ps=start_ps + i * stagger_ps,
        )
        for i, src in enumerate(sender_ids)
    ]


def incast_flows(
    sender_ids: Sequence[int],
    receiver_id: int,
    size_bytes: int,
    start_ps: int = 0,
    first_flow_id: int = 0,
) -> List[Flow]:
    """N-to-1 incast: every sender starts simultaneously (last-hop
    congestion, the LHCS showcase)."""
    return [
        Flow(first_flow_id + i, src, receiver_id, size_bytes, start_ps=start_ps)
        for i, src in enumerate(sender_ids)
    ]


def permutation_flows(
    host_ids: Sequence[int],
    size_bytes: int,
    seeds: SeedSequenceFactory,
    start_ps: int = 0,
    first_flow_id: int = 0,
) -> List[Flow]:
    """A random permutation: every host sends one flow, every host receives
    one flow (classic full-bisection stress pattern)."""
    rng = seeds.stream("permutation")
    hosts = list(host_ids)
    n = len(hosts)
    if n < 2:
        raise ValueError("need at least two hosts")
    # Sample a derangement by rejection (expected ~e tries).
    while True:
        perm = hosts[:]
        rng.shuffle(perm)
        if all(a != b for a, b in zip(hosts, perm)):
            break
    return [
        Flow(first_flow_id + i, src, dst, size_bytes, start_ps=start_ps)
        for i, (src, dst) in enumerate(zip(hosts, perm))
    ]
