"""Workload generation.

* :mod:`repro.traffic.cdf` — piecewise-linear flow-size CDF sampler.
* :mod:`repro.traffic.distributions` — the WebSearch (DCTCP) and FB_Hadoop
  flow-size distributions the paper evaluates with (§5.5), plus the Fig. 1a
  hardware-trend dataset.
* :mod:`repro.traffic.generator` — Poisson open-loop load generation at a
  target average link load, plus permutation and incast patterns.
"""

from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.distributions import (
    WEBSEARCH_CDF,
    FB_HADOOP_CDF,
    websearch_cdf,
    fb_hadoop_cdf,
    NVIDIA_SWITCH_TRENDS,
)
from repro.traffic.generator import (
    PoissonWorkload,
    permutation_flows,
    incast_flows,
    staggered_elephants,
)

__all__ = [
    "PiecewiseCdf",
    "WEBSEARCH_CDF",
    "FB_HADOOP_CDF",
    "websearch_cdf",
    "fb_hadoop_cdf",
    "NVIDIA_SWITCH_TRENDS",
    "PoissonWorkload",
    "permutation_flows",
    "incast_flows",
    "staggered_elephants",
]
