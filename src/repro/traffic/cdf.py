"""Piecewise-linear flow-size CDF, the format data-center traces are
published in (and the format HPCC's public simulator consumes)."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np


class PiecewiseCdf:
    """A CDF given as ``(size_bytes, cumulative_probability)`` breakpoints.

    Sampling inverts the CDF with linear interpolation between breakpoints;
    sizes are clamped to >= 1 byte.  ``scale`` multiplies every sampled size
    — the knob DESIGN.md documents for shrinking workloads so pure-Python
    packet simulation stays tractable while preserving the distribution
    *shape* (slowdown is normalized, so comparisons survive scaling).
    """

    def __init__(self, points: Sequence[Tuple[float, float]], scale: float = 1.0) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("probabilities must be non-decreasing")
        if probs[0] < 0 or abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must start >= 0 and end at 1.0")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.sizes = np.asarray(sizes)
        self.probs = np.asarray(probs)
        self.scale = scale

    def sample(self, rng: random.Random) -> int:
        """One flow size in bytes."""
        return self._invert(rng.random())

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling (NumPy generator)."""
        u = rng.random(n)
        sizes = np.interp(u, self.probs, self.sizes) * self.scale
        return np.maximum(1, sizes.round()).astype(np.int64)

    def _invert(self, u: float) -> int:
        size = float(np.interp(u, self.probs, self.sizes)) * self.scale
        return max(1, round(size))

    def mean(self) -> float:
        """Exact mean of the piecewise-linear distribution (scaled)."""
        total = 0.0
        for (s0, p0), (s1, p1) in zip(
            zip(self.sizes, self.probs), zip(self.sizes[1:], self.probs[1:])
        ):
            total += (p1 - p0) * (s0 + s1) / 2.0
        # Probability mass at the first breakpoint (CDF may start above 0).
        total += self.probs[0] * self.sizes[0]
        return total * self.scale

    def quantile(self, q: float) -> int:
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0,1]")
        return self._invert(q)

    def scaled(self, scale: float) -> "PiecewiseCdf":
        """A copy with a different scale factor."""
        pts: List[Tuple[float, float]] = list(zip(self.sizes, self.probs))
        return PiecewiseCdf(pts, scale=scale)
