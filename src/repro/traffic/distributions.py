"""The paper's traffic distributions and the Fig. 1a hardware dataset.

* ``WEBSEARCH_CDF`` — the DCTCP web-search flow-size distribution, as
  published with HPCC's public simulator.  Its breakpoints are exactly the
  x-axis bins of Fig. 14 (10KB ... 30MB), confirming it is the paper's
  WebSearch workload.
* ``FB_HADOOP_CDF`` — the Facebook Hadoop distribution (Roy et al.,
  SIGCOMM'15).  The raw trace is proprietary; this reconstruction matches
  Fig. 15's x-axis bins (75B ... 1MB) and the published shape (most flows
  under a few KB, a thin tail to ~1MB).  Documented substitution in
  DESIGN.md.
* ``NVIDIA_SWITCH_TRENDS`` — Fig. 1a's buffer-vs-capacity points for the
  Spectrum generations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traffic.cdf import PiecewiseCdf
from repro.units import KB, MB

#: (size_bytes, cumulative probability) — DCTCP WebSearch.
WEBSEARCH_CDF: List[Tuple[float, float]] = [
    (6 * KB, 0.00),
    (10 * KB, 0.15),
    (20 * KB, 0.20),
    (30 * KB, 0.30),
    (50 * KB, 0.40),
    (80 * KB, 0.53),
    (200 * KB, 0.60),
    (1 * MB, 0.70),
    (2 * MB, 0.80),
    (5 * MB, 0.90),
    (10 * MB, 0.97),
    (30 * MB, 1.00),
]

#: (size_bytes, cumulative probability) — Facebook Hadoop reconstruction.
FB_HADOOP_CDF: List[Tuple[float, float]] = [
    (70, 0.00),
    (75, 0.05),
    (250, 0.20),
    (350, 0.35),
    (1 * KB, 0.52),
    (2 * KB, 0.65),
    (6 * KB, 0.75),
    (10 * KB, 0.82),
    (15 * KB, 0.87),
    (23 * KB, 0.90),
    (24 * KB, 0.91),
    (25 * KB, 0.92),
    (100 * KB, 0.97),
    (1 * MB, 1.00),
]


def websearch_cdf(scale: float = 1.0) -> PiecewiseCdf:
    """The WebSearch flow-size distribution (optionally size-scaled)."""
    return PiecewiseCdf(WEBSEARCH_CDF, scale=scale)


def fb_hadoop_cdf(scale: float = 1.0) -> PiecewiseCdf:
    """The FB_Hadoop flow-size distribution (optionally size-scaled)."""
    return PiecewiseCdf(FB_HADOOP_CDF, scale=scale)


#: Fig. 1a: NVIDIA Spectrum generations — switch capacity (Tb/s), shared
#: buffer (MB), and the resulting buffer/capacity absorption time (µs).
NVIDIA_SWITCH_TRENDS: Dict[str, Dict[str, float]] = {
    "spectrum (2015.6)": {"capacity_tbps": 3.2, "buffer_mb": 16.8},
    "spectrum-2 (2017.7)": {"capacity_tbps": 6.4, "buffer_mb": 42.0},
    "spectrum-3 (2020.3)": {"capacity_tbps": 12.8, "buffer_mb": 64.0},
    "spectrum-4 (2022.3)": {"capacity_tbps": 51.2, "buffer_mb": 160.0},
}


def buffer_per_capacity_us(capacity_tbps: float, buffer_mb: float) -> float:
    """Burst-absorption time: how long the shared buffer can absorb the
    switch's full capacity (Fig. 1a's y-axis, in microseconds)."""
    if capacity_tbps <= 0 or buffer_mb <= 0:
        raise ValueError("capacity and buffer must be positive")
    bits = buffer_mb * 1e6 * 8
    return bits / (capacity_tbps * 1e12) * 1e6
