"""The §5.4.1 theoretical model (Fig. 12): how long congestion news takes
to reach the sender.

Setting: a path of ``n`` switches sw1..swn, each link with propagation
delay ``d`` and data-frame serialization ``s`` (ACKs are negligible).
Congestion begins at switch ``j`` (1-based) at time t.

* **HPCC** stamps INT onto the next *data* packet passing sw_j; that packet
  still has to reach the receiver (hops j..n), be turned into an ACK, and
  come all the way back (hops n..1).  Delay ≈ time from sw_j to receiver
  with data serialization + full return path.
* **FNCC** stamps the next *ACK* passing sw_j on the return path; the ACK
  only has the remaining hops j-1..1 to travel.  Delay ≈ return path from
  sw_j only.

The paper's qualitative conclusion, which :func:`fncc_gain_ps` makes exact:
the gain (t7−t1 vs t6−t2 vs t5−t3 in Fig. 12) is **largest for first-hop
congestion and smallest for last-hop congestion** — which is precisely why
Alg. 2 (LHCS) exists for the last hop.
"""

from __future__ import annotations

from typing import List

from repro.units import ACK_SIZE, DEFAULT_MTU, serialization_ps, us


class NotificationModel:
    """Closed-form notification latencies on an n-switch symmetric path."""

    def __init__(
        self,
        n_switches: int,
        rate_gbps: float = 100.0,
        prop_delay_ps: int = us(1.5),
        mtu: int = DEFAULT_MTU,
        ack_size: int = ACK_SIZE,
    ) -> None:
        if n_switches < 1:
            raise ValueError("need at least one switch")
        self.n = n_switches
        self.rate_gbps = rate_gbps
        self.d = prop_delay_ps
        self.s_data = serialization_ps(mtu, rate_gbps)
        self.s_ack = serialization_ps(ack_size, rate_gbps)

    # A path host-sw1-...-swn-host has n+1 links.  "Hop j" = switch j's
    # egress toward the receiver, j in 1..n.

    def hpcc_delay_ps(self, hop: int) -> int:
        """Congestion at switch ``hop`` -> sender learns via data-then-ACK."""
        self._check(hop)
        # Data packet: from sw_hop's egress to the receiver = links hop+1..n+1
        # (each store-and-forward: serialize + propagate).
        data_links = self.n + 1 - hop
        forward = data_links * (self.s_data + self.d)
        # ACK: receiver back to sender = all n+1 links.
        back = (self.n + 1) * (self.s_ack + self.d)
        return forward + back

    def fncc_delay_ps(self, hop: int) -> int:
        """Congestion at switch ``hop`` -> the next returning ACK carries it."""
        self._check(hop)
        # The ACK is stamped leaving sw_hop toward the sender: links hop..1.
        return hop * (self.s_ack + self.d)

    def gain_ps(self, hop: int) -> int:
        return self.hpcc_delay_ps(hop) - self.fncc_delay_ps(hop)

    def gain_profile(self) -> List[int]:
        """Gain per congestion hop, hop 1 (first) .. n (last)."""
        return [self.gain_ps(j) for j in range(1, self.n + 1)]

    def _check(self, hop: int) -> None:
        if not (1 <= hop <= self.n):
            raise ValueError(f"hop must be in 1..{self.n}, got {hop}")


def hpcc_notification_delay_ps(n_switches: int, hop: int, **kw) -> int:
    """Convenience wrapper over :class:`NotificationModel`."""
    return NotificationModel(n_switches, **kw).hpcc_delay_ps(hop)


def fncc_notification_delay_ps(n_switches: int, hop: int, **kw) -> int:
    return NotificationModel(n_switches, **kw).fncc_delay_ps(hop)


def fncc_gain_ps(n_switches: int, hop: int, **kw) -> int:
    """How much earlier the FNCC sender hears about congestion at ``hop``."""
    return NotificationModel(n_switches, **kw).gain_ps(hop)
