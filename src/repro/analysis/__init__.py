"""Analytical companions to the packet simulator.

* :mod:`repro.analysis.notification` — the §5.4.1 theoretical model
  (Fig. 12): closed-form notification latency of HPCC vs FNCC per
  congestion hop, and the predicted gain ordering
  first > middle > last.
* :mod:`repro.analysis.fluid` — the Eq. 1-3 fluid model: dq/dt =
  sum(W_i)/RTT - B integrated with scipy, predicting queue trajectories
  and the fair-share fixed point W_i = B*RTT/N that motivates LHCS.
* :mod:`repro.analysis.flowsim` — a flow-level max-min simulator (no
  packets): orders-of-magnitude faster, used to cross-validate FCT trends
  at paper scale (k=8, 128 hosts) where packet simulation is impractical
  in Python.
"""

from repro.analysis.notification import (
    NotificationModel,
    hpcc_notification_delay_ps,
    fncc_notification_delay_ps,
    fncc_gain_ps,
)
from repro.analysis.fluid import FluidLink, fair_window, simulate_queue
from repro.analysis.flowsim import FlowLevelSimulator, FlowSimResult

__all__ = [
    "NotificationModel",
    "hpcc_notification_delay_ps",
    "fncc_notification_delay_ps",
    "fncc_gain_ps",
    "FluidLink",
    "fair_window",
    "simulate_queue",
    "FlowLevelSimulator",
    "FlowSimResult",
]
