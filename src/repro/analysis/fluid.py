"""The Eq. 1-3 fluid model of the bottleneck queue.

Equation 1:  dq/dt = sum_i W_i(t)/RTT − Bandwidth
Equation 2:  at the fixed point, sum_i W_i/RTT = Bandwidth
Equation 3:  with equal windows, W_i = Bandwidth * RTT / N

:func:`simulate_queue` integrates Eq. 1 with scipy for an arbitrary window
schedule, which lets tests verify both the queue-growth phase the paper's
Fig. 1 motivates and the Observation-4 fixed point LHCS jumps to.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy.integrate import solve_ivp


class FluidLink:
    """A bottleneck link in the fluid model."""

    __slots__ = ("bandwidth_gbps", "rtt_ps")

    def __init__(self, bandwidth_gbps: float, rtt_ps: int) -> None:
        if bandwidth_gbps <= 0 or rtt_ps <= 0:
            raise ValueError("bandwidth and RTT must be positive")
        self.bandwidth_gbps = bandwidth_gbps
        self.rtt_ps = rtt_ps

    @property
    def bandwidth_bytes_per_ps(self) -> float:
        return self.bandwidth_gbps / 8000.0

    @property
    def bdp_bytes(self) -> float:
        return self.bandwidth_bytes_per_ps * self.rtt_ps


def fair_window(link: FluidLink, n_flows: int, beta: float = 1.0) -> float:
    """Equation 3: W_i = B * RTT * beta / N (beta < 1 drains the queue)."""
    if n_flows < 1:
        raise ValueError("need at least one flow")
    if not (0.0 < beta <= 1.0):
        raise ValueError("beta must be in (0, 1]")
    return link.bdp_bytes * beta / n_flows


def simulate_queue(
    link: FluidLink,
    window_fns: Sequence[Callable[[float], float]],
    t_end_ps: float,
    q0_bytes: float = 0.0,
    n_points: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate Eq. 1 for per-flow window schedules ``W_i(t)`` (bytes as a
    function of time in ps).  The queue is clipped at zero (a link cannot
    owe bytes).  Returns (times_ps, queue_bytes)."""
    if t_end_ps <= 0:
        raise ValueError("t_end must be positive")
    b = link.bandwidth_bytes_per_ps
    rtt = link.rtt_ps

    def dq(t: float, q: np.ndarray) -> List[float]:
        arrival = sum(fn(t) for fn in window_fns) / rtt
        rate = arrival - b
        if q[0] <= 0.0 and rate < 0.0:
            return [0.0]
        return [rate]

    ts = np.linspace(0.0, float(t_end_ps), n_points)
    sol = solve_ivp(dq, (0.0, float(t_end_ps)), [q0_bytes], t_eval=ts, max_step=t_end_ps / 50)
    q = np.clip(sol.y[0], 0.0, None)
    return sol.t, q


def queue_growth_rate_bytes_per_ps(
    link: FluidLink, windows_bytes: Sequence[float]
) -> float:
    """Instantaneous dq/dt for fixed windows (Eq. 1's right-hand side)."""
    return sum(windows_bytes) / link.rtt_ps - link.bandwidth_bytes_per_ps


def is_fixed_point(
    link: FluidLink, windows_bytes: Sequence[float], tolerance: float = 1e-9
) -> bool:
    """Equation 2: the queue is stationary when offered rate equals B."""
    return abs(queue_growth_rate_bytes_per_ps(link, windows_bytes)) <= tolerance
