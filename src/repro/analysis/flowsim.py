"""Flow-level (fluid) network simulator: max-min fair sharing, no packets.

Use case (DESIGN.md): cross-validating FCT *trends* at the paper's full
scale (k=8 fat-tree, 128 hosts, thousands of flows), where packet-level
simulation in Python is impractical — and, since the hybrid backend
(DESIGN.md §6), serving as its fluid tier.  A congestion-controlled fabric
in steady state approximates max-min fairness, so this model predicts the
workload-level shape (which size bins suffer, where the load knee is) that
an ideally-converging CC — FNCC's aspiration — would achieve.

Mechanics: this module is a thin façade over the incremental engine in
:mod:`repro.hybrid.fluid` — heap-based progressive waterfilling that
re-solves only the flows sharing a link with each arrival/completion,
instead of the seed's O(L²)-per-event full recompute.  Completion times
are normalized against the flow's *solo* service time: a flow's FCT is
``ideal_fct_ps × (actual service time / solo service time)``, so a flow
that never shares a link lands at a slowdown of exactly 1.0 and a
contended flow's slowdown is its fluid service-time inflation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.hybrid.fluid import FluidEngine
from repro.metrics.ideal import ideal_fct_ps
from repro.transport.flow import Flow, FlowRecord
from repro.units import DEFAULT_MTU

LinkKey = Tuple[Hashable, Hashable]
PathFn = Callable[[Flow], List[LinkKey]]

#: Bound on the per-topology path memo in :func:`from_topology` (entries
#: are (src, dst, flow_id) triples; the memo is cleared, not evicted).
_PATH_MEMO_MAX = 1 << 18


class FlowSimResult:
    """Completion records with paper-comparable slowdowns, plus the
    per-flow fluid windows and per-link congestion/background data the
    hybrid tier boundary consumes."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []
        #: flow_id -> (start_ps, fluid finish time in float ps).
        self.windows: Dict[int, Tuple[int, float]] = {}
        #: flow_id -> resolved path (list of directed LinkKeys).
        self.paths: Dict[int, List[LinkKey]] = {}
        #: LinkKey -> merged [(t0, t1)] congestion intervals (only when
        #: ``run(congestion=...)`` was requested).
        self.congestion_intervals: Dict[LinkKey, List[Tuple[float, float]]] = {}
        #: LinkKey -> {epoch index: offered bytes} for the tracked subset
        #: (only when ``run(bg=...)`` was requested).
        self.bg_bytes: Dict[LinkKey, Dict[int, float]] = {}
        self.n_events = 0
        self.end_time = 0.0
        self.max_active = 0
        self.n_rate_changes = 0
        self.n_waterfills = 0

    def add(self, rec: FlowRecord) -> None:
        self.records.append(rec)

    def slowdowns(self) -> List[float]:
        return [r.slowdown for r in self.records]

    def completed(self) -> int:
        return len(self.records)


class FlowLevelSimulator:
    """Max-min fluid simulator over a directed-capacity link set."""

    def __init__(self) -> None:
        self._capacity: Dict[LinkKey, float] = {}  # bytes/ps
        self._link_attrs: Dict[LinkKey, Tuple[float, int]] = {}  # (gbps, prop)
        # Dense link-id view reused across runs (the engine's index space).
        self._link_ids: Dict[LinkKey, int] = {}
        self._caps: List[float] = []
        self._id_to_key: List[LinkKey] = []

    def add_link(
        self, u: Hashable, v: Hashable, rate_gbps: float, prop_delay_ps: int = 0
    ) -> None:
        """A full-duplex link: two independent directed capacities."""
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        for key in ((u, v), (v, u)):
            self._capacity[key] = rate_gbps / 8000.0
            self._link_attrs[key] = (rate_gbps, prop_delay_ps)
            lid = self._link_ids.get(key)
            if lid is None:
                self._link_ids[key] = len(self._caps)
                self._caps.append(rate_gbps / 8000.0)
                self._id_to_key.append(key)
            else:
                self._caps[lid] = rate_gbps / 8000.0

    @property
    def n_links(self) -> int:
        return len(self._capacity)

    # -- event loop ------------------------------------------------------------------
    def run(
        self,
        flows: Sequence[Flow],
        path_fn: PathFn,
        mtu: int = DEFAULT_MTU,
        header: int = 48,
        congestion: Optional[Tuple[float, int]] = None,
        bg: Optional[Tuple[int, Sequence[LinkKey], Sequence[int]]] = None,
        cap_schedule: Optional[Sequence[Tuple[int, LinkKey, float]]] = None,
        rate_eps: float = 0.02,
        ripple_rounds: Optional[int] = None,
    ) -> FlowSimResult:
        """Simulate the flow set; returns completion records with slowdowns
        normalized exactly like the packet simulator's.

        The keyword hooks are the hybrid tier boundary (DESIGN.md §6):
        ``congestion=(util_threshold, min_flows)`` records per-link
        congested intervals; ``bg=(epoch_ps, link_keys, flow_ids)``
        accumulates the named flows' offered bytes per (link, epoch);
        ``cap_schedule=[(t_ps, link_key, rate_gbps), ...]`` applies
        piecewise-constant capacity changes (residual capacity feedback).
        """
        result = FlowSimResult()
        link_ids = self._link_ids

        bg_cfg = None
        tracked: frozenset = frozenset()
        if bg is not None:
            epoch_ps, bg_keys, bg_flow_ids = bg
            bg_cfg = (epoch_ps, [link_ids[k] for k in bg_keys if k in link_ids])
            tracked = frozenset(bg_flow_ids)
        sched = None
        if cap_schedule:
            sched = [
                (t, link_ids[k], rate_gbps / 8000.0)
                for (t, k, rate_gbps) in cap_schedule
            ]

        engine = FluidEngine(
            self._caps,
            congestion=congestion,
            bg=bg_cfg,
            cap_schedule=sched,
            rate_eps=rate_eps,
            ripple_rounds=ripple_rounds,
        )

        # Flows are serviced in *wire bytes* (payload inflated by per-frame
        # header overhead) so solo service times match the header-aware
        # ideal FCT's transmission component.
        wire_factor = mtu / (mtu - header)
        meta: List[Tuple[Flow, int]] = []
        for f in flows:
            path = list(path_fn(f))
            if not path:
                raise ValueError(f"flow {f.flow_id}: empty path")
            lids = []
            for lk in path:
                lid = link_ids.get(lk)
                if lid is None:
                    raise KeyError(f"flow {f.flow_id}: unknown link {lk}")
                lids.append(lid)
            links = [self._link_attrs[lk] for lk in path]
            ideal = ideal_fct_ps(f.size_bytes, links, mtu=mtu, header=header)
            engine.add_flow(
                lids,
                f.size_bytes * wire_factor,
                f.start_ps,
                tracked=f.flow_id in tracked,
            )
            meta.append((f, ideal))
            result.paths[f.flow_id] = path

        for r in engine.run():
            f, ideal = meta[r.index]
            if r.clean:
                # Rate never deviated from the solo bottleneck rate: the
                # service ratio is exactly 1, no float residue.
                fct = ideal
            else:
                s_solo = (f.size_bytes * wire_factor) / r.solo_rate
                fct = round(ideal * ((r.finish - r.start) / s_solo))
            rec = FlowRecord(f, f.start_ps + fct)
            rec.ideal_fct_ps = ideal
            result.add(rec)
            result.windows[f.flow_id] = (f.start_ps, r.finish)

        inv = self._id_to_key
        result.congestion_intervals = {
            inv[l]: iv for l, iv in engine.congestion_intervals.items()
        }
        result.bg_bytes = {inv[l]: d for l, d in engine.bg_bytes.items() if d}
        result.n_events = engine.n_events
        result.end_time = engine.end_time
        result.max_active = engine.max_active
        result.n_rate_changes = engine.n_rate_changes
        result.n_waterfills = engine.n_waterfills
        return result


def from_topology(topo) -> Tuple[FlowLevelSimulator, PathFn]:
    """Build a flow-level simulator mirroring a packet
    :class:`~repro.topo.base.Topology`, with a path function that follows
    the *same ECMP decisions* as the packet switches (so the two simulators
    are comparable flow by flow).

    When every switch routes statically per flow (hand-wired tables or a
    ``train_transparent`` strategy), resolved paths are memoized per
    ``(src, dst, flow_id)`` — the flow id must stay in the key because
    ECMP hashes it, so a plain ``(src, dst)`` key would collapse the
    fabric's path diversity.  The memo is invalidated whenever
    :func:`repro.lb.install_lb` installs a new strategy (it bumps
    ``topo.routing_epoch``), and bounded at ``_PATH_MEMO_MAX`` entries.
    """
    from repro.net.packet import DATA, Packet

    fls = FlowLevelSimulator()
    for u, v, attrs in topo.graph.edges(data=True):
        fls.add_link(u, v, attrs["rate_gbps"], attrs["prop_delay_ps"])

    # One probe frame reused across walks (static routers read only the
    # (flow_id, src, dst) triple); per-switch port->peer-name tables kill
    # the per-hop attribute chases of the naive walk.
    probe = Packet(DATA, flow_id=0, src=0, dst=1)
    state = {"epoch": None, "memo": {}, "peers": {}, "static": False}

    def _refresh() -> None:
        state["epoch"] = getattr(topo, "routing_epoch", 0)
        state["memo"] = {}
        state["peers"] = {}
        state["static"] = all(
            getattr(sw, "lb", None) is None or sw.lb.train_transparent
            for sw in topo.switches
        )

    def path_fn(flow: Flow) -> List[LinkKey]:
        if state["epoch"] != getattr(topo, "routing_epoch", 0):
            _refresh()
        static = state["static"]
        if static:
            hit = state["memo"].get((flow.src, flow.dst, flow.flow_id))
            if hit is not None:
                return hit
            pkt = probe
            pkt.flow_id = flow.flow_id
            pkt.src = flow.src
            pkt.dst = flow.dst
        else:
            # Dynamic strategies may mutate the frame they route; give
            # them a fresh one like the packet engine would.
            pkt = Packet(DATA, flow_id=flow.flow_id, src=flow.src, dst=flow.dst)
        src_name = topo.hosts[flow.src].name
        dst_name = topo.hosts[flow.dst].name
        current = next(iter(topo.graph[src_name]))
        hops: List[LinkKey] = [(src_name, current)]
        peers = state["peers"]
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop in path_fn")
            sw = topo.node(current)
            out = sw.router(sw, pkt)
            table = peers.get(current)
            if table is None:
                table = peers[current] = [
                    p.peer.node.name if p.peer is not None else None
                    for p in sw.ports
                ]
            peer = table[out]
            hops.append((current, peer))
            if peer == dst_name:
                break
            current = peer
        if static:
            memo = state["memo"]
            if len(memo) >= _PATH_MEMO_MAX:
                memo.clear()
            memo[(flow.src, flow.dst, flow.flow_id)] = hops
        return hops

    return fls, path_fn
