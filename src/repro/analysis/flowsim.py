"""Flow-level (fluid) network simulator: max-min fair sharing, no packets.

Use case (DESIGN.md): cross-validating FCT *trends* at the paper's full
scale (k=8 fat-tree, 128 hosts, thousands of flows), where packet-level
simulation in Python is impractical.  A congestion-controlled fabric in
steady state approximates max-min fairness, so this model predicts the
workload-level shape (which size bins suffer, where the load knee is) that
an ideally-converging CC — FNCC's aspiration — would achieve.

Mechanics: between flow arrivals/completions, every active flow gets its
max-min fair rate (progressive waterfilling over directed links); the next
event is the earliest completion under those rates.  Completion times then
get the path's base store-and-forward latency added so slowdowns are
comparable with :func:`repro.metrics.ideal.ideal_fct_ps`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.metrics.ideal import ideal_fct_ps
from repro.transport.flow import Flow, FlowRecord
from repro.units import DEFAULT_MTU, serialization_ps

LinkKey = Tuple[Hashable, Hashable]
PathFn = Callable[[Flow], List[LinkKey]]


class FlowSimResult:
    """Completion records with paper-comparable slowdowns."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []

    def add(self, rec: FlowRecord) -> None:
        self.records.append(rec)

    def slowdowns(self) -> List[float]:
        return [r.slowdown for r in self.records]

    def completed(self) -> int:
        return len(self.records)


class FlowLevelSimulator:
    """Max-min fluid simulator over a directed-capacity link set."""

    def __init__(self) -> None:
        self._capacity: Dict[LinkKey, float] = {}  # bytes/ps
        self._link_attrs: Dict[LinkKey, Tuple[float, int]] = {}  # (gbps, prop)

    def add_link(
        self, u: Hashable, v: Hashable, rate_gbps: float, prop_delay_ps: int = 0
    ) -> None:
        """A full-duplex link: two independent directed capacities."""
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        for key in ((u, v), (v, u)):
            self._capacity[key] = rate_gbps / 8000.0
            self._link_attrs[key] = (rate_gbps, prop_delay_ps)

    @property
    def n_links(self) -> int:
        return len(self._capacity)

    # -- max-min waterfilling -----------------------------------------------------
    def _fair_rates(
        self, flows_on_link: Dict[LinkKey, List[int]], flow_links: Dict[int, List[LinkKey]]
    ) -> Dict[int, float]:
        rates: Dict[int, float] = {}
        remaining = {k: self._capacity[k] for k, v in flows_on_link.items() if v}
        unfrozen: Dict[LinkKey, set] = {
            k: set(v) for k, v in flows_on_link.items() if v
        }
        while remaining:
            # The tightest link determines the next freezing level.
            key, cap = min(
                remaining.items(), key=lambda kv: kv[1] / max(1, len(unfrozen[kv[0]]))
            )
            users = unfrozen[key]
            if not users:
                del remaining[key]
                continue
            share = cap / len(users)
            for fid in list(users):
                rates[fid] = share
                # Freeze this flow everywhere, returning unused capacity.
                for lk in flow_links[fid]:
                    if lk in remaining:
                        remaining[lk] -= share
                        unfrozen[lk].discard(fid)
                        if not unfrozen[lk]:
                            del remaining[lk]
                            del unfrozen[lk]
        return rates

    # -- event loop ------------------------------------------------------------------
    def run(
        self,
        flows: Sequence[Flow],
        path_fn: PathFn,
        mtu: int = DEFAULT_MTU,
        header: int = 48,
    ) -> FlowSimResult:
        """Simulate the flow set; returns completion records with slowdowns
        normalized exactly like the packet simulator's."""
        result = FlowSimResult()
        arrivals = sorted(flows, key=lambda f: f.start_ps)
        paths: Dict[int, List[LinkKey]] = {}
        path_latency: Dict[int, int] = {}
        ideal: Dict[int, int] = {}
        for f in arrivals:
            path = list(path_fn(f))
            if not path:
                raise ValueError(f"flow {f.flow_id}: empty path")
            for lk in path:
                if lk not in self._capacity:
                    raise KeyError(f"flow {f.flow_id}: unknown link {lk}")
            paths[f.flow_id] = path
            links = [
                (self._link_attrs[lk][0], self._link_attrs[lk][1]) for lk in path
            ]
            ideal[f.flow_id] = ideal_fct_ps(f.size_bytes, links, mtu=mtu, header=header)
            # Base latency of the last byte once transmission finishes:
            # remaining hops' store-and-forward + propagation.
            last = links[-1]
            path_latency[f.flow_id] = sum(d for _, d in links) + sum(
                serialization_ps(min(mtu, f.size_bytes + header), r) for r, _ in links[1:]
            )

        # Flows are serviced in *wire bytes* (payload inflated by per-frame
        # header overhead) so single-flow slowdowns land at exactly 1.0
        # against the header-aware ideal FCT.
        wire_factor = mtu / (mtu - header)
        remaining: Dict[int, float] = {}
        active: Dict[int, Flow] = {}
        now = 0.0
        i = 0
        n = len(arrivals)
        while active or i < n:
            # Admit everything arriving at `now`.
            if not active and i < n and arrivals[i].start_ps > now:
                now = float(arrivals[i].start_ps)
            while i < n and arrivals[i].start_ps <= now:
                f = arrivals[i]
                active[f.flow_id] = f
                remaining[f.flow_id] = f.size_bytes * wire_factor
                i += 1
            # Fair rates for the current active set.
            flows_on_link: Dict[LinkKey, List[int]] = {}
            flow_links = {fid: paths[fid] for fid in active}
            for fid, path in flow_links.items():
                for lk in path:
                    flows_on_link.setdefault(lk, []).append(fid)
            rates = self._fair_rates(flows_on_link, flow_links)
            # Next event: earliest completion or next arrival.
            t_complete = min(
                (remaining[fid] / rates[fid], fid)
                for fid in active
                if rates.get(fid, 0) > 0
            )
            dt_arrival = (arrivals[i].start_ps - now) if i < n else float("inf")
            dt = min(t_complete[0], dt_arrival)
            now += dt
            for fid in list(active):
                remaining[fid] -= rates.get(fid, 0.0) * dt
                if remaining[fid] <= 1e-6:
                    f = active.pop(fid)
                    del remaining[fid]
                    rec = FlowRecord(f, round(now) + path_latency[fid])
                    rec.ideal_fct_ps = ideal[fid]
                    result.add(rec)
        return result


def from_topology(topo) -> Tuple[FlowLevelSimulator, PathFn]:
    """Build a flow-level simulator mirroring a packet
    :class:`~repro.topo.base.Topology`, with a path function that follows
    the *same ECMP decisions* as the packet switches (so the two simulators
    are comparable flow by flow)."""
    from repro.net.packet import DATA, Packet

    fls = FlowLevelSimulator()
    for u, v, attrs in topo.graph.edges(data=True):
        fls.add_link(u, v, attrs["rate_gbps"], attrs["prop_delay_ps"])

    def path_fn(flow: Flow) -> List[LinkKey]:
        pkt = Packet(DATA, flow_id=flow.flow_id, src=flow.src, dst=flow.dst)
        src_name = topo.hosts[flow.src].name
        dst_name = topo.hosts[flow.dst].name
        current = next(iter(topo.graph[src_name]))
        hops: List[LinkKey] = [(src_name, current)]
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop in path_fn")
            sw = topo.node(current)
            out = sw.router(sw, pkt)
            peer = sw.ports[out].peer.node.name
            hops.append((current, peer))
            if peer == dst_name:
                return hops
            current = peer

    return fls, path_fn
