"""Sharded experiment drivers: partition, run, merge (DESIGN.md §11).

The drivers own the three steps the runtime deliberately does not:

1. **Plan** — build a throwaway serial topology, derive the partition
   (dumbbell chain split / fat-tree pod split) and discard the fabric;
   only the plain ownership map travels further.
2. **Run** — spin up :class:`InProcessShards` or :class:`ProcessShards`
   over the matching builder and drive :func:`run_sharded`.
3. **Merge** — fold the per-shard plain-data payloads into one result
   comparable with the serial experiment: concatenated port stats, a
   summed PFC ledger, unioned FCT records, merged obs snapshots, one
   Chrome trace with a pid per shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.series import TimeSeries
from repro.shard.partition import PartitionPlan, dumbbell_plan, fattree_plan
from repro.shard.runtime import (
    InProcessShards,
    ProcessShards,
    build_engine,
    run_sharded,
)
from repro.units import MS, us


def _merge_portstats(payloads: Dict[int, dict]) -> List[tuple]:
    rows: List[tuple] = []
    for sid in sorted(payloads):
        rows.extend(tuple(r) for r in payloads[sid]["portstats"])
    return sorted(rows)


def _merge_pfc(payloads: Dict[int, dict]) -> Dict[str, int]:
    totals = {"pause_sent": 0, "pause_received": 0, "resume_sent": 0, "resume_received": 0}
    for payload in payloads.values():
        for key in totals:
            totals[key] += payload["pfc"][key]
    return totals


def _rebuild_series(data: Optional[tuple], name: str) -> Optional[TimeSeries]:
    if data is None:
        return None
    ts = TimeSeries(name)
    times, values = data
    for t, v in zip(times, values):
        ts.append(t, v)
    return ts


class _TracerShim:
    """Just enough of :class:`~repro.obs.trace.EventTracer` for
    :func:`~repro.obs.export.export_chrome_trace`: an ``events`` list
    rebuilt from the plain dicts a process-backed shard shipped home."""

    __slots__ = ("events", "dropped")

    def __init__(self, event_dicts: List[dict], dropped: int = 0) -> None:
        self.dropped = dropped
        from repro.obs.trace import TraceEvent

        self.events = [
            TraceEvent(
                d["ts_ps"],
                d["cat"],
                d["name"],
                ph=d.get("ph", "i"),
                dur_ps=d.get("dur_ps", 0),
                args=d.get("args"),
            )
            for d in event_dicts
        ]


def export_shard_trace(path: str, payloads: Dict[int, dict]) -> Optional[str]:
    """One Chrome trace for the whole sharded run — pid = shard id, so
    the boundary exchanges line up across process rows in the viewer.
    Returns ``path``, or None when no shard traced."""
    from repro.obs.export import export_chrome_trace

    cells = [
        (
            f"shard{sid}",
            _TracerShim(
                payloads[sid]["trace_events"],
                payloads[sid].get("trace_dropped", 0),
            ),
        )
        for sid in sorted(payloads)
        if "trace_events" in payloads[sid]
    ]
    if not cells:
        return None
    export_chrome_trace(path, cells)
    return path


class ShardedRunResult:
    """Merged result of a sharded run, shaped for serial comparison.

    ``events_dispatched`` is reported per shard and deliberately left
    out of every identity witness: injection bounce events and the
    remote copies' monitor ticks make the totals legitimately differ
    from the serial engine's while all physical counters stay
    byte-identical.
    """

    def __init__(self, plan: PartitionPlan, payloads: Dict[int, dict], end_ps: int) -> None:
        self.plan = plan
        self.payloads = payloads
        self.end_ps = end_ps
        self.portstats = _merge_portstats(payloads)
        self.pfc = _merge_pfc(payloads)
        self.pause_frames = sum(p["pause_frames"] for p in payloads.values())
        self.events_by_shard = {
            sid: p["events_dispatched"] for sid, p in payloads.items()
        }
        self.boundary = {sid: p["boundary"] for sid, p in payloads.items()}

    def portstats_fingerprint(self) -> tuple:
        return tuple(self.portstats)


class ShardedMicrobenchResult(ShardedRunResult):
    """Sharded counterpart of ``MicrobenchSummary``: the plotted series
    live on whichever shard owned the monitored objects; merging is a
    union (each series exists exactly once)."""

    def __init__(self, plan, payloads, end_ps) -> None:
        super().__init__(plan, payloads, end_ps)
        self.queue = None
        self.utilization = None
        self.rates: Dict[int, TimeSeries] = {}
        for sid in sorted(payloads):
            p = payloads[sid]
            if p["queue"] is not None:
                self.queue = _rebuild_series(p["queue"], "qlen")
            if p["utilization"] is not None:
                self.utilization = _rebuild_series(p["utilization"], "util")
            for fid, data in p["rates"].items():
                self.rates[int(fid)] = _rebuild_series(data, f"rate:{fid}")

    def series_fingerprint(self) -> tuple:
        """The serial ``MicrobenchSummary.fingerprint()`` minus
        ``events_dispatched`` (see class docstring)."""
        return (
            self.pause_frames,
            tuple(self.queue.times),
            tuple(self.queue.values),
            tuple(
                (fid, tuple(s.times), tuple(s.values))
                for fid, s in sorted(self.rates.items())
            ),
            tuple(self.utilization.times),
            tuple(self.utilization.values),
        )


class ShardedFctResult(ShardedRunResult):
    """Sharded counterpart of ``FctResult``: each flow's record was
    written exactly once, on the shard owning its receiver."""

    def __init__(self, plan, payloads, end_ps) -> None:
        super().__init__(plan, payloads, end_ps)
        self.records: List[tuple] = sorted(
            rec for p in payloads.values() for rec in p["records"]
        )
        self.n_flows = next(iter(payloads.values()))["n_flows"]
        self.bins = list(next(iter(payloads.values()))["bins"])

    @property
    def completed(self) -> int:
        return len(self.records)

    def fct_fingerprint(self) -> tuple:
        """Identical to ``FctResult.fct_fingerprint()``: sorted
        ``(flow_id, fct_ps)``."""
        return tuple((fid, fct_ps) for fid, fct_ps, _size, _sd in self.records)

    def slowdown_table(self):
        from repro.metrics.fct import SlowdownTable

        table = SlowdownTable(self.bins)
        for _fid, _fct, size, slowdown in self.records:
            table.add(size, slowdown)
        return table


def _make_group(build: dict, plan: PartitionPlan, process: bool, dump_dir):
    if process:
        return ProcessShards(build, plan, dump_dir=dump_dir)
    engines = [
        build_engine(build, plan.to_dict(), sid) for sid in range(plan.n_shards)
    ]
    return InProcessShards(engines)


def run_sharded_microbench(
    cc: str,
    n_shards: int = 2,
    process: bool = False,
    duration_us: float = 700.0,
    trace_path: Optional[str] = None,
    dump_dir: Optional[str] = None,
    window_ps: Optional[int] = None,
    **kwargs,
) -> ShardedMicrobenchResult:
    """Sharded :func:`~repro.experiments.common.run_microbench` over the
    dumbbell chain, split into ``n_shards`` contiguous switch runs."""
    from repro.experiments.common import run_microbench

    # Plan off a throwaway serial build (cheap: nothing runs).  The
    # builder-only knobs (trains pinning, crash bombs) don't exist on
    # the serial entry point.
    probe_kwargs = {
        k: v
        for k, v in kwargs.items()
        if k not in ("trains", "crash_at_us", "crash_shard")
    }
    probe = run_microbench(cc, duration_us=0.0, **probe_kwargs)
    plan = dumbbell_plan(probe.topo, n_shards)
    del probe

    build = {
        "fn": "repro.shard.builders:build_microbench_shard",
        "kwargs": dict(kwargs, cc=cc, trace=trace_path is not None),
    }
    group = _make_group(build, plan, process, dump_dir)
    try:
        end = run_sharded(group, plan, until=us(duration_us), window_ps=window_ps)
        payloads = group.collect_all()
    finally:
        group.stop()
    result = ShardedMicrobenchResult(plan, payloads, end)
    if trace_path is not None:
        export_shard_trace(trace_path, payloads)
    return result


def run_sharded_fct(
    cc: str,
    shards: int = 2,
    process: bool = False,
    workload: str = "websearch",
    max_horizon_ms: float = 50.0,
    trace_path: Optional[str] = None,
    dump_dir: Optional[str] = None,
    **kwargs,
) -> ShardedFctResult:
    """Sharded §5.5 FCT experiment: the k-ary fat-tree is split at the
    agg↔core boundary into ``shards`` pod groups (cores ride shard 0).

    Stop rule matches the serial driver exactly: completion is checked
    only at ``MS // 2`` chunk boundaries (every window divides the
    chunk), so the final barrier lands on the same timestamp serial
    ``drive_fct`` would have stopped at.
    """
    from repro.experiments.fct_experiment import build_fct_fabric

    probe_kwargs = {
        k: v
        for k, v in kwargs.items()
        if k not in ("trains", "crash_at_us", "crash_shard")
    }
    fab = build_fct_fabric(cc, workload=workload, **probe_kwargs)
    plan = fattree_plan(fab.topo, shards)
    n_flows = len(fab.flows)
    del fab

    build = {
        "fn": "repro.shard.builders:build_fct_shard",
        "kwargs": dict(kwargs, cc=cc, workload=workload, trace=trace_path is not None),
    }
    group = _make_group(build, plan, process, dump_dir)
    try:
        end = run_sharded(
            group,
            plan,
            chunk_ps=MS // 2,
            target=n_flows,
            max_horizon_ps=round(max_horizon_ms * MS),
        )
        payloads = group.collect_all()
    finally:
        group.stop()
    result = ShardedFctResult(plan, payloads, end)
    if trace_path is not None:
        export_shard_trace(trace_path, payloads)
    return result
