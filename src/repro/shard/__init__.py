"""Topology-partitioned parallel simulation (DESIGN.md §11).

A fabric is cut at switch–switch boundaries into per-shard sub-fabrics;
each shard runs a complete, independently-built copy of the topology but
only *owns* (launches flows on, reports counters for) its partition.
Shards advance their event heaps in lockstep windows bounded by the cut
links' propagation delay (the conservative lookahead) and exchange
boundary-crossing frames as plain-data messages at each barrier.

Correctness bar: byte-identical FCT and PortStats fingerprints versus
the serial engine — pinned by ``tests/shard``.
"""

from repro.shard.partition import (
    Cut,
    PartitionError,
    PartitionPlan,
    dumbbell_plan,
    fattree_plan,
    plan_partition,
)
from repro.shard.messages import decode_frame, encode_frame
from repro.shard.boundary import Boundary, rewire_boundaries
from repro.shard.runtime import (
    ShardCrash,
    ShardEngine,
    aligned_window,
    run_sharded,
)
from repro.shard.drivers import (
    run_sharded_fct,
    run_sharded_microbench,
)

__all__ = [
    "Boundary",
    "Cut",
    "PartitionError",
    "PartitionPlan",
    "ShardCrash",
    "ShardEngine",
    "aligned_window",
    "decode_frame",
    "dumbbell_plan",
    "encode_frame",
    "fattree_plan",
    "plan_partition",
    "rewire_boundaries",
    "run_sharded",
    "run_sharded_fct",
    "run_sharded_microbench",
]
