"""Topology partitioner: cut a fabric into shards at switch boundaries.

A partition is an ownership map ``node name -> shard id``.  The cut set
falls out of it: every link whose endpoints land on different shards is
a *boundary link*.  Two rules make the §4.1 tie discipline survive the
cut (DESIGN.md §11):

* **Only switch–switch links may be cut.**  The ordering-sensitive tie
  classes — same-egress-queue enqueue order and the same-tick host-NIC
  barrier — involve a host endpoint or frames meeting *inside* one
  switch; keeping every host on the same shard as its edge switch keeps
  both classes intra-shard, where the serial heap order rules.
* **The lookahead window is the minimum propagation delay over the cut
  set.**  A frame finishing serialization in window ``k`` cannot arrive
  at the remote side before ``H_k + min_prop``, i.e. strictly inside
  window ``k+1`` — so exchanging frames at barriers is conservative
  (never delivers late) and complete (never misses one).

Plans are plain data (``to_dict``/``from_dict``) so the process-backed
runtime can ship them to spawn workers and re-derive the cut set against
the worker's own independently-built copy of the topology.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.topo.base import Topology


class PartitionError(ValueError):
    """The ownership map violates a partition rule."""


class Cut:
    """One boundary link: the edge ``(a, b)`` with its propagation delay.

    ``index`` is the cut's stable id across shards and processes: cuts
    are enumerated in the topology's deterministic edge-insertion order,
    which is identical on every shard because every shard builds the
    same topology from the same seed.
    """

    __slots__ = ("index", "a", "b", "owner_a", "owner_b", "prop_delay_ps")

    def __init__(
        self,
        index: int,
        a: str,
        b: str,
        owner_a: int,
        owner_b: int,
        prop_delay_ps: int,
    ) -> None:
        self.index = index
        self.a = a
        self.b = b
        self.owner_a = owner_a
        self.owner_b = owner_b
        self.prop_delay_ps = prop_delay_ps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cut {self.index}: {self.a}(s{self.owner_a}) -- "
            f"{self.b}(s{self.owner_b}) prop={self.prop_delay_ps}ps>"
        )


class PartitionPlan:
    """An ownership map plus the derived cut set and lookahead."""

    __slots__ = ("n_shards", "owner", "cuts", "lookahead_ps")

    def __init__(
        self, n_shards: int, owner: Dict[str, int], cuts: List[Cut], lookahead_ps: int
    ) -> None:
        self.n_shards = n_shards
        self.owner = owner
        self.cuts = cuts
        self.lookahead_ps = lookahead_ps

    def shard_nodes(self, shard_id: int) -> List[str]:
        return [n for n, s in self.owner.items() if s == shard_id]

    def to_dict(self) -> dict:
        """Plain-data form: ownership only — workers re-derive the cut
        set from their own topology copy via :func:`plan_partition`."""
        return {"n_shards": self.n_shards, "owner": dict(self.owner)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionPlan shards={self.n_shards} cuts={len(self.cuts)} "
            f"lookahead={self.lookahead_ps}ps>"
        )


def plan_partition(
    topo: Topology, owner: Mapping[str, int], n_shards: Optional[int] = None
) -> PartitionPlan:
    """Validate an ownership map against a built fabric and derive the
    cut set + lookahead window.

    Raises :class:`PartitionError` when a node is unassigned, a shard is
    empty, a host–switch link is cut, or the cut set is empty (a serial
    run in disguise — use the serial engine).
    """
    owner = dict(owner)
    switch_names = {sw.name for sw in topo.switches}
    names = [h.name for h in topo.hosts] + [sw.name for sw in topo.switches]
    missing = [n for n in names if n not in owner]
    if missing:
        raise PartitionError(f"nodes without a shard: {missing[:5]}")
    if n_shards is None:
        n_shards = max(owner.values()) + 1
    used = {owner[n] for n in names}
    if used != set(range(n_shards)):
        raise PartitionError(
            f"shard ids must cover 0..{n_shards - 1}, got {sorted(used)}"
        )
    cuts: List[Cut] = []
    lookahead: Optional[int] = None
    # Edge-insertion order is deterministic (same construction on every
    # shard), so cut indices agree everywhere without coordination.
    for a, b, attrs in topo.graph.edges(data=True):
        sa, sb = owner[a], owner[b]
        if sa == sb:
            continue
        if a not in switch_names or b not in switch_names:
            raise PartitionError(
                f"cut link {a!r}--{b!r} is not switch--switch: hosts must "
                f"stay on their edge switch's shard (DESIGN.md §11)"
            )
        prop = attrs["prop_delay_ps"]
        if prop <= 0:
            raise PartitionError(
                f"cut link {a!r}--{b!r} has zero propagation delay: "
                f"no conservative lookahead exists across it"
            )
        cuts.append(Cut(len(cuts), a, b, sa, sb, prop))
        lookahead = prop if lookahead is None else min(lookahead, prop)
    if not cuts:
        raise PartitionError("ownership map cuts no links")
    return PartitionPlan(n_shards, owner, cuts, lookahead)


def dumbbell_plan(topo: Topology, n_shards: int = 2) -> PartitionPlan:
    """Cut the dumbbell/parking-lot switch chain into contiguous runs.

    Switches split into ``n_shards`` balanced contiguous groups; every
    host follows its attachment switch, so the only cut links are the
    chain's switch–switch hops.
    """
    switches = topo.switches
    if n_shards < 2 or n_shards > len(switches):
        raise PartitionError(
            f"need 2 <= n_shards <= {len(switches)} switches, got {n_shards}"
        )
    owner: Dict[str, int] = {}
    per = len(switches) / n_shards
    for i, sw in enumerate(switches):
        owner[sw.name] = min(int(i / per), n_shards - 1)
    for host in topo.hosts:
        attached = [n for n in topo.graph.neighbors(host.name)]
        owner[host.name] = owner[attached[0]]
    return plan_partition(topo, owner, n_shards)


def fattree_plan(topo: Topology, n_shards: int) -> PartitionPlan:
    """Cut a k-ary fat-tree at the agg↔core boundary: pods are dealt to
    shards in contiguous runs, core switches ride with shard 0.

    Every cut link is agg–core (switch–switch); ToRs, aggs and hosts of
    one pod always stay together, so the intra-pod tie classes never
    cross a boundary.
    """
    owner: Dict[str, int] = {}
    pods = set()
    for sw in topo.switches:
        if sw.name.startswith("core_"):
            continue
        pods.add(int(sw.name.split("_")[1]))
    n_pods = len(pods)
    if n_shards < 2 or n_pods % n_shards != 0:
        raise PartitionError(
            f"n_shards must be >= 2 and divide the pod count {n_pods}, "
            f"got {n_shards}"
        )
    per = n_pods // n_shards
    for sw in topo.switches:
        if sw.name.startswith("core_"):
            owner[sw.name] = 0
        else:
            owner[sw.name] = int(sw.name.split("_")[1]) // per
    for host in topo.hosts:
        owner[host.name] = int(host.name.split("_")[1]) // per
    return plan_partition(topo, owner, n_shards)
