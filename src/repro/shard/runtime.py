"""Conservative-synchronization shard runtime (DESIGN.md §11).

Every shard advances its own event heap to a shared barrier horizon,
exports the boundary frames whose serialization finished inside the
closing window, and blocks until the coordinator has routed them to the
owning shards for injection in the next window.  The window width never
exceeds the cut set's minimum propagation delay (the lookahead), so an
exported frame's arrival always lands strictly beyond the next barrier —
no shard ever needs an event it has not been handed yet.

Two interchangeable backends drive the same coordinator loop:

* :class:`InProcessShards` — every shard engine lives in this process,
  advanced round-robin.  Zero parallelism, full debuggability: this is
  the determinism reference the process mode must match byte-for-byte.
* :class:`ProcessShards` — one spawn worker per shard over the
  ``repro.exec`` discipline (picklable build specs, crash surfacing),
  messages over pipes.  A shard that dies mid-run triggers flight dumps
  from every surviving shard before :class:`ShardCrash` is raised.

Injection ordering (the §4.1 tie discipline across a cut): inbound
frames are sorted by ``(arrival, sender shard, export position)`` before
scheduling, so same-arrival frames from one sender shard keep their
serial wire order, and the residual cross-sender coincidence at one
picosecond is broken canonically by shard id.  Per-link arrivals are
strictly monotonic, so the dominant ordering-sensitive pair (same-queue
``_tx_deliver`` ties) cannot straddle one cut link at all.
"""

from __future__ import annotations

import importlib
import traceback
from typing import Callable, Dict, List, Optional

from repro.shard.boundary import Boundary, rewire_boundaries
from repro.shard.partition import PartitionPlan, plan_partition


class ShardCrash(RuntimeError):
    """A shard died mid-run.  Carries the flight-dump paths collected
    from every shard that could still produce one."""

    def __init__(self, shard_id: int, reason: str, dumps: Dict[int, str]) -> None:
        self.shard_id = shard_id
        self.reason = reason
        self.dumps = dumps
        lines = [f"shard {shard_id} crashed: {reason.strip().splitlines()[-1]}"]
        for sid in sorted(dumps):
            lines.append(f"  flight dump [shard {sid}]: {dumps[sid]}")
        super().__init__("\n".join(lines))


class ShardFabric:
    """What a shard builder returns: one complete fabric plus the
    callables the runtime drives it through.

    ``collect()`` returns the shard's plain-data result payload (owned
    counters only); ``completed()`` returns the shard's completion count
    for chunk-aligned stop checks (None when the scenario has a fixed
    horizon instead).
    """

    __slots__ = ("sim", "topo", "collect", "completed", "tracer")

    def __init__(
        self,
        sim,
        topo,
        collect: Callable[[], dict],
        completed: Optional[Callable[[], int]] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.topo = topo
        self.collect = collect
        self.completed = completed
        self.tracer = tracer


class ShardEngine:
    """One shard: fabric + boundary machinery, driven window by window."""

    def __init__(self, fabric: ShardFabric, plan: PartitionPlan, shard_id: int) -> None:
        self.fabric = fabric
        self.plan = plan
        self.shard_id = shard_id
        self.sim = fabric.sim
        self.boundaries: Dict[int, Boundary] = rewire_boundaries(
            fabric.topo, plan, shard_id
        )

    def advance(self, horizon: int, inbound: List[tuple]) -> tuple:
        """Inject ``inbound`` (pre-sorted ``(arrival, cut_index, frame)``
        messages), run to ``horizon``, export the closing window.

        Returns ``(outbound, completed, idle)``: the boundary messages,
        the shard's completion count (or None) and whether the heap went
        empty."""
        sim = self.sim
        boundaries = self.boundaries
        for arrival, cut_index, frame in inbound:
            b = boundaries[cut_index]
            # The remote port's lane puts the injection at the exact heap
            # rank the serial delivery event holds at this instant.
            sim.schedule_at(arrival, b.inject, frame, b.inject_lane)
        sim.run(until=horizon)
        out: List[tuple] = []
        for idx in sorted(boundaries):
            out.extend(boundaries[idx].export(horizon))
        done = self.fabric.completed
        return (out, None if done is None else done(), sim.peek() is None)

    def boundary_in_flight(self, horizon: int) -> int:
        return sum(b.in_flight(horizon) for b in self.boundaries.values())

    def collect(self) -> dict:
        payload = self.fabric.collect()
        payload["shard_id"] = self.shard_id
        payload["boundary"] = {
            "exported": sum(b.exported for b in self.boundaries.values()),
            "injected": sum(b.injected for b in self.boundaries.values()),
            "in_flight": self.boundary_in_flight(self.sim.now),
        }
        return payload

    def flight_dump(self, path: Optional[str] = None) -> str:
        import os
        import tempfile

        from repro.obs.flight import FlightRecorder

        if path is None:
            # The in-process backend dumps every shard from one pid; the
            # recorder's pid-based default would make them overwrite
            # each other.
            path = os.path.join(
                tempfile.gettempdir(),
                f"flightrec-{os.getpid()}-shard{self.shard_id}.json",
            )
        rec = FlightRecorder(path=path, tracer=self.fabric.tracer)
        rec.bind(sim=self.sim, topo=self.fabric.topo)
        return rec.dump()


def aligned_window(lookahead_ps: int, chunk_ps: Optional[int] = None) -> int:
    """The widest window <= the lookahead that divides ``chunk_ps``, so
    completion checks land exactly on the serial driver's chunk
    boundaries (byte-identical stop time).  ``chunk_ps=None`` (fixed-
    horizon scenarios) returns the lookahead itself."""
    if lookahead_ps <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead_ps}")
    if chunk_ps is None:
        return lookahead_ps
    if lookahead_ps >= chunk_ps:
        return chunk_ps
    d = -(-chunk_ps // lookahead_ps)  # smallest divisor count >= chunk/L
    while chunk_ps % d:
        d += 1
    return chunk_ps // d


class InProcessShards:
    """All shard engines in this process, advanced round-robin — the
    determinism-debugging backend (ships first; the processes follow)."""

    def __init__(self, engines: List[ShardEngine]) -> None:
        self.engines = {eng.shard_id: eng for eng in engines}

    def advance_all(self, horizon: int, inbound: Dict[int, List[tuple]]) -> Dict[int, tuple]:
        results: Dict[int, tuple] = {}
        for sid in sorted(self.engines):
            eng = self.engines[sid]
            try:
                results[sid] = eng.advance(horizon, inbound.get(sid, []))
            except Exception:
                reason = traceback.format_exc()
                dumps = {
                    s: e.flight_dump() for s, e in sorted(self.engines.items())
                }
                raise ShardCrash(sid, reason, dumps) from None
        return results

    def collect_all(self) -> Dict[int, dict]:
        return {sid: eng.collect() for sid, eng in sorted(self.engines.items())}

    def tracers(self) -> Dict[int, object]:
        return {
            sid: eng.fabric.tracer
            for sid, eng in sorted(self.engines.items())
            if eng.fabric.tracer is not None
        }

    def stop(self) -> None:
        return


def _resolve(fn_path: str):
    mod, _, qual = fn_path.partition(":")
    obj = importlib.import_module(mod)
    for part in qual.split("."):
        obj = getattr(obj, part)
    return obj


def build_engine(build: dict, plan_dict: dict, shard_id: int) -> ShardEngine:
    """Build one shard from a plain-data spec: ``build`` is
    ``{"fn": "module:qualname", "kwargs": {...}}`` where ``fn`` returns a
    :class:`ShardFabric` given ``(shard_id, owner, n_shards, **kwargs)``.
    The worker re-derives the full plan (cuts, lookahead) from its own
    deterministic topology copy."""
    fabric = _resolve(build["fn"])(
        shard_id, plan_dict["owner"], plan_dict["n_shards"], **build["kwargs"]
    )
    plan = plan_partition(fabric.topo, plan_dict["owner"], plan_dict["n_shards"])
    return ShardEngine(fabric, plan, shard_id)


def _shard_worker(conn, build: dict, plan_dict: dict, shard_id: int, dump_path) -> None:
    """Spawn-worker main loop: build, then serve advance/collect/dump
    requests until told to stop.  Any exception writes this shard's own
    flight dump before the crash report goes up the pipe — the dump must
    survive the process."""
    eng = None
    try:
        eng = build_engine(build, plan_dict, shard_id)
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "advance":
                conn.send(("ok",) + eng.advance(msg[1], msg[2]))
            elif op == "collect":
                conn.send(("ok", eng.collect()))
            elif op == "dump":
                conn.send(("ok", eng.flight_dump(dump_path)))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard op {op!r}")
    except EOFError:  # pragma: no cover - coordinator died
        return
    except BaseException:
        reason = traceback.format_exc()
        dumped = eng.flight_dump(dump_path) if eng is not None else ""
        try:
            conn.send(("crashed", reason, dumped))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


class ProcessShards:
    """One spawn process per shard, driven over pipes.

    The spawn start method matches the ``repro.exec`` discipline: workers
    import everything fresh, so build specs and messages must be plain
    picklable data — which the S501 boundary rule keeps true by
    construction.
    """

    def __init__(
        self,
        build: dict,
        plan: PartitionPlan,
        dump_dir: Optional[str] = None,
    ) -> None:
        import multiprocessing as mp
        import os

        ctx = mp.get_context("spawn")
        self.plan = plan
        self._conns = {}
        self._procs = {}
        plan_dict = plan.to_dict()
        for sid in range(plan.n_shards):
            dump_path = (
                os.path.join(dump_dir, f"shard{sid}-flight.json") if dump_dir else None
            )
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, build, plan_dict, sid, dump_path),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns[sid] = parent
            self._procs[sid] = proc

    def _recv(self, sid: int):
        try:
            reply = self._conns[sid].recv()
        except (EOFError, OSError):
            self._crash(sid, "worker process died (pipe closed)")
        if reply[0] == "crashed":
            self._crash(sid, reply[1], own_dump=reply[2])
        return reply

    def _crash(self, dead: int, reason: str, own_dump: str = ""):
        """Collect flight dumps from every surviving shard, tear the
        fleet down, raise.  The dead shard's dump (written by the worker
        before it reported, when it could) rides along."""
        dumps: Dict[int, str] = {}
        if own_dump:
            dumps[dead] = own_dump
        for sid, conn in self._conns.items():
            if sid == dead:
                continue
            try:
                conn.send(("dump",))
                reply = conn.recv()
                if reply[0] == "ok" and reply[1]:
                    dumps[sid] = reply[1]
            except (EOFError, BrokenPipeError, OSError):  # pragma: no cover
                continue
        self.stop()
        raise ShardCrash(dead, reason, dumps)

    def advance_all(self, horizon: int, inbound: Dict[int, List[tuple]]) -> Dict[int, tuple]:
        for sid, conn in self._conns.items():
            conn.send(("advance", horizon, inbound.get(sid, [])))
        results: Dict[int, tuple] = {}
        for sid in sorted(self._conns):
            reply = self._recv(sid)
            results[sid] = (reply[1], reply[2], reply[3])
        return results

    def collect_all(self) -> Dict[int, dict]:
        for conn in self._conns.values():
            conn.send(("collect",))
        out: Dict[int, dict] = {}
        for sid in sorted(self._conns):
            out[sid] = self._recv(sid)[1]
        return out

    def tracers(self) -> Dict[int, object]:
        return {}

    def stop(self) -> None:
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs.values():
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns.values():
            conn.close()
        self._conns = {}
        self._procs = {}


def run_sharded(
    group,
    plan: PartitionPlan,
    *,
    until: Optional[int] = None,
    chunk_ps: Optional[int] = None,
    target: Optional[int] = None,
    max_horizon_ps: Optional[int] = None,
    window_ps: Optional[int] = None,
) -> int:
    """The coordinator loop: lockstep windows + barrier frame exchange.

    Fixed-horizon scenarios pass ``until``; completion-driven scenarios
    pass ``chunk_ps`` + ``target`` + ``max_horizon_ps`` and the loop
    stops at the first chunk boundary with ``target`` completions — the
    same stop rule, at the same timestamps, as the serial
    :func:`~repro.experiments.fct_experiment.drive_fct`.  Returns the
    final barrier time.
    """
    if (until is None) == (max_horizon_ps is None):
        raise ValueError("pass exactly one of until= / max_horizon_ps=")
    end = until if until is not None else max_horizon_ps
    window = window_ps or aligned_window(plan.lookahead_ps, chunk_ps)
    if window > plan.lookahead_ps:
        raise ValueError(
            f"window {window} exceeds the lookahead {plan.lookahead_ps}"
        )
    cuts = plan.cuts
    pending: Dict[int, List[tuple]] = {s: [] for s in range(plan.n_shards)}
    t = 0
    while t < end:
        t_next = min(t + window, end)
        inbound = {
            sid: [(a, ci, f) for (a, _s, _p, ci, f) in sorted(msgs)]
            for sid, msgs in pending.items()
            if msgs
        }
        results = group.advance_all(t_next, inbound)
        pending = {s: [] for s in range(plan.n_shards)}
        completed = 0
        all_idle = True
        for sid in sorted(results):
            out, done, idle = results[sid]
            if done is not None:
                completed += done
            if not idle:
                all_idle = False
            for pos, (ci, arrival, frame) in enumerate(out):
                cut = cuts[ci]
                recv = cut.owner_b if sid == cut.owner_a else cut.owner_a
                pending[recv].append((arrival, sid, pos, ci, frame))
        t = t_next
        if target is not None and chunk_ps is not None and t % chunk_ps == 0:
            if completed >= target:
                break
            if all_idle and not any(pending.values()):
                break
    return t
