"""Boundary ports: the local half of a cut link (DESIGN.md §11).

Each shard builds the *complete* topology, then rewires every cut link's
local port to a stub peer.  The local port stays a stock
:class:`~repro.net.port.Port` — its wire arithmetic, PFC pause state,
bounded-commit machinery and tx counters keep running untouched — while
the stub absorbs its deliveries (the remote shard simulates the real
receive from the injected copy).  The stub's node class is not the stock
``Switch``, so :meth:`Port._classify_train_path` classifies the port as
train-ineligible and the fused hop pipeline auto-disables across the
cut; every boundary frame takes the classic per-frame path.

**Export** walks the port's in-flight FIFO at each barrier and emits
frames whose serialization finished inside the closing window
(``watermark < finish <= horizon``).  Such frames are committed — their
wire slot started at or before ``now``, so a PFC XOFF can no longer
uncommit them (``_uncommit_pending`` only evicts ``start > now``) — and
their arrival ``finish + prop`` is strictly beyond the next barrier, so
the receiving shard can still schedule them.  The sender's own delivery
event fires later at the exact serial time, running ``on_departure``
(buffer release, PFC XON) against the local switch before the frame dies
in the stub.

**Injection** replays :meth:`Port._tx_deliver`'s classic peer-side
delivery on the real local port: rx counters, ``in_port``, then
``node.receive``.  PFC PAUSE/RESUME frames cross the cut this way with
no special casing — they ride the in-flight FIFO like any frame and hit
the receiving switch's control branch at the serial timestamp.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.packet import Packet
from repro.shard.messages import decode_frame, encode_frame
from repro.shard.partition import Cut, PartitionPlan
from repro.topo.base import Topology


class _StubNode:
    """Absorbs deliveries on the local side of a cut.

    Not a :class:`~repro.net.switch.Switch` subclass on purpose: the
    train classifier compares ``type(peer.node).receive`` against the
    stock ``Switch.receive``, so this class's distinct method is what
    turns train fusion off on boundary ports.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, pkt: Packet, in_port: int) -> None:
        # The frame's real receive runs on the remote shard from the
        # barrier-exported copy; this copy is dead.  No pool release:
        # the frame was acquired from a sender-side pool whose flow
        # bookkeeping ends with the remote shard's copy.
        return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StubNode {self.name}>"


class _StubPort:
    """The minimal peer surface :meth:`Port._tx_deliver` touches."""

    __slots__ = ("node", "index", "rx_packets", "rx_bytes")

    def __init__(self, name: str, index: int) -> None:
        self.node = _StubNode(name)
        self.index = index
        self.rx_packets = 0
        self.rx_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StubPort {self.node.name}.{self.index}>"


class Boundary:
    """One shard's half of one cut link: export + injection."""

    __slots__ = ("cut", "port", "inject_lane", "watermark", "injected", "exported")

    def __init__(self, cut: Cut, port, inject_lane: int = 0) -> None:
        self.cut = cut
        self.port = port
        # The remote transmitting port's tie-break lane: an injection must
        # pop at exactly the heap rank the serial delivery event holds, so
        # same-instant ordering against local events matches the serial
        # engine (DESIGN.md §4.1/§11).
        self.inject_lane = inject_lane
        self.watermark = 0
        self.injected = 0
        self.exported = 0

    def export(self, horizon: int) -> List[tuple]:
        """Frames whose serialization finished in ``(watermark, horizon]``,
        as ``(cut_index, arrival_ps, frame_tuple)`` messages in wire
        order.  The in-flight FIFO is bounded by the commit window, so
        the walk is O(window), not O(backlog)."""
        prop = self.port.prop_delay_ps
        wm = self.watermark
        out = []
        for arrival, pkt in self.port._inflight:
            finish = arrival - prop
            if wm < finish <= horizon:
                out.append((self.cut.index, arrival, encode_frame(pkt)))
        self.watermark = horizon
        self.exported += len(out)
        return out

    def inject(self, frame: tuple) -> None:
        """Deliver a remote frame into the local fabric — the peer-side
        lines of :meth:`Port._tx_deliver`'s classic path, on the real
        port."""
        pkt = decode_frame(frame)
        port = self.port
        port.rx_packets += 1
        port.rx_bytes += pkt.size
        pkt.in_port = port.index
        self.injected += 1
        port.node.receive(pkt, port.index)

    def in_flight(self, horizon: int) -> int:
        """Frames still on the wire past ``horizon`` — the boundary
        residue a merged quiescence audit must account for."""
        prop = self.port.prop_delay_ps
        return sum(1 for arrival, _ in self.port._inflight if arrival - prop > horizon)


def rewire_boundaries(
    topo: Topology, plan: PartitionPlan, shard_id: int
) -> Dict[int, Boundary]:
    """Stub out every cut link's local port; return cut index ->
    :class:`Boundary` for the cuts touching this shard."""
    node_by_name = {h.name: h for h in topo.hosts}
    node_by_name.update({sw.name: sw for sw in topo.switches})
    boundaries: Dict[int, Boundary] = {}
    for cut in plan.cuts:
        if shard_id == cut.owner_a:
            local, remote = cut.a, cut.b
        elif shard_id == cut.owner_b:
            local, remote = cut.b, cut.a
        else:
            continue
        ports = topo.graph.edges[cut.a, cut.b]["ports"]
        port = node_by_name[local].ports[ports[local]]
        remote_lane = node_by_name[remote].ports[ports[remote]].lane
        # The local port keeps transmitting on the serial schedule; its
        # deliveries land in the stub instead of the remote switch.  The
        # stub's index mirrors the remote port so pkt.in_port matches
        # what a local delivery would have set (the value is dead — the
        # stub discards — but keeps flight-dump output comprehensible).
        port.peer = _StubPort(f"stub:{remote}", ports[remote])
        boundaries[cut.index] = Boundary(cut, port, remote_lane)
    return boundaries
