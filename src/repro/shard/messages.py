"""Plain-data frame messages for boundary crossings (DESIGN.md §11).

A frame leaving its shard is snapshotted into a flat tuple at the
barrier and rebuilt as a fresh :class:`~repro.net.packet.Packet` on the
receiving shard.  This is the *only* way state crosses a cut — shards
never share live objects (lint rule S501 enforces the discipline), so
the process-backed and in-process runtimes are observably identical.

The snapshot is sound because frames are immutable from forward time
onward: every per-hop mutation (INT stamp, RoCC min-stamp, ECN draw,
size growth) happens when the owning switch *forwards* the frame, before
it enters the egress port's in-flight FIFO that the barrier exports
from.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.packet import INTRecord, Packet

#: Message schema version — bump when the field tuple changes shape.
FRAME_SCHEMA = 1


def encode_frame(pkt: Packet) -> tuple:
    """Snapshot one in-flight frame as a flat, picklable tuple.

    ``in_port`` is deliberately not carried: the receiving shard's
    injection sets it to the real ingress port index, exactly as
    :meth:`Port._tx_deliver` does for a same-shard delivery.
    """
    recs = pkt.int_records
    return (
        pkt.kind,
        pkt.flow_id,
        pkt.src,
        pkt.dst,
        pkt.seq,
        pkt.size,
        pkt.payload,
        pkt.priority,
        pkt.ecn,
        pkt.ecn_echo,
        None
        if recs is None
        else tuple((r.bandwidth_gbps, r.ts, r.tx_bytes, r.qlen) for r in recs),
        pkt.n_flows,
        pkt.rocc_rate_gbps,
        pkt.last,
        pkt.sent_ts,
        pkt.echo_sent_ts,
        pkt.fncc_in_port,
        pkt.pause_prio,
        pkt.hops,
        pkt.lb_tag,
        pkt.lb_tail,
    )


def decode_frame(data: tuple) -> Packet:
    """Rebuild a boundary frame on the receiving shard."""
    pkt = Packet(
        data[0],
        flow_id=data[1],
        src=data[2],
        dst=data[3],
        seq=data[4],
        size=data[5],
        payload=data[6],
        priority=data[7],
    )
    pkt.ecn = data[8]
    pkt.ecn_echo = data[9]
    recs: Optional[Tuple[tuple, ...]] = data[10]
    if recs is not None:
        pkt.int_records = [INTRecord(r[0], r[1], r[2], r[3]) for r in recs]
    pkt.n_flows = data[11]
    pkt.rocc_rate_gbps = data[12]
    pkt.last = data[13]
    pkt.sent_ts = data[14]
    pkt.echo_sent_ts = data[15]
    pkt.fncc_in_port = data[16]
    pkt.pause_prio = data[17]
    pkt.hops = data[18]
    pkt.lb_tag = data[19]
    pkt.lb_tail = data[20]
    return pkt
