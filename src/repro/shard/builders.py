"""Per-shard fabric builders (spawn-safe, module-level, plain kwargs).

Each builder replays the corresponding serial experiment's construction
**exactly** — same :class:`Simulator`, same seed streams, same topology
build, same flow list — and then launches only the flows this shard
*owns*: a sender QP starts where the source host lives, a receiver
registers where the destination lives.  Because every RNG stream is
name-derived and CC factories are stateless per flow, skipping the other
shards' launches perturbs nothing the owned traffic observes; the
injected boundary frames supply the remote half of the wire, at the
serial timestamps.

Builders are addressed as ``"repro.shard.builders:build_..."`` in the
plain-data build specs the process runtime ships to spawn workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import build_cc_env
from repro.metrics.monitors import (
    QueueSampler,
    RateSampler,
    UtilizationSampler,
    pause_frame_count,
    pfc_frame_totals,
)
from repro.shard.runtime import ShardFabric
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.dumbbell import dumbbell
from repro.traffic.generator import staggered_elephants
from repro.units import KB, MB, us


class ShardBomb(RuntimeError):
    """The deterministic crash used by the killed-shard tests."""


def _raise_bomb(arg) -> None:
    raise ShardBomb(f"scheduled shard crash at {arg} ps")


def _set_trains(trains: Optional[bool]) -> None:
    """Pin the frame-train flag before any port is built (ports snapshot
    it at construction).  Spawn workers import everything fresh, so a
    trains-off identity run must ship the flag in the build kwargs."""
    if trains is not None:
        import repro.sim.engine as engine

        engine.TRAINS = trains


def portstats_rows(nodes) -> List[tuple]:
    """Every PortStats counter of every port — the per-shard half of the
    byte-identity witness.  ``train_frames`` rides in the last column;
    identity tests mask it on the cut ports only (a boundary hop cannot
    fuse, by construction — everywhere else it must match)."""
    rows = []
    for node in nodes:
        for port in node.ports:
            s = port.stats
            rows.append(
                (
                    node.name,
                    port.index,
                    s.tx_packets,
                    s.tx_bytes,
                    s.rx_packets,
                    s.rx_bytes,
                    s.drops,
                    s.ecn_marked,
                    s.pause_sent,
                    s.pause_received,
                    s.resume_sent,
                    s.resume_received,
                    s.max_qlen,
                    port.train_frames,
                )
            )
    return rows


def _owned(topo, owner: Dict[str, int], shard_id: int):
    hosts = [h for h in topo.hosts if owner[h.name] == shard_id]
    switches = [sw for sw in topo.switches if owner[sw.name] == shard_id]
    return hosts, switches


def _series(ts) -> tuple:
    return (tuple(ts.times), tuple(ts.values))


def build_microbench_shard(
    shard_id: int,
    owner: Dict[str, int],
    n_shards: int,
    cc: str = "fncc",
    link_rate_gbps: float = 100.0,
    n_senders: int = 2,
    n_switches: int = 3,
    flow_size_bytes: int = 20 * MB,
    stagger_us: float = 300.0,
    sample_us: float = 1.0,
    seed: int = 1,
    pfc_xoff: int = 500 * KB,
    monitor_switch: int = 0,
    monitor_port: Optional[int] = None,
    trace: bool = False,
    trains: Optional[bool] = None,
    crash_at_us: Optional[float] = None,
    crash_shard: int = 0,
    **cc_params,
) -> ShardFabric:
    """One shard of :func:`repro.experiments.common.run_microbench` —
    same construction order, ownership-gated launch."""
    _set_trains(trains)
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env = build_cc_env(cc, link_rate_gbps=link_rate_gbps, pfc_xoff=pfc_xoff, **cc_params)
    link = LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5))
    topo = dumbbell(
        sim,
        n_senders=n_senders,
        n_switches=n_switches,
        link=link,
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
    )
    env.post_install(topo)

    receiver = topo.hosts[-1]
    flows = staggered_elephants(
        sender_ids=[h.host_id for h in topo.hosts[:n_senders]],
        receiver_id=receiver.host_id,
        size_bytes=flow_size_bytes,
        stagger_ps=us(stagger_us),
    )
    hosts = topo.hosts
    for flow in flows:
        if owner[hosts[flow.dst].name] == shard_id:
            hosts[flow.dst].register_receiver(flow)
    qps = {}
    for flow in flows:
        src_host = hosts[flow.src]
        if owner[src_host.name] != shard_id:
            continue
        cc_obj = env.cc_factory(flow, src_host)
        base_rtt = topo.base_rtt_ps(flow.src, flow.dst)
        qps[flow.flow_id] = src_host.start_flow(flow, cc_obj, base_rtt)

    # Monitors mirror the serial run's, attached only where the monitored
    # object is owned (the samplers are Periodic: their ticks land at the
    # serial timestamps regardless of which shard hosts them).
    sw = topo.switches[monitor_switch]
    qmon = umon = None
    rmons = {}
    if owner[sw.name] == shard_id:
        if monitor_port is None:
            nxt = (
                topo.switches[monitor_switch + 1].name
                if monitor_switch + 1 < len(topo.switches)
                else receiver.name
            )
            monitor_port = topo.graph.edges[sw.name, nxt]["ports"][sw.name]
        port = sw.ports[monitor_port]
        qmon = QueueSampler(sim, port, interval_ps=us(sample_us))
        umon = UtilizationSampler(sim, port, interval_ps=us(5 * sample_us))
    rmons = {
        fid: RateSampler(sim, qp, interval_ps=us(sample_us))
        for fid, qp in qps.items()
    }

    tracer = None
    if trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
        tracer.attach(topo)

    if crash_at_us is not None and shard_id == crash_shard:
        sim.schedule_at(us(crash_at_us), _raise_bomb, us(crash_at_us))

    my_hosts, my_switches = _owned(topo, owner, shard_id)

    def collect() -> dict:
        payload = {
            "queue": None if qmon is None else _series(qmon.series),
            "utilization": None if umon is None else _series(umon.series),
            "rates": {fid: _series(mon.series) for fid, mon in rmons.items()},
            "pause_frames": pause_frame_count(my_switches),
            "portstats": portstats_rows(my_hosts + my_switches),
            "pfc": pfc_frame_totals(my_hosts + my_switches),
            "events_dispatched": sim.events_dispatched,
        }
        if tracer is not None:
            payload["trace_events"] = [ev.to_dict() for ev in tracer.events]
            payload["trace_dropped"] = tracer.dropped
        return payload

    return ShardFabric(sim, topo, collect, completed=None, tracer=tracer)


def build_fct_shard(
    shard_id: int,
    owner: Dict[str, int],
    n_shards: int,
    cc: str = "fncc",
    workload: str = "websearch",
    trace: bool = False,
    trains: Optional[bool] = None,
    crash_at_us: Optional[float] = None,
    crash_shard: int = 0,
    **kwargs,
) -> ShardFabric:
    """One shard of :func:`~repro.experiments.fct_experiment.run_fct_experiment`
    (the §5.5 fat-tree cell) — shared fabric builder, ownership-gated
    launch, completion counted where each flow's receiver lives."""
    from repro.experiments.fct_experiment import build_fct_fabric

    _set_trains(trains)

    fab = build_fct_fabric(cc, workload=workload, **kwargs)
    topo, env = fab.topo, fab.env
    hosts = topo.hosts
    for flow in fab.flows:
        if owner[hosts[flow.dst].name] == shard_id:
            hosts[flow.dst].register_receiver(flow)
    for flow in fab.flows:
        src_host = hosts[flow.src]
        if owner[src_host.name] != shard_id:
            continue
        cc_obj = env.cc_factory(flow, src_host)
        src_host.start_flow(flow, cc_obj, topo.base_rtt_ps(flow.src, flow.dst))

    tracer = None
    if trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
        tracer.attach(topo)

    if crash_at_us is not None and shard_id == crash_shard:
        fab.sim.schedule_at(us(crash_at_us), _raise_bomb, us(crash_at_us))

    my_hosts, my_switches = _owned(topo, owner, shard_id)
    collector = fab.collector

    def collect() -> dict:
        payload = {
            "records": [
                (r.flow.flow_id, r.fct_ps, r.flow.size_bytes, r.slowdown)
                for r in collector.records
            ],
            "bins": list(fab.bins),
            "n_flows": len(fab.flows),
            "portstats": portstats_rows(my_hosts + my_switches),
            "pfc": pfc_frame_totals(my_hosts + my_switches),
            "pause_frames": pause_frame_count(my_switches),
            "events_dispatched": fab.sim.events_dispatched,
        }
        if tracer is not None:
            payload["trace_events"] = [ev.to_dict() for ev in tracer.events]
            payload["trace_dropped"] = tracer.dropped
        return payload

    return ShardFabric(fab.sim, topo, collect, completed=collector.completed, tracer=tracer)
