"""Deterministic fault injection and graceful degradation (DESIGN.md §10).

* :class:`FaultPlan` — picklable, validated fault schedules (plan.py)
* :class:`FaultInjector` — arms a plan as ordinary engine events (inject.py)
* :class:`FaultAuditor` — buffer-checker-style invariant audits (audit.py)

Zero-perturbation contract: ``faults=None`` and an armed
``FaultPlan.noop()`` produce byte-identical runs; everything stochastic
derives from the topology seed factory's ``faults.<plan name>`` stream
(enforced by fncc-lint rule D104).
"""

from repro.faults.audit import FaultAuditor
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["FaultAuditor", "FaultInjector", "FaultPlan"]
