"""Deterministic fault schedules (DESIGN.md §10).

A :class:`FaultPlan` is a plain-data, picklable description of *what goes
wrong and when*: link down/up events, flap trains, switch fail-stop,
unidirectional (gray) loss windows, bit-corruption sampling windows, and
seeded PFC pause storms.  It holds no simulator references, so it can be
built once in a parent process and shipped to ``--jobs`` workers unchanged.

Nothing in a plan draws randomness at build time.  Every stochastic
element (flap jitter, loss sampling) names only *parameters*; the draws
happen at arm time inside :class:`~repro.faults.inject.FaultInjector`,
always from the topology seed factory's ``faults.<plan.name>`` stream, so
an identical plan + identical root seed reproduces an identical event
sequence across runs and across workers (ISSUE 9 acceptance criteria).

The empty plan (:meth:`FaultPlan.noop`) is the zero-perturbation anchor:
arming it schedules no events, installs no wrappers, and draws nothing, so
a run with ``faults=FaultPlan.noop()`` is byte-identical to ``faults=None``
— the same proof discipline ``sanitize=`` uses.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["FaultPlan"]

#: spec kinds understood by the injector, in documentation order.
KINDS = (
    "link_down",
    "link_up",
    "link_flap",
    "switch_fail",
    "gray_loss",
    "corrupt",
    "pfc_storm",
)


def _check_time(name: str, value) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative int (picoseconds), got {value!r}")
    return value


def _check_name(name: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise ValueError(f"{name} must be a non-empty node name, got {value!r}")
    return value


class FaultPlan:
    """An ordered, validated, picklable fault schedule.

    All builder methods return ``self`` so schedules chain::

        plan = (FaultPlan("flaky-agg")
                .link_down("agg_0_0", "core_0_0", at_ps=50_000_000)
                .link_up("agg_0_0", "core_0_0", at_ps=250_000_000))

    ``specs`` is a list of plain dicts — stable, comparable, picklable.
    """

    __slots__ = ("name", "specs")

    def __init__(self, name: str = "faults") -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("plan name must be a non-empty string")
        self.name = name
        self.specs: List[dict] = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def noop(cls, name: str = "noop") -> "FaultPlan":
        """The empty plan: arming it must perturb nothing (§10 proof
        obligation, gated by ``bench --ab-faults``)."""
        return cls(name)

    def _add(self, kind: str, **fields) -> "FaultPlan":
        spec = {"kind": kind}
        spec.update(fields)
        self.specs.append(spec)
        return self

    def link_down(self, a: str, b: str, at_ps: int) -> "FaultPlan":
        """Both directions of the ``a``–``b`` link stop delivering at
        ``at_ps``; in-flight frames that arrive after the cut are dropped
        at the receiving port (counted in ``PortStats.drops``)."""
        return self._add(
            "link_down",
            a=_check_name("a", a),
            b=_check_name("b", b),
            at_ps=_check_time("at_ps", at_ps),
        )

    def link_up(self, a: str, b: str, at_ps: int) -> "FaultPlan":
        """Restore a previously failed link at ``at_ps``."""
        return self._add(
            "link_up",
            a=_check_name("a", a),
            b=_check_name("b", b),
            at_ps=_check_time("at_ps", at_ps),
        )

    def link_flap(
        self,
        a: str,
        b: str,
        start_ps: int,
        flaps: int,
        down_ps: int,
        up_ps: int,
        jitter_ps: int = 0,
    ) -> "FaultPlan":
        """A train of ``flaps`` down/up cycles starting at ``start_ps``:
        each cycle holds the link down for ``down_ps`` then up for
        ``up_ps``, with each transition shifted by a seed-derived jitter
        in ``[0, jitter_ps]``.  The train is expanded into concrete
        down/up events at arm time, so the expansion is reproducible."""
        if not isinstance(flaps, int) or flaps < 1:
            raise ValueError(f"flaps must be a positive int, got {flaps!r}")
        return self._add(
            "link_flap",
            a=_check_name("a", a),
            b=_check_name("b", b),
            start_ps=_check_time("start_ps", start_ps),
            flaps=flaps,
            down_ps=_check_time("down_ps", down_ps),
            up_ps=_check_time("up_ps", up_ps),
            jitter_ps=_check_time("jitter_ps", jitter_ps),
        )

    def switch_fail(self, switch: str, at_ps: int) -> "FaultPlan":
        """Fail-stop: the switch silently drops everything it receives
        from ``at_ps`` on (no recovery event — fail-stop is terminal)."""
        return self._add(
            "switch_fail",
            switch=_check_name("switch", switch),
            at_ps=_check_time("at_ps", at_ps),
        )

    def gray_loss(
        self, a: str, b: str, start_ps: int, end_ps: int, prob: float
    ) -> "FaultPlan":
        """Unidirectional silent loss: each data frame travelling
        ``a -> b`` during ``[start_ps, end_ps)`` is dropped with
        probability ``prob``.  Control frames (PAUSE/RESUME) are exempt so
        the pause/resume ledger stays balanced; loss of PFC frames is a
        different pathology than gray loss models."""
        return self._add(
            "gray_loss",
            a=_check_name("a", a),
            b=_check_name("b", b),
            start_ps=_check_time("start_ps", start_ps),
            end_ps=_check_time("end_ps", end_ps),
            prob=_check_prob(prob),
        )

    def corrupt(
        self, a: str, b: str, start_ps: int, end_ps: int, prob: float
    ) -> "FaultPlan":
        """Bit-corruption sampling on ``a -> b``: corrupted frames fail
        their (modelled) FCS check and are dropped at the receiver, same
        observable effect as gray loss but counted separately."""
        return self._add(
            "corrupt",
            a=_check_name("a", a),
            b=_check_name("b", b),
            start_ps=_check_time("start_ps", start_ps),
            end_ps=_check_time("end_ps", end_ps),
            prob=_check_prob(prob),
        )

    def pfc_storm(
        self,
        switch: str,
        toward: str,
        prio: int,
        start_ps: int,
        duration_ps: int,
        interval_ps: int,
    ) -> "FaultPlan":
        """A stuck-XOFF storm: the neighbour ``toward`` is modelled as
        emitting PAUSE frames for ``prio`` at the victim ``switch`` every
        ``interval_ps`` for ``duration_ps`` — the repeated-refresh pattern
        a hung receiver produces, and exactly what the PFC watchdog
        (net/switch.py) exists to detect and isolate."""
        if not isinstance(prio, int) or prio < 0:
            raise ValueError(f"prio must be a non-negative int, got {prio!r}")
        if not isinstance(interval_ps, int) or interval_ps < 1:
            raise ValueError(f"interval_ps must be a positive int, got {interval_ps!r}")
        return self._add(
            "pfc_storm",
            switch=_check_name("switch", switch),
            toward=_check_name("toward", toward),
            prio=prio,
            start_ps=_check_time("start_ps", start_ps),
            duration_ps=_check_time("duration_ps", duration_ps),
            interval_ps=interval_ps,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        # An armed-but-empty plan must behave like no plan at all.
        return bool(self.specs)

    def fingerprint(self) -> Tuple[tuple, ...]:
        """A stable, hashable rendering of the schedule — equal plans
        (same name, same specs in the same order) compare equal, which the
        determinism tests use to assert pickle round-trips are lossless."""
        out = []
        for spec in self.specs:
            out.append(tuple(sorted(spec.items())))
        return (self.name,) + tuple(out)  # type: ignore[return-value]

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.name == other.name and self.specs == other.specs

    def __hash__(self) -> int:  # pragma: no cover - dict-key convenience
        return hash(self.fingerprint())

    def __getstate__(self):
        return {"name": self.name, "specs": self.specs}

    def __setstate__(self, state):
        self.name = state["name"]
        self.specs = state["specs"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.name!r}, {len(self.specs)} specs)"


def _check_prob(value) -> float:
    try:
        p = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"prob must be a float in [0, 1], got {value!r}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"prob must be in [0, 1], got {value!r}")
    return p
