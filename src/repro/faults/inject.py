"""Fault-plan execution: the :class:`FaultInjector` (DESIGN.md §10).

The injector turns a :class:`~repro.faults.plan.FaultPlan` into ordinary
engine events at **arm time**: every schedule call, every flap-jitter
draw, and every wrapper installation happens in one deterministic pass
before the run starts, so two runs arming the same plan against the same
seed interleave fault events with traffic identically (same event seqs,
same tie-breaks — DESIGN.md §4.1).

Interception model
------------------
Faults act at *delivery*: a node named by any link/loss/fail spec gets one
instance-dict ``receive`` wrapper installed at arm time.  The wrapper
consults per-node filter state — dead in-ports (link down), a fail-stop
flag (switch fail), and per-in-port loss filters (gray loss / corruption)
— and either drops the frame (``PortStats.drops``, never a pool release:
the drop convention of ``net/switch.py``) or forwards to the original
``receive``.  Installing an instance-dict ``receive`` closes the
frame-train gate on that switch via the single-definition predicate
(``Switch._recompute_train_ok``), so fused trains can never bypass a
fault — the same protocol PacketTap uses.

Nodes not named by the plan are untouched: arming ``FaultPlan.noop()``
installs nothing and schedules nothing, which is how ``faults=None`` is
proved zero-perturbation (``tools/bench.py --ab-faults``).

Recovery wiring
---------------
Link transitions notify each endpoint's load balancer
(``on_link_down``/``on_link_up`` — :mod:`repro.lb.base`), clear the
frame-train route memos on all adjacent ports, and bump
``topo.routing_epoch``, mirroring the cache discipline of
:func:`repro.lb.base.install_lb`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.audit import FaultAuditor
from repro.faults.plan import FaultPlan
from repro.net.packet import PAUSE, Packet
from repro.units import PAUSE_FRAME_SIZE

__all__ = ["FaultInjector"]

#: counter keys, in report order.
COUNTERS = (
    "events",
    "drops_link_down",
    "drops_switch_fail",
    "drops_gray",
    "drops_corrupt",
    "storm_pauses",
)


class _NodeState:
    """Per-node fault filter state consulted by the receive wrapper."""

    __slots__ = ("node", "dead_in", "filters", "fail_all")

    def __init__(self, node) -> None:
        self.node = node
        self.dead_in = set()  # in-port indices with a dead peer link
        self.filters: Dict[int, list] = {}  # in-port -> [[prob, counter_key], ...]
        self.fail_all = False


class FaultInjector:
    """Arms one :class:`FaultPlan` against one live simulation.

    >>> inj = FaultInjector(plan).arm(sim, topo, seeds=topo.seeds)
    >>> ... run ...
    >>> inj.counters["drops_link_down"]
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.sim = None
        self.topo = None
        self.tracer = None
        self.auditor: Optional[FaultAuditor] = None
        self.counters: Dict[str, int] = {k: 0 for k in COUNTERS}
        #: chronological record of executed fault events (flight dump).
        self.timeline: List[dict] = []
        self._rng = None
        self._states: Dict[str, _NodeState] = {}
        self._undo: List = []
        self._dead_links = set()
        self._failed_switches = set()
        self._loss_active: List[dict] = []

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self, sim, topo, seeds=None, registry=None, tracer=None) -> "FaultInjector":
        """Resolve the plan against ``topo``, install wrappers, schedule
        every fault event, and mark the run (``sim.faults = self``).  One
        deterministic pass; raises before perturbing anything if a spec
        names an unknown node or link."""
        if self.sim is not None:
            raise RuntimeError("FaultInjector is already armed")
        self.sim = sim
        self.topo = topo
        self.tracer = tracer
        specs = self.plan.specs
        if seeds is None:
            seeds = getattr(topo, "seeds", None)
        if seeds is not None:
            self._rng = seeds.stream(f"faults.{self.plan.name}")
        self._validate(specs)
        # One wrapper per intercepting node, installed up front so the
        # train gate state is fixed for the whole run (not a mid-run
        # perturbation source).
        for name in self._intercepted_nodes(specs):
            self._install_wrapper(name)
        for spec in specs:
            self._schedule(spec)
        self.auditor = FaultAuditor(topo, faults=self)
        if registry is not None:
            registry.bind_collector(self.collect)
        sim.faults = self
        return self

    def disarm(self) -> None:
        """Restore every wrapped ``receive`` (tests / fabric reuse)."""
        while self._undo:
            node, had, orig = self._undo.pop()
            if had:
                node.receive = orig
            else:
                del node.__dict__["receive"]
            rec = getattr(node, "_recompute_train_ok", None)
            if rec is not None:
                rec()
        if self.sim is not None and getattr(self.sim, "faults", None) is self:
            self.sim.faults = None

    # -- resolution helpers ---------------------------------------------

    def _edge_ports(self, a: str, b: str) -> Dict[str, int]:
        try:
            return self.topo.graph.edges[a, b]["ports"]
        except KeyError:
            raise ValueError(f"fault plan {self.plan.name!r}: no link {a!r}-{b!r}")

    def _node(self, name: str):
        try:
            return self.topo.node(name)
        except KeyError:
            raise ValueError(f"fault plan {self.plan.name!r}: no node {name!r}")

    def _validate(self, specs) -> None:
        stochastic = ("gray_loss", "corrupt")
        for spec in specs:
            kind = spec["kind"]
            if kind in ("link_down", "link_up", "link_flap", "gray_loss", "corrupt"):
                self._edge_ports(spec["a"], spec["b"])
            elif kind == "switch_fail":
                self._node(spec["switch"])
            elif kind == "pfc_storm":
                self._node(spec["switch"])
                self._edge_ports(spec["switch"], spec["toward"])
            if self._rng is None and (
                kind in stochastic or (kind == "link_flap" and spec["jitter_ps"])
            ):
                raise ValueError(
                    f"fault plan {self.plan.name!r} has stochastic specs but no "
                    "seed factory; pass seeds= (or build the topology with one)"
                )

    def _intercepted_nodes(self, specs) -> List[str]:
        names: List[str] = []

        def add(name: str) -> None:
            if name not in names:
                names.append(name)

        for spec in specs:
            kind = spec["kind"]
            if kind in ("link_down", "link_up", "link_flap"):
                add(spec["a"])
                add(spec["b"])
            elif kind == "switch_fail":
                add(spec["switch"])
            elif kind in ("gray_loss", "corrupt"):
                add(spec["b"])  # loss is applied at the receiving end
        return names

    def _state(self, name: str) -> _NodeState:
        return self._states[name]

    def _install_wrapper(self, name: str) -> None:
        node = self._node(name)
        st = self._states[name] = _NodeState(node)
        orig = node.receive  # instance wrapper if present, else class method
        had = "receive" in node.__dict__
        counters = self.counters
        rng = self._rng
        ports = node.ports

        def receive(pkt, in_port: int, _orig=orig, _st=st) -> None:
            if _st.fail_all:
                ports[in_port].stats.drops += 1
                counters["drops_switch_fail"] += 1
                return
            if in_port in _st.dead_in:
                ports[in_port].stats.drops += 1
                counters["drops_link_down"] += 1
                return
            fl = _st.filters.get(in_port)
            if fl is not None and pkt.kind < PAUSE:
                # Control frames are exempt: losing PAUSE/RESUME corrupts
                # the pause ledger, a different pathology than gray loss.
                for rec in fl:
                    if rng.random() < rec[0]:
                        ports[in_port].stats.drops += 1
                        counters[rec[1]] += 1
                        return
            _orig(pkt, in_port)

        node.receive = receive
        self._undo.append((node, had, orig))
        rec = getattr(node, "_recompute_train_ok", None)
        if rec is not None:
            # Single-definition gate: an instance-dict ``receive`` closes
            # the frame-train fast path on this switch.
            rec()

    # -- scheduling ------------------------------------------------------

    def _schedule(self, spec: dict) -> None:
        sim = self.sim
        kind = spec["kind"]
        if kind == "link_down":
            sim.schedule_at(spec["at_ps"], self._fire_link, (spec["a"], spec["b"], True))
        elif kind == "link_up":
            sim.schedule_at(spec["at_ps"], self._fire_link, (spec["a"], spec["b"], False))
        elif kind == "link_flap":
            # Expand the train now; one jitter draw per flap cycle keeps
            # the expansion reproducible and down/up strictly ordered.
            a, b = spec["a"], spec["b"]
            jitter = spec["jitter_ps"]
            t = spec["start_ps"]
            for _ in range(spec["flaps"]):
                j = self._rng.randrange(jitter + 1) if jitter else 0
                sim.schedule_at(t + j, self._fire_link, (a, b, True))
                sim.schedule_at(t + j + spec["down_ps"], self._fire_link, (a, b, False))
                t += spec["down_ps"] + spec["up_ps"]
        elif kind == "switch_fail":
            sim.schedule_at(spec["at_ps"], self._fire_switch_fail, spec["switch"])
        elif kind in ("gray_loss", "corrupt"):
            key = "drops_gray" if kind == "gray_loss" else "drops_corrupt"
            ports = self._edge_ports(spec["a"], spec["b"])
            rec = [spec["prob"], key]
            win = {
                "kind": kind,
                "a": spec["a"],
                "b": spec["b"],
                "prob": spec["prob"],
                "end_ps": spec["end_ps"],
            }
            arg = (spec["b"], ports[spec["b"]], rec, win)
            sim.schedule_at(spec["start_ps"], self._fire_loss_on, arg)
            sim.schedule_at(spec["end_ps"], self._fire_loss_off, arg)
        elif kind == "pfc_storm":
            ports = self._edge_ports(spec["switch"], spec["toward"])
            until = spec["start_ps"] + spec["duration_ps"]
            arg = (
                self._node(spec["switch"]),
                ports[spec["switch"]],
                spec["prio"],
                until,
                spec["interval_ps"],
            )
            sim.schedule_at(spec["start_ps"], self._fire_storm_start, arg)

    # -- event handlers --------------------------------------------------

    def _log(self, name: str, **args) -> None:
        self.counters["events"] += 1
        entry = {"ts_ps": self.sim.now, "event": name}
        entry.update(args)
        self.timeline.append(entry)
        if self.tracer is not None:
            self.tracer.emit("fault", name, self.sim.now, args=args or None)

    def _fire_link(self, arg) -> None:
        a, b, down = arg
        key = (a, b) if a <= b else (b, a)
        if down:
            if key in self._dead_links:
                return  # overlapping flap/down specs: already dead
            self._dead_links.add(key)
        else:
            if key not in self._dead_links:
                return
            self._dead_links.discard(key)
        ports = self._edge_ports(a, b)
        endpoints = ((self._node(a), ports[a]), (self._node(b), ports[b]))
        for node, idx in endpoints:
            st = self._states.get(node.name)
            if st is not None:
                if down:
                    st.dead_in.add(idx)
                else:
                    st.dead_in.discard(idx)
        self._reroute(endpoints, down)
        self._log("link_down" if down else "link_up", a=a, b=b)

    def _fire_switch_fail(self, name: str) -> None:
        node = self._node(name)
        st = self._states[name]
        if st.fail_all:
            return
        st.fail_all = True
        self._failed_switches.add(name)
        # Every neighbour loses its port toward the dead switch.
        endpoints = []
        for port in node.ports:
            peer = port.peer
            if peer is not None:
                endpoints.append((peer.node, peer.index))
        self._reroute(endpoints, True)
        self._log("switch_fail", switch=name)

    def _reroute(self, endpoints, down: bool) -> None:
        """LB failover + route-memo invalidation, mirroring install_lb."""
        for node, idx in endpoints:
            lb = getattr(node, "lb", None)
            if lb is not None:
                cb = getattr(lb, "on_link_down" if down else "on_link_up", None)
                if cb is not None:
                    cb(idx)
            for port in getattr(node, "ports", ()):
                port._rt_cache.clear()
                peer = port.peer
                if peer is not None:
                    peer._rt_cache.clear()
        topo = self.topo
        topo.routing_epoch = getattr(topo, "routing_epoch", 0) + 1

    def _fire_loss_on(self, arg) -> None:
        name, in_port, rec, win = arg
        self._states[name].filters.setdefault(in_port, []).append(rec)
        self._loss_active.append(win)
        self._log("loss_on", kind=win["kind"], a=win["a"], b=win["b"], prob=win["prob"])

    def _fire_loss_off(self, arg) -> None:
        name, in_port, rec, win = arg
        fl = self._states[name].filters.get(in_port)
        if fl is not None and rec in fl:
            fl.remove(rec)
            if not fl:
                del self._states[name].filters[in_port]
        if win in self._loss_active:
            self._loss_active.remove(win)
        self._log("loss_off", kind=win["kind"], a=win["a"], b=win["b"])

    def _fire_storm_start(self, arg) -> None:
        sw, in_port, prio, until, interval = arg
        self._log("pfc_storm_start", switch=sw.name, port=in_port, prio=prio)
        self._storm_tick(arg)

    def _storm_tick(self, arg) -> None:
        sw, in_port, prio, until, interval = arg
        frame = Packet(PAUSE, size=PAUSE_FRAME_SIZE)
        frame.pause_prio = prio
        # Delivered through the ordinary control path: the victim's PFC
        # watchdog (if armed) sees exactly what a hung neighbour produces.
        sw.receive(frame, in_port)
        self.counters["storm_pauses"] += 1
        sim = self.sim
        if sim.now + interval <= until:
            sim.schedule(interval, self._storm_tick, arg)
        else:
            self._log("pfc_storm_end", switch=sw.name, port=in_port, prio=prio)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def collect(self):
        """Pull-collector contract of :class:`repro.obs.MetricsRegistry`:
        ``read() -> (counters, gauges)``.  Includes the invariant
        auditor's violation count so a storm that strands buffer bytes
        shows up in every snapshot."""
        counters = {f"faults.{k}": v for k, v in self.counters.items() if v}
        if self.auditor is not None:
            counters["faults.audit_violations"] = len(self.auditor.audit())
        gauges = {
            "faults.dead_links": float(len(self._dead_links)),
            "faults.failed_switches": float(len(self._failed_switches)),
            "faults.active_loss_windows": float(len(self._loss_active)),
        }
        return counters, gauges

    def flight_state(self) -> dict:
        """The ``faults`` section of the flight-dump schema (obs/flight.py)."""
        doc = {
            "plan": self.plan.name,
            "specs": len(self.plan.specs),
            "counters": dict(self.counters),
            "timeline": self.timeline[-256:],
            "active": {
                "dead_links": sorted(list(k) for k in self._dead_links),
                "failed_switches": sorted(self._failed_switches),
                "loss_windows": list(self._loss_active),
            },
        }
        if self.auditor is not None:
            doc["audit"] = self.auditor.audit(quiescent=False)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "armed" if self.sim is not None else "unarmed"
        return f"<FaultInjector {self.plan.name!r} {state}>"
