"""Buffer-checker-style invariant auditor (DESIGN.md §10).

Modelled on SONiC's ``buffer-checker`` (see
``/root/related/stephenxs__SONiC/doc/``): a read-only pass over live
switch/port state that reports accounting violations instead of letting
them silently skew a run.  Two tiers:

* **always-true** invariants — shared-buffer and PFC byte accounting can
  never go negative, and on a PFC-enabled switch the per-(in-port, prio)
  PFC bytes can never exceed the shared-buffer occupancy they are a
  breakdown of;
* **quiescence** invariants (``quiescent=True``, meaningful once the
  event heap has drained) — no buffered bytes left anywhere, no stranded
  frame-train commit windows (``Port._uncommitted``), no queue still
  paused, and every PAUSE a port emitted matched by a RESUME (the
  pause/resume ledger balances).

Nodes the active fault plan has fail-stopped are exempt from the
quiescence tier: a dead switch legitimately strands whatever it held.
The auditor is pure observation — it never mutates simulator state — so
registering it as a metrics pull collector or running it from the flight
recorder cannot perturb a run.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["FaultAuditor"]


class FaultAuditor:
    """Read-only invariant checks over one topology.

    ``audit()`` returns a list of human-readable violation strings (empty
    when healthy); it is cheap enough to run from a metrics snapshot.
    """

    def __init__(self, topo, faults=None) -> None:
        self.topo = topo
        self.faults = faults

    # ------------------------------------------------------------------

    def _exempt(self, node_name: str) -> bool:
        f = self.faults
        return f is not None and node_name in getattr(f, "_failed_switches", ())

    def audit(self, quiescent: bool = False) -> List[str]:
        v: List[str] = []
        for sw in getattr(self.topo, "switches", ()):
            self._audit_switch(sw, quiescent, v)
        for host in getattr(self.topo, "hosts", ()):
            self._audit_ports(host, quiescent, v)
        return v

    def _audit_switch(self, sw, quiescent: bool, v: List[str]) -> None:
        used = sw.buffer_used
        if used < 0:
            v.append(f"{sw.name}: negative shared-buffer occupancy ({used})")
        pfc_total = 0
        for in_p, counters in enumerate(sw._pfc_bytes):
            for prio, n in enumerate(counters):
                if n < 0:
                    v.append(
                        f"{sw.name}: negative PFC bytes in_port={in_p} "
                        f"prio={prio} ({n})"
                    )
                else:
                    pfc_total += n
        if sw._pfc_on and pfc_total > used >= 0:
            v.append(
                f"{sw.name}: PFC accounting ({pfc_total}B) exceeds shared "
                f"buffer occupancy ({used}B)"
            )
        self._audit_ports(sw, quiescent, v)
        if quiescent and not self._exempt(sw.name) and used != 0:
            v.append(f"{sw.name}: {used}B stranded in shared buffer at quiescence")

    def _audit_ports(self, node, quiescent: bool, v: List[str]) -> None:
        exempt = self._exempt(node.name)
        for port in node.ports:
            q = port.qbytes_total
            if q < 0:
                v.append(f"{node.name}[{port.index}]: negative queue bytes ({q})")
            s = port.stats
            if s.pause_sent < s.resume_sent:
                v.append(
                    f"{node.name}[{port.index}]: resume_sent ({s.resume_sent}) "
                    f"exceeds pause_sent ({s.pause_sent})"
                )
            if not quiescent or exempt:
                continue
            if q != 0:
                v.append(
                    f"{node.name}[{port.index}]: {q}B queued at quiescence"
                )
            if port._uncommitted != 0:
                v.append(
                    f"{node.name}[{port.index}]: {port._uncommitted} frames in "
                    "a stranded commit window at quiescence"
                )
            if any(port.paused):
                prios = [i for i, p in enumerate(port.paused) if p]
                v.append(
                    f"{node.name}[{port.index}]: still paused at quiescence "
                    f"(prios {prios})"
                )
            if s.pause_sent != s.resume_sent:
                v.append(
                    f"{node.name}[{port.index}]: pause/resume ledger imbalance "
                    f"at quiescence ({s.pause_sent} pauses, {s.resume_sent} resumes)"
                )

    # -- merged multi-shard snapshots ------------------------------------

    @staticmethod
    def audit_merged(payloads, quiescent: bool = True) -> List[str]:
        """Quiescence audit over the merged plain-data payloads of a
        sharded run (the values of ``collect_all()``).

        Each shard reports only the ports it owns, so the PFC ledger
        balances *only in the union*: a PAUSE sent across a cut counts
        ``pause_sent`` on one shard and ``pause_received`` on another.
        At a drained stop the merged ledger must balance exactly and the
        boundaries must be empty (the coordinator only declares idle
        when the last window exported nothing).  At a horizon stop the
        tx-vs-rx gaps must be covered by the boundary residue: frames
        exported but not yet injected plus frames still on a cut wire
        past the final barrier.
        """
        totals = {
            "pause_sent": 0,
            "pause_received": 0,
            "resume_sent": 0,
            "resume_received": 0,
        }
        exported = injected = in_flight = 0
        for payload in payloads.values() if isinstance(payloads, dict) else payloads:
            pfc = payload["pfc"]
            for key in totals:
                totals[key] += pfc[key]
            b = payload.get("boundary", {})
            exported += b.get("exported", 0)
            injected += b.get("injected", 0)
            in_flight += b.get("in_flight", 0)

        v: List[str] = []
        pause_gap = totals["pause_sent"] - totals["pause_received"]
        resume_gap = totals["resume_sent"] - totals["resume_received"]
        if pause_gap < 0:
            v.append(
                f"merged ledger: {-pause_gap} more PAUSE received than sent"
            )
        if resume_gap < 0:
            v.append(
                f"merged ledger: {-resume_gap} more RESUME received than sent"
            )
        residue = (exported - injected) + in_flight
        if residue < 0:
            v.append(
                f"boundary ledger: {injected - exported} more frames injected "
                f"than exported"
            )
        if quiescent:
            if exported != injected:
                v.append(
                    f"boundary residue at quiescence: {exported} exported vs "
                    f"{injected} injected"
                )
            if in_flight:
                v.append(
                    f"{in_flight} frames still on cut wires at quiescence"
                )
            if pause_gap or resume_gap:
                v.append(
                    f"merged pause/resume ledger imbalance at quiescence "
                    f"({pause_gap} pauses, {resume_gap} resumes unmatched)"
                )
        elif max(pause_gap, 0) + max(resume_gap, 0) > max(residue, 0):
            v.append(
                f"merged ledger gaps ({pause_gap} pauses, {resume_gap} resumes) "
                f"exceed the boundary residue ({residue} frames)"
            )
        return v

    # -- pull-collector contract ----------------------------------------

    def collect(self):
        """``MetricsRegistry`` pull collector: violation count as a counter
        (monotone enough for snapshot diffing — healthy runs stay at 0)."""
        return {"faults.audit_violations": len(self.audit())}, {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultAuditor over {getattr(self.topo, 'name', self.topo)!r}>"
