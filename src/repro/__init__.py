"""repro — a full packet-level reproduction of *FNCC: Fast Notification
Congestion Control in Data Center Networks* (Xu et al., 2024).

Quickstart::

    from repro import quick_dumbbell
    result = quick_dumbbell(cc="fncc")
    print(result.peak_queue_bytes, "bytes peak queue")

Public surface:

* ``repro.sim`` — discrete-event engine (integer-picosecond clock).
* ``repro.net`` — lossless Ethernet: ports, PFC, ECN, switches with
  HPCC/FNCC INT insertion, hosts.
* ``repro.transport`` — RDMA-style QPs (sender RP / receiver ACK point).
* ``repro.cc`` — FNCC and the baselines (HPCC, DCQCN, RoCC, Timely, Swift).
* ``repro.topo`` / ``repro.routing`` — fabrics and symmetric routing.
* ``repro.lb`` — pluggable load balancing (ECMP, spray, flowlet,
  ConWeave-lite) with reorder-tolerant receivers.
* ``repro.traffic`` / ``repro.metrics`` — workloads and measurements.
* ``repro.experiments`` — one module per paper figure.
"""

from repro.units import KB, MB, GB, US, MS, SEC, us, ms
from repro.sim import Simulator, SeedSequenceFactory
from repro.net import Switch, SwitchConfig, IntMode, Host, EcnConfig
from repro.transport import Flow, TransportConfig
from repro.cc import make_cc_factory, ALGORITHMS
from repro.topo import Topology, dumbbell, fattree, star, congestion_at, jellyfish
from repro.lb import LbConfig, install_lb
from repro.metrics import FctCollector, QueueSampler, RateSampler, UtilizationSampler
from repro.traffic import websearch_cdf, fb_hadoop_cdf, PoissonWorkload
from repro.experiments.common import quick_dumbbell
from repro.analysis import (
    NotificationModel,
    FluidLink,
    fair_window,
    FlowLevelSimulator,
)
from repro.metrics.tap import PacketTap
from repro.net.pfc_analysis import routing_is_deadlock_free
from repro.viz import ascii_plot, compare_series, sparkline

__version__ = "1.0.0"

__all__ = [
    "KB", "MB", "GB", "US", "MS", "SEC", "us", "ms",
    "Simulator", "SeedSequenceFactory",
    "Switch", "SwitchConfig", "IntMode", "Host", "EcnConfig",
    "Flow", "TransportConfig",
    "make_cc_factory", "ALGORITHMS",
    "Topology", "dumbbell", "fattree", "star", "congestion_at", "jellyfish",
    "FctCollector", "QueueSampler", "RateSampler", "UtilizationSampler",
    "websearch_cdf", "fb_hadoop_cdf", "PoissonWorkload",
    "quick_dumbbell",
    "NotificationModel", "FluidLink", "fair_window", "FlowLevelSimulator",
    "PacketTap", "routing_is_deadlock_free",
    "ascii_plot", "compare_series", "sparkline",
    "__version__",
]
