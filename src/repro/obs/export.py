"""Chrome trace-event JSON export (object-format, Perfetto-loadable).

One run (or several cells of an experiment) serialize to the
`trace-event` object format: ``{"traceEvents": [...], "otherData": ...}``.
Each cell gets its own ``pid`` with a ``process_name`` metadata record;
each trace category gets a stable ``tid`` with a ``thread_name`` record,
so the chrome://tracing / Perfetto timeline shows one swim-lane per
category per cell.  Timestamps convert from integer picoseconds to the
format's microseconds (float; ~50 ps resolution survives to double well
beyond any horizon we run).

The module doubles as the CI validator::

    python -m repro.obs.export /tmp/t.json --require-registry

checks the JSON schema (required event keys, phase-specific fields) and,
with ``--require-registry``, the registry snapshot keys embedded under
``otherData.registry`` by the ``fncc-exp --trace`` path.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import CATEGORIES, PKT, EventTracer

#: Stable swim-lane ids per category.
TRACE_TIDS: Dict[str, int] = {c: i + 1 for i, c in enumerate(CATEGORIES + (PKT,))}

#: Registry snapshot counters every instrumented run must carry — the CI
#: contract checked by ``--require-registry``.
REQUIRED_REGISTRY_COUNTERS = ("engine.events_dispatched", "ports.tx_packets")


def chrome_trace_events(tracer: EventTracer, pid: int = 0,
                        label: Optional[str] = None) -> List[dict]:
    """Flatten one tracer's ring into trace-event dicts."""
    out: List[dict] = []
    if label is not None:
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    used = {ev.cat for ev in tracer.events}
    for cat in sorted(used):
        out.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": TRACE_TIDS[cat], "args": {"name": cat},
        })
    for ev in tracer.events:
        d = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts_ps / 1e6,
            "pid": pid,
            "tid": TRACE_TIDS[ev.cat],
        }
        if ev.ph == "X":
            d["dur"] = ev.dur_ps / 1e6
        if ev.args:
            d["args"] = ev.args
        out.append(d)
    return out


def export_chrome_trace(
    path: str,
    tracers: Union[EventTracer, Sequence[Tuple[str, EventTracer]]],
    registry: Optional[dict] = None,
) -> dict:
    """Write one Chrome trace file.

    ``tracers`` is either a single :class:`EventTracer` or ``(label,
    tracer)`` pairs — one pid per cell.  ``registry`` (a snapshot dict, or
    a merge of several) rides along under ``otherData.registry`` so one
    file answers both "what happened when" and "how much of it".
    Returns the written document.
    """
    if isinstance(tracers, EventTracer):
        tracers = [(None, tracers)]
    events: List[dict] = []
    dropped = 0
    for pid, (label, tracer) in enumerate(tracers):
        events.extend(chrome_trace_events(tracer, pid=pid, label=label))
        dropped += tracer.dropped
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ns"}
    other: dict = {}
    if registry is not None:
        other["registry"] = registry
    if dropped:
        other["ring_evicted_events"] = dropped
    if other:
        doc["otherData"] = other
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(path: str, require_registry: bool = False) -> dict:
    """Validate a trace file's schema; raises ``ValueError`` on the first
    violation.  Returns ``{"events": n, "categories": {...}, ...}``."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event object file (no 'traceEvents')")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    cats: Dict[str, int] = {}
    n = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event #{i} missing {key!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        for key in ("cat", "ts"):
            if key not in ev:
                raise ValueError(f"event #{i} ({ph!r}) missing {key!r}")
        if not isinstance(ev["ts"], (int, float)):
            raise ValueError(f"event #{i}: 'ts' must be numeric")
        if ph == "X" and "dur" not in ev:
            raise ValueError(f"event #{i}: complete event missing 'dur'")
        if ph not in ("i", "I", "X", "B", "E", "C"):
            raise ValueError(f"event #{i}: unexpected phase {ph!r}")
        cats[ev["cat"]] = cats.get(ev["cat"], 0) + 1
        n += 1
    info = {"events": n, "categories": cats}
    registry = doc.get("otherData", {}).get("registry")
    if require_registry:
        if registry is None:
            raise ValueError("no registry snapshot under otherData.registry")
        counters = registry.get("counters", {})
        for key in REQUIRED_REGISTRY_COUNTERS:
            if key not in counters:
                raise ValueError(f"registry snapshot missing counter {key!r}")
        info["registry_counters"] = len(counters)
    elif registry is not None:
        info["registry_counters"] = len(registry.get("counters", {}))
    return info


def main(argv: Optional[Iterable[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Validate a Chrome trace-event JSON file.",
    )
    parser.add_argument("path", help="trace file to validate")
    parser.add_argument(
        "--require-registry",
        action="store_true",
        help="also require the embedded registry snapshot and its core keys",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        info = validate_chrome_trace(args.path, require_registry=args.require_registry)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}")
        return 1
    cats = ", ".join(f"{c}={n}" for c, n in sorted(info["categories"].items()))
    extra = (
        f", registry counters={info['registry_counters']}"
        if "registry_counters" in info
        else ""
    )
    print(f"OK: {info['events']} events ({cats}){extra}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
