"""Flight recorder: crash-state dumps for failed runs (DESIGN.md §8).

A long run that dies with a ``FluidStallError`` at 100k flows is
undebuggable from the traceback alone — the state that explains it (queue
depths, paused ports, unfinished flows, the last few hundred trace
events) is gone with the process.  :class:`FlightRecorder` wraps the run
in a :meth:`guard` context; on *any* exception it stops the registered
samplers, serializes engine / port / flow state plus the trace ring's
tail and the registry snapshot to a JSON diagnosis file, and re-raises.

File format (all keys optional except ``exception``)::

    {
      "exception": {"type", "message", "traceback", "worker_traceback"},
      "engine":    {"now_ps", "events_dispatched", "queue_len", "pool_len"},
      "ports":     [{"node", "port", "qbytes", "paused", ...counters}, ...],
      "flows":     [{"flow", "host", "size", "acked", "rate_gbps"}, ...],
      "trace_tail": [last-N TraceEvent dicts, oldest first],
      "registry":  <MetricsRegistry snapshot>,
      "faults":    {"plan", "counters", "timeline", "active", "audit",
                    "watchdogs": [<PfcWatchdog.state()>, ...]}
    }

The ``faults`` section appears only when the run armed a
:class:`~repro.faults.FaultInjector` (``sim.faults``) or a PFC-storm
watchdog on some switch — healthy runs dump the same schema as before.

``ports`` and ``flows`` are bounded (busiest/unfinished first) so a dump
at million-flow scale stays readable and quick to write.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import traceback
from contextlib import contextmanager
from typing import Optional


class FlightRecorder:
    """Per-run crash-dump writer.

    >>> flight = FlightRecorder(path="diag.json", tracer=tracer)
    >>> with flight.guard(sim=fab.sim, topo=fab.topo):
    ...     drive_fct(...)
    """

    def __init__(
        self,
        path: Optional[str] = None,
        tracer=None,
        registry=None,
        last_n: int = 256,
        max_items: int = 64,
    ) -> None:
        self.path = path
        self.tracer = tracer
        self.registry = registry
        self.last_n = last_n
        self.max_items = max_items
        self.sim = None
        self.topo = None
        #: path of the last dump written (None until a crash).
        self.dumped_path: Optional[str] = None

    def bind(self, sim=None, topo=None, tracer=None, registry=None) -> None:
        """(Re-)bind live run state; the hybrid backend re-binds on every
        rebuilt packet fabric so a crash always dumps the current one."""
        if sim is not None:
            self.sim = sim
        if topo is not None:
            self.topo = topo
        if tracer is not None:
            self.tracer = tracer
        if registry is not None:
            self.registry = registry

    @contextmanager
    def guard(self, sim=None, topo=None):
        """Context manager: dump on any exception, then re-raise."""
        self.bind(sim=sim, topo=topo)
        try:
            yield self
        except Exception as exc:
            self.dump(exc)
            raise

    # -- dumping ------------------------------------------------------------
    def dump(self, exc: Optional[BaseException] = None) -> str:
        """Write the diagnosis file; returns its path.  Never raises — a
        recorder that dies while recording would mask the real failure."""
        try:
            return self._dump(exc)
        except Exception as dump_exc:  # pragma: no cover - last resort
            print(f"[obs] flight recorder failed: {dump_exc!r}", file=sys.stderr)
            return ""

    def _dump(self, exc: Optional[BaseException]) -> str:
        sim = self.sim
        if sim is not None:
            # Disarm pending samplers first: a dump must not leave armed
            # Periodics behind on a simulator someone may keep stepping.
            stop = getattr(sim, "stop_monitors", None)
            if stop is not None:
                stop()
        doc: dict = {"exception": self._exception_dict(exc)}
        if sim is not None:
            doc["engine"] = {
                "now_ps": sim.now,
                "events_dispatched": sim.events_dispatched,
                "queue_len": sim.queue_len(),
                "pool_len": sim.pool_len(),
            }
        if self.topo is not None:
            doc["ports"] = self._port_states()
            doc["flows"] = self._flow_states()
        if self.tracer is not None:
            doc["trace_tail"] = [ev.to_dict() for ev in self.tracer.tail(self.last_n)]
            doc["trace_counts"] = dict(self.tracer.counts)
        if self.registry is not None:
            doc["registry"] = self.registry.snapshot()
        faults = self._fault_states()
        if faults:
            doc["faults"] = faults
        path = self.path or os.path.join(
            tempfile.gettempdir(), f"flightrec-{os.getpid()}.json"
        )
        with open(path, "w") as fh:
            json.dump(doc, fh, default=str)
        self.dumped_path = path
        print(f"[obs] flight recorder wrote {path}", file=sys.stderr)
        return path

    @staticmethod
    def _exception_dict(exc: Optional[BaseException]) -> dict:
        if exc is None:
            return {"type": None, "message": "dump() called without exception"}
        d = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        }
        # SweepError carries the worker-side traceback — surface it.
        wtb = getattr(exc, "worker_traceback", None)
        if wtb:
            d["worker_traceback"] = wtb
        key = getattr(exc, "key", None)
        if key is not None:
            d["sweep_key"] = repr(key)
        return d

    def _nodes(self):
        topo = self.topo
        return list(getattr(topo, "hosts", ())) + list(getattr(topo, "switches", ()))

    def _fault_states(self) -> dict:
        """The ``faults`` section: active fault timeline + watchdog state,
        present only when the run armed either (DESIGN.md §10)."""
        doc: dict = {}
        inj = getattr(self.sim, "faults", None)
        if inj is not None:
            doc.update(inj.flight_state())
        watchdogs = []
        for sw in getattr(self.topo, "switches", ()) if self.topo is not None else ():
            wd = getattr(sw, "_wd", None)
            if wd is not None:
                watchdogs.append(wd.state())
        if watchdogs:
            doc["watchdogs"] = watchdogs
        return doc

    def _port_states(self) -> list:
        rows = []
        for node in self._nodes():
            for port in node.ports:
                s = port.stats
                qbytes = getattr(port, "qbytes_total", 0)
                row = {
                    "node": node.name,
                    "port": port.index,
                    "qbytes": qbytes,
                    "tx_packets": s.tx_packets,
                    "rx_packets": s.rx_packets,
                    "drops": s.drops,
                    "pause_sent": s.pause_sent,
                    "resume_sent": s.resume_sent,
                    "max_qlen": s.max_qlen,
                }
                paused = getattr(port, "paused_prios", None)
                if callable(paused):
                    try:
                        row["paused"] = paused()
                    except Exception:
                        pass
                rows.append(row)
        # Busiest first (backlog, then drops/pauses), bounded.
        rows.sort(
            key=lambda r: (r["qbytes"], r["drops"], r["pause_sent"]), reverse=True
        )
        return rows[: self.max_items]

    def _flow_states(self) -> list:
        rows = []
        for host in getattr(self.topo, "hosts", ()):
            for flow_id, qp in getattr(host, "senders", {}).items():
                if getattr(qp, "finished", False):
                    continue
                rows.append(
                    {
                        "flow": flow_id,
                        "host": host.name,
                        "size": getattr(getattr(qp, "flow", None), "size_bytes", None),
                        "acked": getattr(qp, "acked_bytes", None),
                        "rate_gbps": round(getattr(qp, "rate_gbps", 0.0), 3),
                    }
                )
                if len(rows) >= self.max_items:
                    return rows
        return rows
