"""Run telemetry subsystem (DESIGN.md §8): metrics registry, structured
event tracing, flight recorder and live progress.

Everything here is **per-run owned, never global**: experiments build a
:class:`RunObservability` bundle, attach it to one simulator + fabric,
and ship its snapshot with the run's summary.  Registry/counter-level
observability is pull-based and byte-identical (fingerprints are pinned
with it on and off, trains on and off — ``tests/obs``); tracer hooks are
train-safe except the explicitly tap-like ``pkt`` category (see
:mod:`repro.obs.trace`).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import CATEGORIES, PKT, EventTracer, TraceEvent
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.flight import FlightRecorder
from repro.obs.progress import ProgressReporter

#: Cap on per-item trace emissions from aggregate phases (e.g. one event
#: per demoted flow in the hybrid classify pass) so a 100k-flow demotion
#: burst cannot monopolize the ring.
PER_PHASE_EVENT_CAP = 512


class RunObservability:
    """The bundle one run carries: any subset of registry / tracer /
    flight recorder / progress reporter.

    >>> obs = RunObservability(registry=MetricsRegistry(),
    ...                        tracer=EventTracer(),
    ...                        progress=ProgressReporter(label="fncc"))
    >>> result = run_fct_experiment("fncc", obs=obs)
    >>> obs.snapshot()["counters"]["engine.events_dispatched"]
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        flight: Optional[FlightRecorder] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.flight = flight
        self.progress = progress
        self._sim = None  # last-attached simulator (rebuild detection)

    # -- wiring -------------------------------------------------------------
    def attach(self, sim, topo, collector=None) -> "RunObservability":
        """Bind the bundle to a run's simulator + fabric.  Called again on
        a rebuilt fabric (hybrid refine rounds) it re-binds everything to
        the new one — the discarded fabric's collectors and tracer hooks
        are dropped first so it stops contributing to snapshots."""
        if self._sim is not None and self._sim is not sim:
            if self.registry is not None:
                self.registry.reset_run_bindings()
            if self.tracer is not None:
                self.tracer.detach()
        self._sim = sim
        if getattr(sim, "obs", None) is not self:
            try:
                sim.obs = self
            except AttributeError:  # simulator-like test doubles
                pass
        if self.registry is not None:
            self.registry.bind_sim(sim)
            self.registry.bind_topo(topo)
            if collector is not None:
                self.registry.bind_fct(collector)
        if self.tracer is not None:
            self.tracer.attach(topo)
        if self.flight is not None:
            self.flight.bind(
                sim=sim, topo=topo, tracer=self.tracer, registry=self.registry
            )
        return self

    def detach(self) -> None:
        """Unwind tracer hooks (registry collectors are passive reads and
        need no teardown)."""
        if self.tracer is not None:
            self.tracer.detach()

    def guard(self, sim=None, topo=None):
        """Flight-recorder context for a drive phase; a no-op context when
        no recorder is configured."""
        if self.flight is not None:
            return self.flight.guard(sim=sim, topo=topo)
        return nullcontext()

    # -- cold-path emission helpers ----------------------------------------
    def phase(self, name: str, ts_ps: int = 0, **info) -> None:
        """Announce a phase transition: progress line + hybrid trace event."""
        if self.progress is not None:
            self.progress.phase(name, **info)
        if self.tracer is not None:
            self.tracer.emit("hybrid", name, ts_ps, args=info or None)

    def trace_each(self, cat: str, name: str, items, ts_ps: int = 0,
                   key: str = "id") -> None:
        """Emit one instant event per item, capped at
        :data:`PER_PHASE_EVENT_CAP` (the cap is recorded as a counter so
        truncation is never silent)."""
        if self.tracer is None or not self.tracer.enabled(cat):
            return
        items = list(items)
        for item in items[:PER_PHASE_EVENT_CAP]:
            self.tracer.emit(cat, name, ts_ps, args={key: item})
        if len(items) > PER_PHASE_EVENT_CAP and self.registry is not None:
            self.registry.counter(f"trace.{name}_truncated").inc(
                len(items) - PER_PHASE_EVENT_CAP
            )

    def observe_hybrid(self, stats) -> None:
        if self.registry is not None:
            self.registry.observe_hybrid(stats)

    def snapshot(self) -> Optional[dict]:
        return self.registry.snapshot() if self.registry is not None else None


__all__ = [
    "CATEGORIES",
    "PKT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventTracer",
    "TraceEvent",
    "FlightRecorder",
    "ProgressReporter",
    "RunObservability",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    "merge_snapshots",
]
