"""Live progress heartbeats for long runs (DESIGN.md §8).

``million_flows`` runs three minutes with zero feedback; a heartbeat every
few wall-seconds — sim-time advance, events/s, flows completed, ETA —
turns "is it stuck?" into a glance.  :class:`ProgressReporter` is wall-
clock rate-limited (the drive loops call :meth:`tick` every sim-time
chunk / hybrid epoch; almost all calls return without formatting
anything), writes to stderr so piped experiment output stays clean, and
is wired in by ``fncc-exp --progress`` / ``tools/bench.py --progress``.

ETA comes from the sim-time advance rate against the drive horizon; once
flows complete, the flow completion rate usually beats the horizon bound
and the smaller of the two is shown.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


def _fmt_rate(n: float) -> str:
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    if n >= 1e3:
        return f"{n / 1e3:.1f}k"
    return f"{n:.0f}"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None or seconds != seconds or seconds < 0:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Wall-clock heartbeats for one run (or one cell of a sweep).

    >>> prog = ProgressReporter(label="fncc", interval_s=5.0)
    >>> ... drive loop calls prog.tick(sim, completed=..., ...) ...
    """

    def __init__(
        self,
        label: str = "",
        interval_s: float = 5.0,
        stream=None,
    ) -> None:
        self.label = label
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self.heartbeats = 0
        self._t0 = time.monotonic()
        self._last_wall = self._t0
        self._last_events = 0
        self._last_now = 0
        self._total: Optional[int] = None
        self._horizon_ps: Optional[int] = None

    # -- heartbeats ---------------------------------------------------------
    def tick(
        self,
        sim,
        completed: Optional[int] = None,
        total: Optional[int] = None,
        horizon_ps: Optional[int] = None,
        force: bool = False,
    ) -> bool:
        """Rate-limited heartbeat; returns True when a line was printed.
        ``force`` bypasses the interval (the drive loops force the first
        tick so even a short run prints at least one heartbeat)."""
        if total is not None:
            self._total = total
        if horizon_ps is not None:
            self._horizon_ps = horizon_ps
        wall = time.monotonic()
        if not force and wall - self._last_wall < self.interval_s:
            return False
        dt = wall - self._last_wall
        devents = sim.events_dispatched - self._last_events
        dsim = sim.now - self._last_now
        if devents < 0 or dsim < 0:
            # A fresh simulator behind the same reporter (bench warmup,
            # sweep cells): restart the rate baselines instead of showing
            # a negative rate.
            devents = sim.events_dispatched
            dsim = sim.now
        eps = devents / dt if dt > 1e-9 else 0.0
        self._last_wall = wall
        self._last_events = sim.events_dispatched
        self._last_now = sim.now
        self.heartbeats += 1
        self._emit(sim, completed, eps, dsim / dt if dt > 1e-9 else 0.0)
        return True

    def _emit(self, sim, completed, events_per_s: float, simps_per_s: float) -> None:
        parts = ["[progress]"]
        if self.label:
            parts.append(self.label)
        horizon = self._horizon_ps
        if horizon:
            parts.append(
                f"sim={sim.now / 1e9:.2f}ms/{horizon / 1e9:.2f}ms"
                f" ({100.0 * sim.now / horizon:.1f}%)"
            )
        else:
            parts.append(f"sim={sim.now / 1e9:.2f}ms")
        parts.append(f"events/s={_fmt_rate(events_per_s)}")
        eta = None
        if completed is not None and self._total:
            parts.append(f"flows={completed}/{self._total}")
            elapsed = time.monotonic() - self._t0
            if completed > 0 and elapsed > 1e-9:
                eta = (self._total - completed) * elapsed / completed
        if horizon and simps_per_s > 0:
            horizon_eta = (horizon - sim.now) / simps_per_s
            eta = horizon_eta if eta is None else min(eta, horizon_eta)
        parts.append(f"eta={_fmt_eta(eta)}")
        print(" ".join(parts), file=self.stream, flush=True)

    # -- phase transitions (hybrid backend, sweep cells) --------------------
    def phase(self, name: str, **info) -> None:
        """Always-printed phase line, e.g. hybrid classify/refine/final."""
        prefix = f"[progress] {self.label} " if self.label else "[progress] "
        detail = " ".join(f"{k}={v}" for k, v in info.items())
        print(f"{prefix}phase {name}" + (f": {detail}" if detail else ""),
              file=self.stream, flush=True)

    def finish(self, sim=None, completed: Optional[int] = None,
               total: Optional[int] = None) -> None:
        """Final summary line with run totals."""
        elapsed = time.monotonic() - self._t0
        parts = ["[progress]"]
        if self.label:
            parts.append(self.label)
        parts.append("done")
        if sim is not None:
            parts.append(f"sim={sim.now / 1e9:.2f}ms")
            parts.append(f"events={_fmt_rate(sim.events_dispatched)}")
            if elapsed > 1e-9:
                parts.append(f"events/s={_fmt_rate(sim.events_dispatched / elapsed)}")
        if completed is not None:
            tot = total if total is not None else self._total
            parts.append(
                f"flows={completed}/{tot}" if tot is not None else f"flows={completed}"
            )
        parts.append(f"wall={elapsed:.1f}s")
        print(" ".join(parts), file=self.stream, flush=True)
