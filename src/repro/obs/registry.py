"""The run-owned metrics registry (DESIGN.md §8).

One :class:`MetricsRegistry` per run, never global: experiments construct
it, bind the run's simulator/fabric, and ship the :meth:`snapshot` dict
with the run's summary.  Aggregation is **pull-based** — the registry
never wraps anything on the hot path; at snapshot time it reads the
counters the fabric already maintains (:class:`repro.net.port.PortStats`,
engine dispatch/heap/pool counters, LB reroute tallies, hybrid phase
stats).  That is what makes registry-level observability byte-identical
and train-safe by construction: enabling it changes no event, no RNG
draw, and no wire timestamp (pinned by ``tests/obs``).

Push-style instruments (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) exist for *cold* paths — phase transitions, flight
dumps, per-flow completions — and for subsystems that want named metrics
without growing their own ad-hoc dicts.

Snapshots are plain JSON-able dicts so they pickle across ``exec`` spawn
workers; :func:`merge_snapshots` is the reduce step (counters sum, gauges
max, histograms add bucket-wise).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value: either a callback read at snapshot time or a
    value pushed with :meth:`set`.  Merged across workers by ``max``."""

    __slots__ = ("name", "fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.fn = fn
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    def read(self):
        return self.fn() if self.fn is not None else self._value


class Histogram:
    """Fixed-bound bucket counts (``len(bounds) + 1`` buckets; the last is
    the overflow).  Bounds are upper-inclusive: a sample lands in the first
    bucket whose bound is >= the value."""

    __slots__ = ("name", "bounds", "counts")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        self.name = name
        self.bounds = [float(b) for b in bounds]
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        # First bucket whose bound >= value == bisect_left on the bounds.
        self.counts[bisect_left(self.bounds, float(value))] += 1

    def total(self) -> int:
        return sum(self.counts)

    def to_dict(self) -> Dict[str, list]:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


class MetricsRegistry:
    """Named instruments plus pull collectors, snapshotted to one dict.

    Ownership rule: a registry belongs to exactly one run (one simulator,
    one fabric).  Binding a second simulator raises — merged views are the
    job of :func:`merge_snapshots`, not of a shared registry (a global
    registry would double-count rebuilt fabrics and break worker merges).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: snapshot-time readers; each returns ({counter: n}, {gauge: v}).
        self._collectors: List[Callable[[], tuple]] = []
        self._sim = None

    # -- instruments (push, cold paths only) -------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            g.fn = fn
        return g

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # -- pull collectors ----------------------------------------------------
    def reset_run_bindings(self) -> None:
        """Drop the pull collectors and simulator binding, keeping push
        instruments.  For re-attaching the bundle to a *rebuilt* fabric of
        the same run (hybrid refine rounds rebuild the packet fabric, and
        the discarded one must stop contributing to snapshots or its
        counters double-count) — NOT for sharing a registry across runs;
        cross-run aggregation goes through :func:`merge_snapshots`."""
        self._collectors.clear()
        self._sim = None

    def bind_sim(self, sim) -> None:
        """Aggregate the engine's own counters at snapshot time."""
        if self._sim is not None and self._sim is not sim:
            raise ValueError(
                "MetricsRegistry is per-run: already bound to another "
                "Simulator (build a fresh registry, merge snapshots instead)"
            )
        self._sim = sim

        def read():
            return (
                {"engine.events_dispatched": sim.events_dispatched},
                {
                    "engine.now_ps": sim.now,
                    "engine.queue_len": sim.queue_len(),
                    "engine.pool_len": sim.pool_len(),
                },
            )

        self._collectors.append(read)

    def bind_topo(self, topo) -> None:
        """Aggregate every port's :class:`PortStats`, switch buffer state
        and any LB strategy counters of a topology-like object."""

        def read():
            counters = {
                "ports.tx_packets": 0,
                "ports.tx_bytes": 0,
                "ports.rx_packets": 0,
                "ports.rx_bytes": 0,
                "ports.drops": 0,
                "ports.ecn_marked": 0,
                "ports.train_frames": 0,
                "pfc.pause_sent": 0,
                "pfc.pause_received": 0,
                "pfc.resume_sent": 0,
                "pfc.resume_received": 0,
            }
            gauges = {"ports.max_qlen": 0, "switches.buffer_used_max": 0}
            nodes = list(getattr(topo, "hosts", ())) + list(
                getattr(topo, "switches", ())
            )
            seen_lbs = set()
            for node in nodes:
                for port in node.ports:
                    s = port.stats
                    counters["ports.tx_packets"] += s.tx_packets
                    counters["ports.tx_bytes"] += s.tx_bytes
                    counters["ports.rx_packets"] += s.rx_packets
                    counters["ports.rx_bytes"] += s.rx_bytes
                    counters["ports.drops"] += s.drops
                    counters["ports.ecn_marked"] += s.ecn_marked
                    counters["ports.train_frames"] += port.train_frames
                    counters["pfc.pause_sent"] += s.pause_sent
                    counters["pfc.pause_received"] += s.pause_received
                    counters["pfc.resume_sent"] += s.resume_sent
                    counters["pfc.resume_received"] += s.resume_received
                    if s.max_qlen > gauges["ports.max_qlen"]:
                        gauges["ports.max_qlen"] = s.max_qlen
                buf = getattr(node, "buffer_used", None)
                if buf is not None and buf > gauges["switches.buffer_used_max"]:
                    gauges["switches.buffer_used_max"] = buf
                lb = getattr(node, "lb", None)
                if lb is not None and id(lb) not in seen_lbs:
                    seen_lbs.add(id(lb))
                    for attr, key in (("reroutes", "lb.reroutes"), ("probes", "lb.probes")):
                        v = getattr(lb, attr, None)
                        if v is not None:
                            counters[key] = counters.get(key, 0) + v
            return counters, gauges

        self._collectors.append(read)

    def bind_fct(self, collector) -> None:
        """Aggregate an :class:`~repro.metrics.fct.FctCollector`'s
        completion count (live progress and end-of-run snapshot share it)."""

        def read():
            return {"flows.completed": collector.completed()}, {}

        self._collectors.append(read)

    def bind_collector(self, read: Callable[[], tuple]) -> None:
        """Register an arbitrary pull collector: ``read()`` must return
        ``({counter_name: n}, {gauge_name: v})``.  Counters from several
        collectors sharing a key sum at snapshot time; gauges take the
        max.  This is how subsystems outside ``obs`` (fault injectors,
        PFC watchdogs, invariant auditors) join the snapshot without the
        registry importing them."""
        self._collectors.append(read)

    def observe_hybrid(self, stats: Dict[str, int]) -> None:
        """Fold a hybrid backend's phase-stats dict into the snapshot
        (``hybrid.demoted``, ``hybrid.fluid``, ``hybrid.refine_rounds``,
        epoch-exchange event counts...)."""
        for key, value in stats.items():
            if isinstance(value, (int, float)):
                c = self.counter(f"hybrid.{key}")
                c.value = value

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """One JSON-able dict: pull collectors + push instruments."""
        counters: Dict[str, float] = {
            name: c.value for name, c in self._counters.items()
        }
        gauges: Dict[str, float] = {
            name: g.read() for name, g in self._gauges.items()
        }
        for read in self._collectors:
            cs, gs = read()
            for k, v in cs.items():
                counters[k] = counters.get(k, 0) + v
            for k, v in gs.items():
                if k not in gauges or v > gauges[k]:
                    gauges[k] = v
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: h.to_dict() for name, h in self._histograms.items()
            },
            "meta": {"runs": 1},
        }

    #: Alias — the exportable form named in the issue/design docs.
    to_dict = snapshot


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Reduce worker snapshots into one: counters sum, gauges max,
    histograms add bucket-wise (bounds must match), ``meta.runs`` sums.
    ``None`` entries (runs without a registry) are skipped."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    runs = 0
    for snap in snapshots:
        if not snap:
            continue
        runs += snap.get("meta", {}).get("runs", 1)
        for k, v in snap.get("counters", {}).items():
            counters[k] = counters.get(k, 0) + v
        for k, v in snap.get("gauges", {}).items():
            if k not in gauges or v > gauges[k]:
                gauges[k] = v
        for name, h in snap.get("histograms", {}).items():
            have = histograms.get(name)
            if have is None:
                histograms[name] = {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                }
            else:
                if have["bounds"] != list(h["bounds"]):
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ across workers"
                    )
                have["counts"] = [a + b for a, b in zip(have["counts"], h["counts"])]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "meta": {"runs": runs},
    }
