"""Structured event tracing with bounded ring buffers (DESIGN.md §8).

Categories map to the run's decision points:

* ``flow``   — flow lifecycle (start instants, completion spans with FCT)
* ``pfc``    — PAUSE/RESUME frame emission at switches
* ``lb``     — load-balancer reroute decisions (ConWeave-lite epochs)
* ``hybrid`` — tier demotions and epoch-exchange ticks of the hybrid backend
* ``cc``     — congestion-control pacing-rate changes
* ``fault``  — fault-plan events and PFC-watchdog storm transitions
* ``pkt``    — per-frame receive at a tapped switch (opt-in, tap-like)

Train-safety contract (the hard constraint of the observability layer):
every hook :meth:`EventTracer.attach` installs is **train-safe** — it
never wraps a switch's ``receive`` or ``router``, so the frame-train gate
(``Switch._train_ok``) stays open and fingerprints are byte-identical
with the tracer on or off:

* ``_send_pfc`` wrappers are honored *by* the fused delivery pipeline
  (``Port._tx_deliver`` calls ``A._send_pfc`` through instance-attribute
  lookup) and only run when a control frame is actually emitted — a cold
  path by construction.
* Host-side hooks (``start_flow``, ``on_flow_received``, per-flow CC
  methods) live on endpoints, and trains never fuse into hosts.
* LB reroute events come from an explicit ``on_reroute`` callback slot the
  strategy exposes, invoked only on the (rare) reroute branch.

The one exception is :meth:`EventTracer.tap_switch` (the ``pkt``
category): it *does* wrap ``receive``, so it declares itself tap-like and
demotes trains through that switch exactly as
:class:`repro.metrics.tap.PacketTap` does — clear ``_train_ok`` on
install, ``del`` the wrapper and ``_recompute_train_ok()`` on detach.

All buffers are bounded ``deque(maxlen=capacity)`` rings: a week-long run
cannot exhaust memory, and the flight recorder's "last N events" is just
the ring's tail.  Per-category emit totals keep counting after eviction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.packet import PAUSE

#: Categories installed by default — all train-safe.  (``fault`` events
#: are emitted by the FaultInjector/PfcWatchdog directly, not by an
#: attach() hook: both are cold control paths.)
CATEGORIES = ("flow", "pfc", "lb", "hybrid", "cc", "fault")
#: Opt-in per-frame category (tap-like: closes the train gate per switch).
PKT = "pkt"


class TraceEvent:
    """One trace record.  ``ph`` follows the Chrome trace-event phases this
    exports to: ``"i"`` instant, ``"X"`` complete (with ``dur_ps``)."""

    __slots__ = ("ts_ps", "cat", "name", "ph", "dur_ps", "args")

    def __init__(self, ts_ps: int, cat: str, name: str, ph: str = "i",
                 dur_ps: int = 0, args: Optional[dict] = None) -> None:
        self.ts_ps = ts_ps
        self.cat = cat
        self.name = name
        self.ph = ph
        self.dur_ps = dur_ps
        self.args = args

    def to_dict(self) -> dict:
        d = {"ts_ps": self.ts_ps, "cat": self.cat, "name": self.name, "ph": self.ph}
        if self.ph == "X":
            d["dur_ps"] = self.dur_ps
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent {self.cat}:{self.name} t={self.ts_ps}ps>"


class EventTracer:
    """Category-filtered ring-buffer tracer for one run.

    >>> tracer = EventTracer(categories=("flow", "pfc"))
    >>> tracer.attach(topo)          # train-safe hooks only
    >>> ... run ...
    >>> export_chrome_trace("t.json", tracer)
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = 65536) -> None:
        cats = tuple(categories) if categories is not None else CATEGORIES
        for c in cats:
            if c not in CATEGORIES and c != PKT:
                raise ValueError(f"unknown trace category {c!r}")
        self.categories = frozenset(cats)
        self.events: deque = deque(maxlen=capacity)
        #: total emitted per category, *including* ring-evicted events.
        self.counts: Dict[str, int] = {c: 0 for c in cats}
        self._undo: List = []
        self._attached = False

    # -- core ---------------------------------------------------------------
    def enabled(self, cat: str) -> bool:
        return cat in self.categories

    def emit(self, cat: str, name: str, ts_ps: int, ph: str = "i",
             dur_ps: int = 0, args: Optional[dict] = None) -> None:
        if cat not in self.categories:
            return
        self.counts[cat] += 1
        self.events.append(TraceEvent(ts_ps, cat, name, ph, dur_ps, args))

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (emitted minus retained)."""
        return sum(self.counts.values()) - len(self.events)

    def top_categories(self) -> List[Tuple[str, int]]:
        """(category, emit count) pairs, busiest first."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def tail(self, n: int) -> List[TraceEvent]:
        """The last ``n`` events (the flight recorder's dump window)."""
        if n >= len(self.events):
            return list(self.events)
        return list(self.events)[-n:]

    # -- hook installation (train-safe) -------------------------------------
    def attach(self, topo) -> None:
        """Install the train-safe hooks for the enabled categories on a
        topology-like object (``.hosts`` / ``.switches``).  May be called
        for several fabrics (the hybrid backend rebuilds its packet fabric
        between refine rounds); :meth:`detach` unwinds everything."""
        switches = list(getattr(topo, "switches", ()))
        hosts = list(getattr(topo, "hosts", ()))
        if self.enabled("pfc"):
            for sw in switches:
                self._hook_pfc(sw)
        if self.enabled("lb"):
            seen = set()
            for sw in switches:
                lb = getattr(sw, "lb", None)
                if lb is not None and id(lb) not in seen:
                    seen.add(id(lb))
                    self._hook_lb(lb)
        if self.enabled("flow") or self.enabled("cc"):
            for host in hosts:
                self._hook_host(host)
        self._attached = True

    def detach(self) -> None:
        """Unwind every installed hook (reverse order, nested-safe)."""
        while self._undo:
            self._undo.pop()()
        self._attached = False

    def _hook_pfc(self, sw) -> None:
        # Instance-attribute wrapper: the fused train pipeline resolves
        # ``_send_pfc`` through the instance dict, so PAUSE/RESUME emission
        # is traced identically on the per-frame and fused paths — without
        # touching the train gate (PFC frames are rare, this is cold).
        orig = sw._send_pfc
        had = "_send_pfc" in sw.__dict__
        sim = sw.sim
        emit = self.emit

        def _send_pfc(port_idx: int, prio: int, kind: int, _orig=orig) -> None:
            emit(
                "pfc",
                "pause" if kind == PAUSE else "resume",
                sim.now,
                args={"node": sw.name, "port": port_idx, "prio": prio},
            )
            _orig(port_idx, prio, kind)

        sw._send_pfc = _send_pfc

        def undo(sw=sw, orig=orig, had=had):
            if had:
                sw._send_pfc = orig
            else:
                del sw._send_pfc

        self._undo.append(undo)

    def _hook_lb(self, lb) -> None:
        # Strategies expose an ``on_reroute`` callback slot (None when
        # nobody listens); the router closure invokes it only on the
        # reroute branch.  No wrapper on ``router`` — gate stays open for
        # train-transparent strategies.
        if not hasattr(lb, "on_reroute") or lb.on_reroute is not None:
            return
        emit = self.emit

        def on_reroute(now, src, dst, flow_id, old_port, new_port):
            emit(
                "lb",
                "reroute",
                now,
                args={
                    "src": src,
                    "dst": dst,
                    "flow": flow_id,
                    "from_port": old_port,
                    "to_port": new_port,
                },
            )

        lb.on_reroute = on_reroute

        def undo(lb=lb):
            lb.on_reroute = None

        self._undo.append(undo)

    def _hook_host(self, host) -> None:
        # Hosts never fuse, so endpoint wrappers are train-safe.
        trace_flow = self.enabled("flow")
        trace_cc = self.enabled("cc")
        emit = self.emit
        sim = host.sim

        orig_start = host.start_flow
        had_start = "start_flow" in host.__dict__

        def start_flow(flow, cc, base_rtt_ps, _orig=orig_start):
            if trace_flow:
                emit(
                    "flow",
                    "flow_start",
                    max(flow.start_ps, sim.now),
                    args={
                        "flow": flow.flow_id,
                        "size": flow.size_bytes,
                        "src": flow.src,
                        "dst": flow.dst,
                    },
                )
            if trace_cc:
                self._wrap_cc(cc, flow.flow_id, sim)
            return _orig(flow, cc, base_rtt_ps)

        host.start_flow = start_flow

        def undo_start(host=host, orig=orig_start, had=had_start):
            if had:
                host.start_flow = orig
            else:
                del host.start_flow

        self._undo.append(undo_start)

        if trace_flow:
            orig_recv = host.on_flow_received
            had_recv = "on_flow_received" in host.__dict__

            def on_flow_received(rqp, _orig=orig_recv):
                f = rqp.flow
                emit(
                    "flow",
                    f"flow {f.flow_id} ({f.size_bytes}B)",
                    f.start_ps,
                    ph="X",
                    dur_ps=sim.now - f.start_ps,
                    args={"flow": f.flow_id, "size": f.size_bytes,
                          "fct_ps": sim.now - f.start_ps},
                )
                _orig(rqp)

            host.on_flow_received = on_flow_received

            def undo_recv(host=host, orig=orig_recv, had=had_recv):
                if had:
                    host.on_flow_received = orig
                else:
                    del host.on_flow_received

            self._undo.append(undo_recv)

    def _wrap_cc(self, cc, flow_id: int, sim) -> None:
        # Per-flow CC objects are run-owned and discarded with the fabric,
        # so these wrappers need no undo entry.  Emission only on an actual
        # rate change keeps the ring proportional to CC *decisions*.
        emit = self.emit
        orig_ack = cc.on_ack
        orig_cnp = cc.on_cnp

        def on_ack(qp, ack, _orig=orig_ack):
            before = qp.rate_gbps
            _orig(qp, ack)
            after = qp.rate_gbps
            if after != before:
                emit(
                    "cc",
                    "rate",
                    sim.now,
                    args={"flow": flow_id, "gbps": round(after, 3),
                          "prev_gbps": round(before, 3)},
                )

        def on_cnp(qp, _orig=orig_cnp):
            before = qp.rate_gbps
            _orig(qp)
            after = qp.rate_gbps
            if after != before:
                emit(
                    "cc",
                    "rate",
                    sim.now,
                    args={"flow": flow_id, "gbps": round(after, 3),
                          "prev_gbps": round(before, 3), "cnp": True},
                )

        cc.on_ack = on_ack
        cc.on_cnp = on_cnp

    # -- per-frame capture (tap-like: closes the train gate) ----------------
    def tap_switch(self, sw) -> None:
        """Trace every frame received at ``sw`` (category ``pkt``).

        This wraps the switch's ``receive``, so it follows the PacketTap
        protocol to the letter: clear ``_train_ok`` for the hook's
        lifetime (the fused pipeline must hand every frame to the wrapper
        individually), remember whether ``receive`` was already an
        instance attribute, and on detach ``del`` the wrapper so the class
        method resurfaces, then ``_recompute_train_ok()``.
        """
        if not self.enabled(PKT):
            raise ValueError("tap_switch needs the 'pkt' category enabled")
        orig = sw.receive
        had = "receive" in sw.__dict__
        gated = hasattr(sw, "_train_ok")
        if gated:
            # fncc-lint: allow[O402] tap_switch IS a PacketTap-protocol hook: gate cleared here, _recompute_train_ok() on detach below
            sw._train_ok = False
        sim = sw.sim
        emit = self.emit

        def receive(pkt, in_port: int, _orig=orig) -> None:
            emit(
                PKT,
                "rx",
                sim.now,
                args={"node": sw.name, "port": in_port,
                      "kind": pkt.kind, "flow": pkt.flow_id},
            )
            _orig(pkt, in_port)

        sw.receive = receive

        def undo(sw=sw, orig=orig, had=had, gated=gated):
            if had:
                sw.receive = orig
            else:
                del sw.receive
            if gated:
                sw._recompute_train_ok()

        self._undo.append(undo)
