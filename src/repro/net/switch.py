"""Shared-buffer switch with PFC, ECN, and INT insertion.

This is the Congestion Point of the paper.  Three INT modes:

* ``IntMode.NONE`` — plain switch (DCQCN/RoCC/Timely need no INT).
* ``IntMode.HPCC`` — append an INT record to every departing **data** packet
  (HPCC's request-path telemetry; the receiver echoes it in the ACK).
* ``IntMode.FNCC`` — Alg. 1: record each ACK's input port on ingress, and on
  egress insert the All_INT_Table entry for that port, i.e. the telemetry of
  the *request-direction* egress queue sharing the link the ACK arrived on.

PFC follows 802.1Qbb: per-(ingress-port, priority) byte accounting against
XOFF/XON thresholds; PAUSE/RESUME frames are control frames that bypass the
data queues and pause state.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.net.node import Node
from repro.net.packet import ACK, CNP, DATA, PAUSE, RESUME, INTRecord, Packet
from repro.net.port import EcnConfig, Port
from repro.units import DEFAULT_MTU, KB, MB, PAUSE_FRAME_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Width of one INT record on the wire (Fig. 7: 4+24+20+16 bits == 64 bits).
INT_RECORD_BYTES = 8


class IntMode(enum.Enum):
    NONE = 0
    HPCC = 1
    FNCC = 2


class SwitchConfig:
    """Static switch parameters.

    ``pfc_xoff`` defaults to the paper's 500 KB threshold (§5.1); ``pfc_xon``
    re-opens the upstream a couple of MTUs below XOFF to avoid flapping.
    ``int_table_refresh_ps`` > 0 models the "updated periodically" wording of
    §4.1 by snapshotting the All_INT_Table on a timer; 0 reads live state.
    """

    __slots__ = (
        "buffer_bytes",
        "pfc_enabled",
        "pfc_xoff",
        "pfc_xon",
        "int_mode",
        "ecn",
        "latency_ps",
        "int_table_refresh_ps",
        "n_prio",
    )

    def __init__(
        self,
        buffer_bytes: int = 32 * MB,
        pfc_enabled: bool = True,
        pfc_xoff: int = 500 * KB,
        pfc_xon: Optional[int] = None,
        int_mode: IntMode = IntMode.NONE,
        ecn: Optional[EcnConfig] = None,
        latency_ps: int = 0,
        int_table_refresh_ps: int = 0,
        n_prio: int = 1,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        if pfc_xon is None:
            pfc_xon = max(0, pfc_xoff - 2 * DEFAULT_MTU)
        if pfc_xon > pfc_xoff:
            raise ValueError("XON must not exceed XOFF")
        self.buffer_bytes = buffer_bytes
        self.pfc_enabled = pfc_enabled
        self.pfc_xoff = pfc_xoff
        self.pfc_xon = pfc_xon
        self.int_mode = int_mode
        self.ecn = ecn
        self.latency_ps = latency_ps
        self.int_table_refresh_ps = int_table_refresh_ps
        self.n_prio = n_prio


class Switch(Node):
    """An output-queued shared-buffer switch.

    Routing is pluggable: ``router(switch, pkt) -> out_port_index`` is
    installed by :mod:`repro.routing`.
    """

    def __init__(self, sim: "Simulator", name: str, config: SwitchConfig) -> None:
        super().__init__(sim, name)
        self.config = config
        # Hot-path caches: SwitchConfig is immutable after construction, so
        # the per-hop data path reads these flat attributes instead of
        # chasing the config chain.
        self._latency_ps = config.latency_ps
        self._buffer_bytes = config.buffer_bytes
        self._pfc_on = config.pfc_enabled
        self._xoff = config.pfc_xoff
        self._xon = config.pfc_xon
        self._int_mode = config.int_mode
        self.router: Optional[Callable[["Switch", Packet], int]] = None
        # The load-balancing strategy instance that built ``router`` (set by
        # repro.lb.install_lb; None for hand-wired routers).  The hot path
        # never reads this — it exists for introspection and tests.
        self.lb: Optional[object] = None
        # Train pass-through predicate (DESIGN.md §2.2).  ``_lb_router``
        # is the exact closure the installed strategy produced (set by
        # repro.lb.install_lb); ``_train_ok`` is the live gate the fused
        # frame-train path in net/port.py reads per frame: it is True only
        # while a *static per-flow* strategy is installed on a zero-latency,
        # untapped switch.  install_lb derives it from the strategy's
        # ``train_transparent`` flag; PacketTap clears and restores it
        # around installs.  A router swapped in by hand no longer matches
        # ``_lb_router`` and splits trains per-frame regardless; anything
        # that wraps ``receive`` on a *switch* outside PacketTap must also
        # clear ``_train_ok`` (hosts need nothing — trains never fuse into
        # hosts).
        self._lb_router: Optional[Callable[["Switch", Packet], int]] = None
        self._train_ok = False
        self.buffer_used = 0
        self.drops = 0
        # PFC state, keyed [in_port][prio].
        self._pfc_bytes: List[List[int]] = []
        self._pfc_paused_up: List[List[bool]] = []
        # RoCC-style per-egress-port fair-rate controllers (installed by
        # cc.rocc).  Dense list indexed by port — the per-ACK departure hook
        # does a plain index instead of a dict hash.
        self.port_controllers: List[Optional[object]] = []
        # Optional snapshot table (int_table_refresh_ps > 0).
        self._int_snapshot: Optional[List[INTRecord]] = None
        self._ecn_rng = None

    # -- wiring ------------------------------------------------------------------
    def new_port(
        self, rate_gbps: float, prop_delay_ps: int, n_prio: Optional[int] = None
    ) -> Port:
        """Create a port with the switch's configured priority count.

        ``n_prio=None`` (the default) means "use ``config.n_prio``".  An
        explicit value must match the config: the switch's PFC state arrays
        are sized by ``config.n_prio``, so a divergent per-port override
        would silently mis-index pause bookkeeping.
        """
        if n_prio is not None and n_prio != self.config.n_prio:
            raise ValueError(
                f"{self.name}: port n_prio={n_prio} conflicts with "
                f"switch config n_prio={self.config.n_prio}"
            )
        port = super().new_port(rate_gbps, prop_delay_ps, n_prio=self.config.n_prio)
        self._pfc_bytes.append([0] * self.config.n_prio)
        self._pfc_paused_up.append([False] * self.config.n_prio)
        self.port_controllers.append(None)
        if self.config.ecn is not None:
            if self._ecn_rng is None:
                raise RuntimeError(
                    "ECN-enabled switch needs set_ecn_rng() before wiring ports"
                )
            port.set_ecn(self.config.ecn, self._ecn_rng)
        return port

    def set_ecn_rng(self, rng) -> None:
        """Give the switch the RNG stream its RED markers draw from."""
        self._ecn_rng = rng
        for port in self.ports:
            if self.config.ecn is not None:
                port.set_ecn(self.config.ecn, rng)

    def start(self) -> None:
        """Arm periodic machinery (All_INT_Table refresh), if configured."""
        if self.config.int_table_refresh_ps > 0:
            from repro.sim.timer import Periodic

            self._refresh_int_table(self.sim.now)
            Periodic(
                self.sim, self.config.int_table_refresh_ps, self._refresh_int_table
            ).start()

    # -- data path ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int) -> None:
        kind = pkt.kind
        if kind >= PAUSE:  # control frame (single compare on the data path)
            p = self.ports[in_port]
            if kind == PAUSE:
                p.pause(pkt.pause_prio)
                p.stats.pause_received += 1
            else:
                p.resume(pkt.pause_prio)
                p.stats.resume_received += 1
            return
        # Alg. 1 line 3: the ACK's input port is recorded as metadata.  (The
        # same metadata drives RoCC's fair-rate stamping, so record always.)
        if kind == ACK:
            pkt.fncc_in_port = in_port
        pkt.hops += 1
        lat = self._latency_ps
        if lat > 0:
            self.sim.schedule(lat, self._forward, pkt)
            return
        # Zero-latency fast path: _forward's body inlined (one Python call
        # per packet-hop saved; the latency>0 branch keeps the method).
        router = self.router
        if router is None:
            raise RuntimeError(f"switch {self.name} has no routing installed")
        out_port = router(self, pkt)
        in_p = pkt.in_port
        if out_port == in_p:
            raise RuntimeError(
                f"{self.name}: routing loop, {pkt!r} back out port {out_port}"
            )
        size = pkt.size
        if self.buffer_used + size > self._buffer_bytes:  # shared-buffer admission
            self.drops += 1
            self.ports[in_p].stats.drops += 1
            return
        self.buffer_used += size
        if self._pfc_on and kind < PAUSE:  # non-control, single compare
            # _pfc_admit inlined (per-hop hot path).
            prio = pkt.priority
            counters = self._pfc_bytes[in_p]
            counters[prio] += size
            if counters[prio] >= self._xoff and not self._pfc_paused_up[in_p][prio]:
                self._pfc_paused_up[in_p][prio] = True
                self._send_pfc(in_p, prio, PAUSE)
        self.ports[out_port].enqueue(pkt)

    def _forward(self, pkt: Packet) -> None:
        if self.router is None:
            raise RuntimeError(f"switch {self.name} has no routing installed")
        out_port = self.router(self, pkt)
        if out_port == pkt.in_port:
            raise RuntimeError(
                f"{self.name}: routing loop, {pkt!r} back out port {out_port}"
            )
        # Shared-buffer admission.
        if self.buffer_used + pkt.size > self.config.buffer_bytes:
            self.drops += 1
            self.ports[pkt.in_port].stats.drops += 1
            return
        self.buffer_used += pkt.size
        if self.config.pfc_enabled and not pkt.is_control():
            self._pfc_admit(pkt)
        self.ports[out_port].enqueue(pkt)

    def on_departure(self, pkt: Packet, port: Port) -> None:
        size = pkt.size
        self.buffer_used -= size
        kind = pkt.kind
        if self._pfc_on and kind < PAUSE:  # non-control, single compare
            # _pfc_release inlined (per-hop hot path).
            in_p, prio = pkt.in_port, pkt.priority
            counters = self._pfc_bytes[in_p]
            counters[prio] -= size
            if counters[prio] <= self._xon and self._pfc_paused_up[in_p][prio]:
                self._pfc_paused_up[in_p][prio] = False
                self._send_pfc(in_p, prio, RESUME)
        mode = self._int_mode
        if mode is IntMode.HPCC:
            if kind == DATA:
                # add_int + qbytes_total inlined (per-hop hot path).
                now = self.sim.now
                acct = port._acct
                if acct and acct[0][0] <= now:
                    port._prune(now)
                rec = INTRecord(
                    port.rate_gbps, now, port.tx_bytes, port._queued_bytes
                )
                recs = pkt.int_records
                if recs is None:
                    pkt.int_records = [rec]
                else:
                    recs.append(rec)
                pkt.size += INT_RECORD_BYTES
        elif mode is IntMode.FNCC:
            if kind == ACK:
                # _int_table_entry + add_int inlined (per-ACK-hop hot path);
                # the record is built via __new__ to skip one Python call.
                snap = self._int_snapshot
                rec = INTRecord.__new__(INTRecord)
                if snap is not None:
                    s = snap[pkt.fncc_in_port]
                    rec.bandwidth_gbps = s.bandwidth_gbps
                    rec.ts = s.ts
                    rec.tx_bytes = s.tx_bytes
                    rec.qlen = s.qlen
                else:
                    p = self.ports[pkt.fncc_in_port]
                    now = self.sim.now
                    acct = p._acct
                    if acct and acct[0][0] <= now:
                        p._prune(now)
                    rec.bandwidth_gbps = p.rate_gbps
                    rec.ts = now
                    rec.tx_bytes = p.tx_bytes
                    rec.qlen = p._queued_bytes
                recs = pkt.int_records
                if recs is None:
                    pkt.int_records = [rec]
                else:
                    recs.append(rec)
                pkt.size += INT_RECORD_BYTES
        if kind == ACK and pkt.fncc_in_port >= 0:
            ctrl = self.port_controllers[pkt.fncc_in_port]
            if ctrl is not None:
                rate = ctrl.fair_rate_gbps
                if pkt.rocc_rate_gbps is None or rate < pkt.rocc_rate_gbps:
                    pkt.rocc_rate_gbps = rate

    # -- All_INT_Table (Fig. 8) --------------------------------------------------
    def _int_table_entry(self, port_idx: int) -> INTRecord:
        """INT of the request-direction egress queue indexed by the ACK's
        input port (Alg. 1 line 8)."""
        if self._int_snapshot is not None:
            return self._int_snapshot[port_idx].copy()
        p = self.ports[port_idx]
        return INTRecord(p.rate_gbps, self.sim.now, p.tx_bytes, p.qbytes_total)

    def _refresh_int_table(self, _now: int) -> None:
        self._int_snapshot = [
            INTRecord(p.rate_gbps, self.sim.now, p.tx_bytes, p.qbytes_total)
            for p in self.ports
        ]

    # -- PFC ------------------------------------------------------------------------
    def _pfc_admit(self, pkt: Packet) -> None:
        in_port, prio = pkt.in_port, pkt.priority
        counters = self._pfc_bytes[in_port]
        counters[prio] += pkt.size
        if counters[prio] >= self.config.pfc_xoff and not self._pfc_paused_up[in_port][prio]:
            self._pfc_paused_up[in_port][prio] = True
            self._send_pfc(in_port, prio, PAUSE)

    def _pfc_release(self, pkt: Packet) -> None:
        in_port, prio = pkt.in_port, pkt.priority
        counters = self._pfc_bytes[in_port]
        counters[prio] -= pkt.size
        if counters[prio] <= self.config.pfc_xon and self._pfc_paused_up[in_port][prio]:
            self._pfc_paused_up[in_port][prio] = False
            self._send_pfc(in_port, prio, RESUME)

    def _send_pfc(self, port_idx: int, prio: int, kind: int) -> None:
        frame = Packet(kind, size=PAUSE_FRAME_SIZE)
        frame.pause_prio = prio
        port = self.ports[port_idx]
        if kind == PAUSE:
            port.stats.pause_sent += 1
        else:
            port.stats.resume_sent += 1
        port.enqueue(frame)

    # -- introspection ------------------------------------------------------------
    def _recompute_train_ok(self) -> None:
        """Re-derive the train pass-through gate from live state — THE
        single definition of the predicate.  Called by
        :func:`repro.lb.install_lb` after binding a strategy and by
        :meth:`repro.metrics.tap.PacketTap.uninstall` when a wrapper comes
        off; the per-frame fast path reads the cached ``_train_ok`` plus
        the router-identity compare (the one term that can silently change
        without a notification)."""
        lb = self.lb
        self._train_ok = (
            lb is not None
            and getattr(lb, "train_transparent", False)
            and self._latency_ps == 0
            and self.router is self._lb_router
            and "receive" not in self.__dict__
        )

    def train_transparent(self) -> bool:
        """True when the frame-train fast path may forward fused bursts
        through this switch: a static per-flow strategy is installed and
        unswapped on a zero-latency, untapped switch.  A tap installed
        mid-run or a router swap takes effect on the very next frame.
        (Introspection/tests; recomputes, so it is always truthful — a
        wrapped ``receive`` keeps the recomputed gate closed.)"""
        self._recompute_train_ok()
        return self._train_ok

    def egress_queue_bytes(self, port_idx: int) -> int:
        return self.ports[port_idx].qbytes_total

    def total_pause_frames(self) -> int:
        return sum(p.stats.pause_sent for p in self.ports)
