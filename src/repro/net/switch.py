"""Shared-buffer switch with PFC, ECN, and INT insertion.

This is the Congestion Point of the paper.  Three INT modes:

* ``IntMode.NONE`` — plain switch (DCQCN/RoCC/Timely need no INT).
* ``IntMode.HPCC`` — append an INT record to every departing **data** packet
  (HPCC's request-path telemetry; the receiver echoes it in the ACK).
* ``IntMode.FNCC`` — Alg. 1: record each ACK's input port on ingress, and on
  egress insert the All_INT_Table entry for that port, i.e. the telemetry of
  the *request-direction* egress queue sharing the link the ACK arrived on.

PFC follows 802.1Qbb: per-(ingress-port, priority) byte accounting against
XOFF/XON thresholds; PAUSE/RESUME frames are control frames that bypass the
data queues and pause state.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.net.node import Node
from repro.net.packet import ACK, CNP, DATA, PAUSE, RESUME, INTRecord, Packet
from repro.net.port import EcnConfig, Port
from repro.units import DEFAULT_MTU, KB, MB, PAUSE_FRAME_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Width of one INT record on the wire (Fig. 7: 4+24+20+16 bits == 64 bits).
INT_RECORD_BYTES = 8


class IntMode(enum.Enum):
    NONE = 0
    HPCC = 1
    FNCC = 2


class SwitchConfig:
    """Static switch parameters.

    ``pfc_xoff`` defaults to the paper's 500 KB threshold (§5.1); ``pfc_xon``
    re-opens the upstream a couple of MTUs below XOFF to avoid flapping.
    ``int_table_refresh_ps`` > 0 models the "updated periodically" wording of
    §4.1 by snapshotting the All_INT_Table on a timer; 0 reads live state.
    """

    __slots__ = (
        "buffer_bytes",
        "pfc_enabled",
        "pfc_xoff",
        "pfc_xon",
        "int_mode",
        "ecn",
        "latency_ps",
        "int_table_refresh_ps",
        "n_prio",
    )

    def __init__(
        self,
        buffer_bytes: int = 32 * MB,
        pfc_enabled: bool = True,
        pfc_xoff: int = 500 * KB,
        pfc_xon: Optional[int] = None,
        int_mode: IntMode = IntMode.NONE,
        ecn: Optional[EcnConfig] = None,
        latency_ps: int = 0,
        int_table_refresh_ps: int = 0,
        n_prio: int = 1,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        if pfc_xon is None:
            pfc_xon = max(0, pfc_xoff - 2 * DEFAULT_MTU)
        if pfc_xon > pfc_xoff:
            raise ValueError("XON must not exceed XOFF")
        self.buffer_bytes = buffer_bytes
        self.pfc_enabled = pfc_enabled
        self.pfc_xoff = pfc_xoff
        self.pfc_xon = pfc_xon
        self.int_mode = int_mode
        self.ecn = ecn
        self.latency_ps = latency_ps
        self.int_table_refresh_ps = int_table_refresh_ps
        self.n_prio = n_prio


class Switch(Node):
    """An output-queued shared-buffer switch.

    Routing is pluggable: ``router(switch, pkt) -> out_port_index`` is
    installed by :mod:`repro.routing`.
    """

    def __init__(self, sim: "Simulator", name: str, config: SwitchConfig) -> None:
        super().__init__(sim, name)
        self.config = config
        # Hot-path caches: SwitchConfig is immutable after construction, so
        # the per-hop data path reads these flat attributes instead of
        # chasing the config chain.
        self._latency_ps = config.latency_ps
        self._buffer_bytes = config.buffer_bytes
        self._pfc_on = config.pfc_enabled
        self._xoff = config.pfc_xoff
        self._xon = config.pfc_xon
        self._int_mode = config.int_mode
        self.router: Optional[Callable[["Switch", Packet], int]] = None
        # The load-balancing strategy instance that built ``router`` (set by
        # repro.lb.install_lb; None for hand-wired routers).  The hot path
        # never reads this — it exists for introspection and tests.
        self.lb: Optional[object] = None
        # Train pass-through predicate (DESIGN.md §2.2).  ``_lb_router``
        # is the exact closure the installed strategy produced (set by
        # repro.lb.install_lb); ``_train_ok`` is the live gate the fused
        # frame-train path in net/port.py reads per frame: it is True only
        # while a *static per-flow* strategy is installed on a zero-latency,
        # untapped switch.  install_lb derives it from the strategy's
        # ``train_transparent`` flag; PacketTap clears and restores it
        # around installs.  A router swapped in by hand no longer matches
        # ``_lb_router`` and splits trains per-frame regardless; anything
        # that wraps ``receive`` on a *switch* outside PacketTap must also
        # clear ``_train_ok`` (hosts need nothing — trains never fuse into
        # hosts).
        self._lb_router: Optional[Callable[["Switch", Packet], int]] = None
        self._train_ok = False
        # PFC-storm watchdog (arm_watchdog); None on healthy switches.  The
        # data path never reads it — only the control-frame branch does.
        self._wd: Optional["PfcWatchdog"] = None
        self.buffer_used = 0
        self.drops = 0
        # PFC state, keyed [in_port][prio].
        self._pfc_bytes: List[List[int]] = []
        self._pfc_paused_up: List[List[bool]] = []
        # RoCC-style per-egress-port fair-rate controllers (installed by
        # cc.rocc).  Dense list indexed by port — the per-ACK departure hook
        # does a plain index instead of a dict hash.
        self.port_controllers: List[Optional[object]] = []
        # Optional snapshot table (int_table_refresh_ps > 0).
        self._int_snapshot: Optional[List[INTRecord]] = None
        self._ecn_rng = None

    # -- wiring ------------------------------------------------------------------
    def new_port(
        self, rate_gbps: float, prop_delay_ps: int, n_prio: Optional[int] = None
    ) -> Port:
        """Create a port with the switch's configured priority count.

        ``n_prio=None`` (the default) means "use ``config.n_prio``".  An
        explicit value must match the config: the switch's PFC state arrays
        are sized by ``config.n_prio``, so a divergent per-port override
        would silently mis-index pause bookkeeping.
        """
        if n_prio is not None and n_prio != self.config.n_prio:
            raise ValueError(
                f"{self.name}: port n_prio={n_prio} conflicts with "
                f"switch config n_prio={self.config.n_prio}"
            )
        port = super().new_port(rate_gbps, prop_delay_ps, n_prio=self.config.n_prio)
        self._pfc_bytes.append([0] * self.config.n_prio)
        self._pfc_paused_up.append([False] * self.config.n_prio)
        self.port_controllers.append(None)
        if self.config.ecn is not None:
            if self._ecn_rng is None:
                raise RuntimeError(
                    "ECN-enabled switch needs set_ecn_rng() before wiring ports"
                )
            port.set_ecn(self.config.ecn, self._ecn_rng)
        return port

    def set_ecn_rng(self, rng) -> None:
        """Give the switch the RNG stream its RED markers draw from."""
        self._ecn_rng = rng
        for port in self.ports:
            if self.config.ecn is not None:
                port.set_ecn(self.config.ecn, rng)

    def start(self) -> None:
        """Arm periodic machinery (All_INT_Table refresh), if configured."""
        if self.config.int_table_refresh_ps > 0:
            from repro.sim.timer import Periodic

            self._refresh_int_table(self.sim.now)
            Periodic(
                self.sim,
                self.config.int_table_refresh_ps,
                self._refresh_int_table,
                self.lane,
            ).start()

    # -- data path ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int) -> None:
        kind = pkt.kind
        if kind >= PAUSE:  # control frame (single compare on the data path)
            p = self.ports[in_port]
            if kind == PAUSE:
                p.stats.pause_received += 1
                wd = self._wd
                if wd is not None and wd.on_pause(in_port, pkt.pause_prio):
                    return  # storm action: the stuck-XOFF pause is ignored
                p.pause(pkt.pause_prio)
            else:
                p.resume(pkt.pause_prio)
                p.stats.resume_received += 1
            return
        # Alg. 1 line 3: the ACK's input port is recorded as metadata.  (The
        # same metadata drives RoCC's fair-rate stamping, so record always.)
        if kind == ACK:
            pkt.fncc_in_port = in_port
        pkt.hops += 1
        lat = self._latency_ps
        if lat > 0:
            self.sim.schedule(lat, self._forward, pkt, self.lane)
            return
        # Zero-latency fast path: _forward's body inlined (one Python call
        # per packet-hop saved; the latency>0 branch keeps the method).
        router = self.router
        if router is None:
            raise RuntimeError(f"switch {self.name} has no routing installed")
        out_port = router(self, pkt)
        in_p = pkt.in_port
        if out_port == in_p:
            raise RuntimeError(
                f"{self.name}: routing loop, {pkt!r} back out port {out_port}"
            )
        # INT stamping happens HERE — at forward time, not at delivery.
        # The stamp is a pure function of this switch's state at this
        # event, so a frame's bytes are final the moment it is forwarded:
        # the shard boundary protocol (DESIGN.md §11) exports frames from
        # the egress in-flight window and replays them in another engine,
        # which is only sound because nothing rewrites them afterwards.
        # It also sits BEFORE shared-buffer/PFC admission so the size
        # admitted here is the size on_departure later releases.
        mode = self._int_mode
        if mode is not IntMode.NONE:
            if mode is IntMode.HPCC:
                if kind == DATA:
                    # add_int + qbytes_total inlined (per-hop hot path);
                    # the record describes the egress queue the frame is
                    # about to join.
                    eg = self.ports[out_port]
                    now = self.sim.now
                    acct = eg._acct
                    if acct and acct[0][0] <= now:
                        eg._prune(now)
                    rec = INTRecord(
                        eg.rate_gbps, now, eg.tx_bytes, eg._queued_bytes
                    )
                    recs = pkt.int_records
                    if recs is None:
                        pkt.int_records = [rec]
                    else:
                        recs.append(rec)
                    pkt.size += INT_RECORD_BYTES
            elif kind == ACK:  # FNCC
                # _int_table_entry + add_int inlined (per-ACK-hop hot
                # path); the record is built via __new__ to skip one
                # Python call.
                snap = self._int_snapshot
                rec = INTRecord.__new__(INTRecord)
                if snap is not None:
                    s = snap[in_p]
                    rec.bandwidth_gbps = s.bandwidth_gbps
                    rec.ts = s.ts
                    rec.tx_bytes = s.tx_bytes
                    rec.qlen = s.qlen
                else:
                    p = self.ports[in_p]
                    now = self.sim.now
                    acct = p._acct
                    if acct and acct[0][0] <= now:
                        p._prune(now)
                    rec.bandwidth_gbps = p.rate_gbps
                    rec.ts = now
                    rec.tx_bytes = p.tx_bytes
                    rec.qlen = p._queued_bytes
                recs = pkt.int_records
                if recs is None:
                    pkt.int_records = [rec]
                else:
                    recs.append(rec)
                pkt.size += INT_RECORD_BYTES
        if kind == ACK:
            ctrl = self.port_controllers[in_p]
            if ctrl is not None:
                rate = ctrl.fair_rate_gbps
                if pkt.rocc_rate_gbps is None or rate < pkt.rocc_rate_gbps:
                    pkt.rocc_rate_gbps = rate
        size = pkt.size
        if self.buffer_used + size > self._buffer_bytes:  # shared-buffer admission
            self.drops += 1
            self.ports[in_p].stats.drops += 1
            return
        self.buffer_used += size
        if self._pfc_on and kind < PAUSE:  # non-control, single compare
            # _pfc_admit inlined (per-hop hot path).
            prio = pkt.priority
            counters = self._pfc_bytes[in_p]
            counters[prio] += size
            if counters[prio] >= self._xoff and not self._pfc_paused_up[in_p][prio]:
                self._pfc_paused_up[in_p][prio] = True
                self._send_pfc(in_p, prio, PAUSE)
        self.ports[out_port].enqueue(pkt)

    def _forward(self, pkt: Packet) -> None:
        if self.router is None:
            raise RuntimeError(f"switch {self.name} has no routing installed")
        out_port = self.router(self, pkt)
        if out_port == pkt.in_port:
            raise RuntimeError(
                f"{self.name}: routing loop, {pkt!r} back out port {out_port}"
            )
        self._stamp_forward(pkt, out_port)
        # Shared-buffer admission (post-stamp size, matching on_departure).
        if self.buffer_used + pkt.size > self.config.buffer_bytes:
            self.drops += 1
            self.ports[pkt.in_port].stats.drops += 1
            return
        self.buffer_used += pkt.size
        if self.config.pfc_enabled and not pkt.is_control():
            self._pfc_admit(pkt)
        self.ports[out_port].enqueue(pkt)

    def _stamp_forward(self, pkt: Packet, out_port: int) -> None:
        """Forward-time telemetry stamping (the cold-path twin of the block
        inlined in :meth:`receive`; the fused train path in net/port.py
        carries a third copy — keep all three in sync).  HPCC stamps the
        egress queue a data frame is about to join; FNCC stamps the
        request-direction port the ACK arrived on (Alg. 1 line 8); RoCC
        min-combines the fair rate of that same port's controller.  All
        reads are of *this* switch at *this* event, which is what makes a
        forwarded frame immutable from here to its next hop (DESIGN.md
        §11)."""
        kind = pkt.kind
        mode = self._int_mode
        if mode is IntMode.HPCC:
            if kind == DATA:
                eg = self.ports[out_port]
                now = self.sim.now
                acct = eg._acct
                if acct and acct[0][0] <= now:
                    eg._prune(now)
                pkt.add_int(
                    INTRecord(eg.rate_gbps, now, eg.tx_bytes, eg._queued_bytes)
                )
                pkt.size += INT_RECORD_BYTES
        elif mode is IntMode.FNCC:
            if kind == ACK:
                pkt.add_int(self._int_table_entry(pkt.fncc_in_port))
                pkt.size += INT_RECORD_BYTES
        if kind == ACK and pkt.fncc_in_port >= 0:
            ctrl = self.port_controllers[pkt.fncc_in_port]
            if ctrl is not None:
                rate = ctrl.fair_rate_gbps
                if pkt.rocc_rate_gbps is None or rate < pkt.rocc_rate_gbps:
                    pkt.rocc_rate_gbps = rate

    def on_departure(self, pkt: Packet, port: Port) -> None:
        # Pure accounting: buffer release + PFC ingress-counter release.
        # Telemetry stamping moved to forward time (_stamp_forward /
        # receive's inline) so a frame is immutable once it sits in a
        # port's in-flight window — the property the shard boundary export
        # relies on (DESIGN.md §11).  The frame's size therefore no longer
        # changes between admission and here: one read balances both.
        size = pkt.size
        self.buffer_used -= size
        if self._pfc_on and pkt.kind < PAUSE:  # non-control, single compare
            # _pfc_release inlined (per-hop hot path).
            in_p, prio = pkt.in_port, pkt.priority
            counters = self._pfc_bytes[in_p]
            counters[prio] -= size
            if counters[prio] <= self._xon and self._pfc_paused_up[in_p][prio]:
                self._pfc_paused_up[in_p][prio] = False
                self._send_pfc(in_p, prio, RESUME)

    # -- All_INT_Table (Fig. 8) --------------------------------------------------
    def _int_table_entry(self, port_idx: int) -> INTRecord:
        """INT of the request-direction egress queue indexed by the ACK's
        input port (Alg. 1 line 8)."""
        if self._int_snapshot is not None:
            return self._int_snapshot[port_idx].copy()
        p = self.ports[port_idx]
        return INTRecord(p.rate_gbps, self.sim.now, p.tx_bytes, p.qbytes_total)

    def _refresh_int_table(self, _now: int) -> None:
        self._int_snapshot = [
            INTRecord(p.rate_gbps, self.sim.now, p.tx_bytes, p.qbytes_total)
            for p in self.ports
        ]

    # -- PFC ------------------------------------------------------------------------
    def _pfc_admit(self, pkt: Packet) -> None:
        in_port, prio = pkt.in_port, pkt.priority
        counters = self._pfc_bytes[in_port]
        counters[prio] += pkt.size
        if counters[prio] >= self.config.pfc_xoff and not self._pfc_paused_up[in_port][prio]:
            self._pfc_paused_up[in_port][prio] = True
            self._send_pfc(in_port, prio, PAUSE)

    def _pfc_release(self, pkt: Packet) -> None:
        in_port, prio = pkt.in_port, pkt.priority
        counters = self._pfc_bytes[in_port]
        counters[prio] -= pkt.size
        if counters[prio] <= self.config.pfc_xon and self._pfc_paused_up[in_port][prio]:
            self._pfc_paused_up[in_port][prio] = False
            self._send_pfc(in_port, prio, RESUME)

    def _send_pfc(self, port_idx: int, prio: int, kind: int) -> None:
        frame = Packet(kind, size=PAUSE_FRAME_SIZE)
        frame.pause_prio = prio
        port = self.ports[port_idx]
        if kind == PAUSE:
            port.stats.pause_sent += 1
        else:
            port.stats.resume_sent += 1
        port.enqueue(frame)

    # -- introspection ------------------------------------------------------------
    def _recompute_train_ok(self) -> None:
        """Re-derive the train pass-through gate from live state — THE
        single definition of the predicate.  Called by
        :func:`repro.lb.install_lb` after binding a strategy and by
        :meth:`repro.metrics.tap.PacketTap.uninstall` when a wrapper comes
        off; the per-frame fast path reads the cached ``_train_ok`` plus
        the router-identity compare (the one term that can silently change
        without a notification)."""
        lb = self.lb
        self._train_ok = (
            lb is not None
            and getattr(lb, "train_transparent", False)
            and self._latency_ps == 0
            and self.router is self._lb_router
            and "receive" not in self.__dict__
            # A watchdog-isolated storm must see every frame per-port so
            # its drop action applies; the gate reopens on restoration.
            and (self._wd is None or not self._wd.storms)
        )

    def train_transparent(self) -> bool:
        """True when the frame-train fast path may forward fused bursts
        through this switch: a static per-flow strategy is installed and
        unswapped on a zero-latency, untapped switch.  A tap installed
        mid-run or a router swap takes effect on the very next frame.
        (Introspection/tests; recomputes, so it is always truthful — a
        wrapped ``receive`` keeps the recomputed gate closed.)"""
        self._recompute_train_ok()
        return self._train_ok

    def egress_queue_bytes(self, port_idx: int) -> int:
        return self.ports[port_idx].qbytes_total

    def total_pause_frames(self) -> int:
        return sum(p.stats.pause_sent for p in self.ports)

    # -- PFC-storm watchdog hooks (DESIGN.md §10) ---------------------------------
    def _wd_drop_frame(self, pkt: Packet, port_idx: int) -> None:
        """Reverse the shared-buffer + PFC admission for a frame the
        watchdog's storm action drops at egress — the exact accounting
        mirror of :meth:`on_departure`, minus telemetry stamping (the
        frame never reaches a wire).  May emit an upstream RESUME, which
        is the isolation payoff: draining the stormed queue un-wedges the
        ingress that was pushing it."""
        size = pkt.size
        self.buffer_used -= size
        if self._pfc_on and pkt.kind < PAUSE:
            in_p, prio = pkt.in_port, pkt.priority
            counters = self._pfc_bytes[in_p]
            counters[prio] -= size
            if counters[prio] <= self._xon and self._pfc_paused_up[in_p][prio]:
                self._pfc_paused_up[in_p][prio] = False
                self._send_pfc(in_p, prio, RESUME)
        self.drops += 1
        self.ports[port_idx].stats.drops += 1


class PfcWatchdogConfig:
    """Thresholds and actions for :class:`PfcWatchdog`, following the
    SONiC pfc_wd model (detection time, restoration time, storm action).

    * ``detect_ps`` — a queue continuously paused this long is a storm.
    * ``poll_ps`` — dwell sampling period; detection latency is bounded by
      ``detect_ps + poll_ps``.
    * ``restore_ps`` — once no further PAUSE refresh has arrived for this
      long, the storm is declared over and normal PFC resumes.
    * ``action`` — ``"drop"`` (SONiC default: drop data on the stormed
      queue so it cannot back-pressure the fabric) or ``"forward"``
      (ignore the pause but keep forwarding).
    """

    __slots__ = ("detect_ps", "poll_ps", "restore_ps", "action")

    def __init__(
        self,
        detect_ps: int = 200_000_000,
        poll_ps: Optional[int] = None,
        restore_ps: Optional[int] = None,
        action: str = "drop",
    ) -> None:
        if detect_ps <= 0:
            raise ValueError("detect_ps must be positive")
        if action not in ("drop", "forward"):
            raise ValueError(f"unknown storm action {action!r}")
        self.detect_ps = detect_ps
        self.poll_ps = poll_ps if poll_ps is not None else max(1, detect_ps // 4)
        self.restore_ps = restore_ps if restore_ps is not None else 2 * detect_ps
        if self.poll_ps <= 0 or self.restore_ps <= 0:
            raise ValueError("poll_ps/restore_ps must be positive")
        self.action = action


class PfcWatchdog:
    """Per-switch stuck-XOFF detector with SONiC-style storm isolation.

    A periodic poller samples every (egress port, priority) pause flag;
    a queue paused continuously for ``detect_ps`` is declared stormed:
    it is force-resumed (so the victim's throughput recovers), subsequent
    PAUSE refreshes for it are absorbed (``Switch.receive`` asks
    :meth:`on_pause` first), and under the ``"drop"`` action data frames
    admitted toward the stormed queue are dropped with full accounting
    reversal (``Switch._wd_drop_frame``) so they cannot re-wedge the
    shared buffer.  Once PAUSE refreshes stop for ``restore_ps``, the
    storm is restored and ordinary PFC semantics return.

    Registered as an engine monitor (``sim.register_monitor``) so flight
    dumps and run teardown disarm the poller.
    """

    def __init__(self, sw: Switch, config: PfcWatchdogConfig, tracer=None) -> None:
        self.sw = sw
        self.config = config
        self.tracer = tracer
        #: active storms: (port_idx, prio) -> storm-start timestamp.
        self.storms: dict = {}
        self._since: dict = {}  # (port_idx, prio) -> first-seen-paused ts
        self._last_pause: dict = {}  # (port_idx, prio) -> last PAUSE refresh ts
        self._stormed_prios: dict = {}  # port_idx -> set of stormed prios
        self.storms_detected = 0
        self.storms_restored = 0
        self.pauses_ignored = 0
        self.pkts_dropped = 0
        self._poller = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        from repro.sim.timer import Periodic

        self._poller = Periodic(
            self.sw.sim, self.config.poll_ps, self._poll, self.sw.lane
        )
        self._poller.start()
        self.sw.sim.register_monitor(self)

    def stop(self) -> None:
        """Engine-monitor contract: idempotent disarm."""
        if self._poller is not None:
            self._poller.stop()
            self._poller = None

    # -- hot hooks (control path only) ---------------------------------------
    def on_pause(self, port_idx: int, prio: int) -> bool:
        """Called by ``Switch.receive`` for every PAUSE.  True = absorb
        (storm active on this queue); False = apply normally."""
        key = (port_idx, prio)
        self._last_pause[key] = self.sw.sim.now
        if key in self.storms:
            self.pauses_ignored += 1
            return True
        return False

    # -- polling -------------------------------------------------------------
    def _poll(self, _now: int) -> None:
        sw = self.sw
        now = sw.sim.now
        cfg = self.config
        if self.storms:
            for key in list(self.storms):
                if now - self._last_pause.get(key, 0) >= cfg.restore_ps:
                    self._storm_off(key, now)
        since = self._since
        for port in sw.ports:
            paused = port.paused
            idx = port.index
            for prio in range(len(paused)):
                key = (idx, prio)
                if paused[prio]:
                    t0 = since.get(key)
                    if t0 is None:
                        since[key] = now
                    elif now - t0 >= cfg.detect_ps and key not in self.storms:
                        self._storm_on(key, now)
                elif key in since:
                    del since[key]

    def _storm_on(self, key, now: int) -> None:
        port_idx, prio = key
        sw = self.sw
        self.storms[key] = now
        self._since.pop(key, None)
        self.storms_detected += 1
        port = sw.ports[port_idx]
        # Un-wedge the victim queue: force XON.  While the storm lasts,
        # on_pause absorbs every refresh, so the queue stays runnable.
        port.resume(prio)
        if self.config.action == "drop":
            stormed = self._stormed_prios.setdefault(port_idx, set())
            stormed.add(prio)
            if port.wd_drop is None:
                port.wd_drop = self._make_drop(port, stormed)
        sw._recompute_train_ok()
        self._emit("pfc_wd_storm_on", port_idx, prio)

    def _storm_off(self, key, now: int) -> None:
        port_idx, prio = key
        sw = self.sw
        del self.storms[key]
        self.storms_restored += 1
        stormed = self._stormed_prios.get(port_idx)
        if stormed is not None:
            stormed.discard(prio)
            if not stormed:
                sw.ports[port_idx].wd_drop = None
                del self._stormed_prios[port_idx]
        sw._recompute_train_ok()
        self._emit("pfc_wd_storm_off", port_idx, prio)

    def _make_drop(self, port, stormed: set):
        sw = self.sw
        port_idx = port.index

        def wd_drop(pkt) -> bool:
            if pkt.priority in stormed:
                sw._wd_drop_frame(pkt, port_idx)
                self.pkts_dropped += 1
                return True
            return False

        return wd_drop

    def _emit(self, name: str, port_idx: int, prio: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "fault",
                name,
                self.sw.sim.now,
                args={"node": self.sw.name, "port": port_idx, "prio": prio},
            )

    # -- reporting -----------------------------------------------------------
    def state(self) -> dict:
        """Flight-dump / metrics view of the watchdog."""
        return {
            "switch": self.sw.name,
            "action": self.config.action,
            "storms_detected": self.storms_detected,
            "storms_restored": self.storms_restored,
            "pauses_ignored": self.pauses_ignored,
            "pkts_dropped": self.pkts_dropped,
            "active": sorted(list(k) for k in self.storms),
        }

    def collect(self):
        """``MetricsRegistry`` pull collector (aggregate counters; keys are
        shared across switches so fleet totals sum naturally)."""
        counters = {
            "pfc_wd.storms_detected": self.storms_detected,
            "pfc_wd.storms_restored": self.storms_restored,
            "pfc_wd.pauses_ignored": self.pauses_ignored,
            "pfc_wd.pkts_dropped": self.pkts_dropped,
        }
        return counters, {"pfc_wd.active_storms": float(len(self.storms))}


def arm_watchdog(
    sw: Switch,
    config: Optional[PfcWatchdogConfig] = None,
    tracer=None,
    registry=None,
) -> PfcWatchdog:
    """Attach and start a :class:`PfcWatchdog` on one switch."""
    if sw._wd is not None:
        raise RuntimeError(f"{sw.name}: watchdog already armed")
    wd = PfcWatchdog(sw, config or PfcWatchdogConfig(), tracer=tracer)
    sw._wd = wd
    wd.start()
    if registry is not None:
        registry.bind_collector(wd.collect)
    return wd
