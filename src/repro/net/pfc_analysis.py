"""PFC deadlock analysis — the cyclic-buffer-dependency check.

The paper's motivation (§1, §2.3) warns that PFC pauses "can trigger PFC
deadlocks and PFC storms"; Observation 2 adopts spanning-tree routing
partly because TCP-Bolt showed trees "prevent routing paths from forming
loops and causing deadlocks".  This module makes that analyzable:

* :func:`buffer_dependency_graph` — the directed graph whose nodes are
  (switch, ingress-port) buffers and whose edges follow possible pause
  propagation given a set of routed paths.
* :func:`find_deadlock_cycles` — cyclic buffer dependencies (CBD).  A cycle
  means a PFC deadlock is *possible* under worst-case traffic.
* :func:`routing_is_deadlock_free` — True iff no CBD exists, e.g. for any
  up-down fat-tree routing or any spanning-tree routing (tested).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import networkx as nx

PathNames = Sequence[Hashable]  # node names along one routed path


def buffer_dependency_graph(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> nx.DiGraph:
    """Build the CBD graph from routed paths (each a node-name sequence).

    For a path ... a -> b -> c ..., the packet occupies b's ingress buffer
    from link (a,b) and next wants c: if b's buffer fills, PFC pauses a,
    backing traffic into a's ingress buffer from its own upstream.  So for
    every consecutive link pair ((a,b), (b,c)) we add a dependency edge
    buffer(a->b) -> buffer(b->c): the former can only drain if the latter
    drains.

    ``classes`` (one int per path) models per-class lossless buffers
    (PFC priorities): dependencies never cross classes, which is how
    TCP-Bolt makes multiple spanning trees deadlock-free — each tree gets
    its own priority class.  Omitted, every path shares class 0.
    """
    if classes is not None and len(classes) != len(paths):
        raise ValueError("classes must align with paths")
    g = nx.DiGraph()
    for idx, path in enumerate(paths):
        if len(path) < 2:
            raise ValueError(f"path too short: {path!r}")
        cls = 0 if classes is None else classes[idx]
        hops = [(a, b, cls) for a, b in zip(path, path[1:])]
        for (a, b, c1), (_b, c, c2) in zip(hops, hops[1:]):
            g.add_edge((a, b, c1), (b, c, c2))
        for hop in hops:
            g.add_node(hop)
    return g


def find_deadlock_cycles(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> List[List[Tuple]]:
    """All elementary cyclic buffer dependencies among the given paths."""
    g = buffer_dependency_graph(paths, classes)
    return [cycle for cycle in nx.simple_cycles(g)]


def routing_is_deadlock_free(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> bool:
    """True iff the paths admit no cyclic buffer dependency."""
    return nx.is_directed_acyclic_graph(buffer_dependency_graph(paths, classes))


def all_pairs_paths(topo, trace_fn=None) -> List[List[Hashable]]:
    """Every host-pair path under the topology's installed routing.

    ``trace_fn(topo, src, dst) -> [node names]`` defaults to following the
    switches' routers with a stub packet (same decisions as the packet sim).
    """
    from repro.net.packet import DATA, Packet

    def default_trace(topo, src, dst):
        pkt = Packet(DATA, flow_id=src * 65536 + dst, src=src, dst=dst)
        src_name = topo.hosts[src].name
        dst_name = topo.hosts[dst].name
        current = next(iter(topo.graph[src_name]))
        names = [src_name, current]
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop while tracing")
            sw = topo.node(current)
            out = sw.router(sw, pkt)
            peer = sw.ports[out].peer.node.name
            names.append(peer)
            if peer == dst_name:
                return names
            current = peer

    trace = trace_fn or default_trace
    paths = []
    n = len(topo.hosts)
    for src in range(n):
        for dst in range(n):
            if src != dst:
                paths.append(trace(topo, src, dst))
    return paths


def all_pairs_paths_with_tree_classes(topo) -> Tuple[List[List[Hashable]], List[int]]:
    """Paths plus the per-tree traffic class of each (for topologies routed
    with :func:`repro.routing.install_spanning_trees`)."""
    from repro.routing.spanning_tree import tree_index

    n_trees = getattr(topo, "n_spanning_trees", None)
    if n_trees is None:
        raise ValueError("topology is not spanning-tree routed")
    paths = all_pairs_paths(topo)
    classes = []
    n = len(topo.hosts)
    for src in range(n):
        for dst in range(n):
            if src != dst:
                classes.append(tree_index(src, dst, src * 65536 + dst, n_trees))
    return paths, classes
