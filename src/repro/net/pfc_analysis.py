"""PFC deadlock analysis — the cyclic-buffer-dependency check.

The paper's motivation (§1, §2.3) warns that PFC pauses "can trigger PFC
deadlocks and PFC storms"; Observation 2 adopts spanning-tree routing
partly because TCP-Bolt showed trees "prevent routing paths from forming
loops and causing deadlocks".  This module makes that analyzable:

* :func:`buffer_dependency_graph` — the directed graph whose nodes are
  (switch, ingress-port) buffers and whose edges follow possible pause
  propagation given a set of routed paths.
* :func:`find_deadlock_cycles` — cyclic buffer dependencies (CBD).  A cycle
  means a PFC deadlock is *possible* under worst-case traffic.
* :func:`routing_is_deadlock_free` — True iff no CBD exists, e.g. for any
  up-down fat-tree routing or any spanning-tree routing (tested).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import networkx as nx

PathNames = Sequence[Hashable]  # node names along one routed path


def buffer_dependency_graph(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> nx.DiGraph:
    """Build the CBD graph from routed paths (each a node-name sequence).

    For a path ... a -> b -> c ..., the packet occupies b's ingress buffer
    from link (a,b) and next wants c: if b's buffer fills, PFC pauses a,
    backing traffic into a's ingress buffer from its own upstream.  So for
    every consecutive link pair ((a,b), (b,c)) we add a dependency edge
    buffer(a->b) -> buffer(b->c): the former can only drain if the latter
    drains.

    ``classes`` (one int per path) models per-class lossless buffers
    (PFC priorities): dependencies never cross classes, which is how
    TCP-Bolt makes multiple spanning trees deadlock-free — each tree gets
    its own priority class.  Omitted, every path shares class 0.
    """
    if classes is not None and len(classes) != len(paths):
        raise ValueError("classes must align with paths")
    g = nx.DiGraph()
    for idx, path in enumerate(paths):
        if len(path) < 2:
            raise ValueError(f"path too short: {path!r}")
        cls = 0 if classes is None else classes[idx]
        hops = [(a, b, cls) for a, b in zip(path, path[1:])]
        for (a, b, c1), (_b, c, c2) in zip(hops, hops[1:]):
            g.add_edge((a, b, c1), (b, c, c2))
        for hop in hops:
            g.add_node(hop)
    return g


def find_deadlock_cycles(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> List[List[Tuple]]:
    """All elementary cyclic buffer dependencies among the given paths."""
    g = buffer_dependency_graph(paths, classes)
    return [cycle for cycle in nx.simple_cycles(g)]


def routing_is_deadlock_free(
    paths: Sequence[PathNames], classes: Optional[Sequence[int]] = None
) -> bool:
    """True iff the paths admit no cyclic buffer dependency."""
    return nx.is_directed_acyclic_graph(buffer_dependency_graph(paths, classes))


def all_pairs_paths(topo, trace_fn=None) -> List[List[Hashable]]:
    """Every host-pair path under the topology's installed routing.

    ``trace_fn(topo, src, dst) -> [node names]`` defaults to following the
    switches' routers with a stub packet (same decisions as the packet sim).
    """
    from repro.net.packet import DATA, Packet

    def default_trace(topo, src, dst):
        pkt = Packet(DATA, flow_id=src * 65536 + dst, src=src, dst=dst)
        src_name = topo.hosts[src].name
        dst_name = topo.hosts[dst].name
        current = next(iter(topo.graph[src_name]))
        names = [src_name, current]
        guard = 0
        while True:
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop while tracing")
            sw = topo.node(current)
            out = sw.router(sw, pkt)
            peer = sw.ports[out].peer.node.name
            names.append(peer)
            if peer == dst_name:
                return names
            current = peer

    trace = trace_fn or default_trace
    paths = []
    n = len(topo.hosts)
    for src in range(n):
        for dst in range(n):
            if src != dst:
                paths.append(trace(topo, src, dst))
    return paths


class StormIsolationResult:
    """Outcome of :func:`run_storm_isolation` — one run, with or without
    the watchdog armed."""

    def __init__(
        self,
        watchdog: bool,
        innocent_fct_ps: Optional[int],
        victim_failed: bool,
        victim_fct_ps: Optional[int],
        wd_state: Optional[dict],
        upstream_pauses: int,
    ) -> None:
        self.watchdog = watchdog
        #: FCT of the bystander flow (None = never completed — victimized).
        self.innocent_fct_ps = innocent_fct_ps
        self.victim_failed = victim_failed
        self.victim_fct_ps = victim_fct_ps
        self.wd_state = wd_state
        #: PAUSE frames the ToR propagated upstream (victim spreading).
        self.upstream_pauses = upstream_pauses


def run_storm_isolation(
    seed: int = 1,
    watchdog: bool = True,
    detect_us: float = 30.0,
    restore_us: float = 60.0,
    storm_start_us: float = 5.0,
    storm_duration_us: float = 6000.0,
    duration_us: float = 6000.0,
) -> StormIsolationResult:
    """The PFC-storm victimization scenario the watchdog exists for
    (DESIGN.md §10): on a k=4 fat-tree, host ``h_0_0_0``'s NIC wedges and
    sprays stuck-XOFF PAUSE at its ToR (a :meth:`FaultPlan.pfc_storm`).
    A *victim* flow keeps sending into the dead host; its frames pile up
    in ``tor_0_0`` until PFC back-pressures every upstream — stalling an
    *innocent* flow that merely transits the same ToR.

    Without the watchdog the stall is permanent (the dead NIC never sends
    RESUME).  With :func:`repro.net.switch.arm_watchdog` (``"drop"``
    action) the stuck queue is detected within ``detect_ps + poll_ps``,
    force-resumed and isolated: the innocent flow finishes at a healthy
    FCT and the victim's sender degrades to flow-failed via its RTO
    budget instead of hanging.
    """
    from repro.cc.registry import make_cc_factory
    from repro.faults import FaultInjector, FaultPlan
    from repro.net.switch import PfcWatchdogConfig, SwitchConfig, arm_watchdog
    from repro.sim.engine import Simulator
    from repro.sim.rng import SeedSequenceFactory
    from repro.topo.fattree import fattree
    from repro.transport.flow import Flow
    from repro.transport.sender import TransportConfig
    from repro.units import KB, MB, us

    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    topo = fattree(
        sim,
        k=4,
        seeds=seeds,
        # Low XOFF so the victim's stuck backlog back-pressures the ToR's
        # ingresses quickly — the victimization the watchdog must stop.
        switch_config=SwitchConfig(pfc_xoff=50 * KB),
        transport_config=TransportConfig(
            retx_timeout_ps=us(150), retx_backoff_cap=3, retx_max_timeouts=6
        ),
    )
    tor = topo.node("tor_0_0")
    wd = None
    if watchdog:
        wd = arm_watchdog(
            tor,
            PfcWatchdogConfig(
                detect_ps=us(detect_us), restore_ps=us(restore_us), action="drop"
            ),
        )

    plan = FaultPlan("nic-storm").pfc_storm(
        "tor_0_0",
        toward="h_0_0_0",
        prio=0,
        start_ps=us(storm_start_us),
        duration_ps=us(storm_duration_us),
        interval_ps=us(10),
    )
    FaultInjector(plan).arm(sim, topo, seeds=seeds)

    # Victim sends into the wedged host; the innocent bystander shares the
    # victim's source NIC and ToR but exits the pod upward.
    victim = Flow(0, src=1, dst=0, size_bytes=2 * MB)
    innocent = Flow(1, src=1, dst=2, size_bytes=500 * KB)
    fct: dict = {}
    for host in topo.hosts:
        host.fct_sink = lambda rqp: fct.__setitem__(rqp.flow.flow_id, rqp.finish_ps)
    qps = {}
    for flow in (victim, innocent):
        topo.hosts[flow.dst].register_receiver(flow)
        src = topo.hosts[flow.src]
        cc = make_cc_factory("swift")(flow, src)
        qps[flow.flow_id] = src.start_flow(
            flow, cc, topo.base_rtt_ps(flow.src, flow.dst)
        )
    sim.run(until=us(duration_us))
    sim.stop_monitors()

    # Every PAUSE the ToR itself emitted is the storm spreading to an
    # innocent neighbour (its own buffer filled behind the stuck queue).
    upstream_pauses = sum(p.stats.pause_sent for p in tor.ports)
    return StormIsolationResult(
        watchdog=watchdog,
        innocent_fct_ps=(
            fct[innocent.flow_id] - innocent.start_ps
            if innocent.flow_id in fct
            else None
        ),
        victim_failed=bool(getattr(qps[victim.flow_id], "failed", False)),
        victim_fct_ps=(
            fct[victim.flow_id] - victim.start_ps if victim.flow_id in fct else None
        ),
        wd_state=wd.state() if wd is not None else None,
        upstream_pauses=upstream_pauses,
    )


def all_pairs_paths_with_tree_classes(topo) -> Tuple[List[List[Hashable]], List[int]]:
    """Paths plus the per-tree traffic class of each (for topologies routed
    with :func:`repro.routing.install_spanning_trees`)."""
    from repro.routing.spanning_tree import tree_index

    n_trees = getattr(topo, "n_spanning_trees", None)
    if n_trees is None:
        raise ValueError("topology is not spanning-tree routed")
    paths = all_pairs_paths(topo)
    classes = []
    n = len(topo.hosts)
    for src in range(n):
        for dst in range(n):
            if src != dst:
                classes.append(tree_index(src, dst, src * 65536 + dst, n_trees))
    return paths, classes
