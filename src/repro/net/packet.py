"""Wire formats.

One :class:`Packet` class covers every frame kind; a ``kind`` tag plus a few
optional fields is far cheaper than a class hierarchy on the hot path
(millions of instances per run).  Field widths follow Fig. 7 of the paper:

* INT record: ``{B (bandwidth), TS (timestamp), txBytes, qLen}`` — one per
  hop, up to ``nHop``.
* ``n_flows`` (N): 16-bit count of concurrent flows written by the FNCC
  receiver (supports 64k QPs, §3.2.3).
"""

from __future__ import annotations

from typing import List, Optional

# Packet kinds --------------------------------------------------------------
DATA: int = 0
ACK: int = 1
CNP: int = 2  # DCQCN congestion notification packet
PAUSE: int = 3  # PFC XOFF
RESUME: int = 4  # PFC XON

KIND_NAMES = {DATA: "DATA", ACK: "ACK", CNP: "CNP", PAUSE: "PAUSE", RESUME: "RESUME"}


class INTRecord:
    """One hop's telemetry: Fig. 7's ``{B, TS, txBytes, qLen}``.

    ``tx_bytes`` is the egress port's cumulative transmitted byte counter and
    ``ts`` the simulator time at stamping; the HPCC sender differentiates
    consecutive records to get the link's output rate.
    """

    __slots__ = ("bandwidth_gbps", "ts", "tx_bytes", "qlen")

    def __init__(self, bandwidth_gbps: float, ts: int, tx_bytes: int, qlen: int) -> None:
        self.bandwidth_gbps = bandwidth_gbps
        self.ts = ts
        self.tx_bytes = tx_bytes
        self.qlen = qlen

    def copy(self) -> "INTRecord":
        return INTRecord(self.bandwidth_gbps, self.ts, self.tx_bytes, self.qlen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"INT(B={self.bandwidth_gbps}G ts={self.ts} "
            f"tx={self.tx_bytes} q={self.qlen})"
        )


class Packet:
    """A frame on the wire.

    Size conventions: ``size`` is the full frame length in bytes (what
    occupies link time and buffer space), ``payload`` the transport bytes it
    acknowledges/carries.  ``seq`` is a byte offset; for DATA it is the
    offset of the first payload byte, for ACK it is the *cumulative* next
    expected byte.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "payload",
        "priority",
        "ecn",
        "ecn_echo",
        "int_records",
        "n_flows",
        "rocc_rate_gbps",
        "last",
        "sent_ts",
        "echo_sent_ts",
        "in_port",
        "fncc_in_port",
        "pause_prio",
        "hops",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> None:
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.payload = payload
        self.priority = priority
        self.ecn = False  # CE mark set by RED at a congested egress queue
        self.ecn_echo = False  # receiver -> sender echo on the ACK
        self.int_records: Optional[List[INTRecord]] = None
        self.n_flows = 0  # FNCC receiver's N field (Fig. 7)
        self.rocc_rate_gbps: Optional[float] = None  # RoCC advertised fair rate
        self.last = False  # final DATA packet of the flow / its ACK
        self.sent_ts = 0  # sender timestamp (Timely/Swift RTT measurement)
        self.echo_sent_ts = 0  # sender timestamp echoed back on the ACK
        self.in_port = -1  # ingress port at the node currently holding it
        self.fncc_in_port = -1  # Alg. 1 line 3: ACK input port metadata
        self.pause_prio = 0  # PFC frames: which priority to pause/resume
        self.hops = 0  # switch hops traversed (sanity/TTL checks)

    # -- helpers -------------------------------------------------------------
    def add_int(self, rec: INTRecord) -> None:
        if self.int_records is None:
            self.int_records = [rec]
        else:
            self.int_records.append(rec)

    @property
    def n_hops(self) -> int:
        return 0 if self.int_records is None else len(self.int_records)

    def is_control(self) -> bool:
        """PFC frames bypass data queues and pause state."""
        return self.kind == PAUSE or self.kind == RESUME

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{KIND_NAMES.get(self.kind, self.kind)} flow={self.flow_id} "
            f"seq={self.seq} size={self.size} {self.src}->{self.dst}>"
        )
