"""Wire formats.

One :class:`Packet` class covers every frame kind; a ``kind`` tag plus a few
optional fields is far cheaper than a class hierarchy on the hot path
(millions of instances per run).  Field widths follow Fig. 7 of the paper:

* INT record: ``{B (bandwidth), TS (timestamp), txBytes, qLen}`` — one per
  hop, up to ``nHop``.
* ``n_flows`` (N): 16-bit count of concurrent flows written by the FNCC
  receiver (supports 64k QPs, §3.2.3).
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional

# Packet kinds --------------------------------------------------------------
# Ordering invariant relied on by the port/switch hot paths: control kinds
# (PFC PAUSE/RESUME) are exactly the values >= PAUSE, so "is this a control
# frame" is a single integer compare.  Add new data kinds BELOW PAUSE.
DATA: int = 0
ACK: int = 1
CNP: int = 2  # DCQCN congestion notification packet
PAUSE: int = 3  # PFC XOFF
RESUME: int = 4  # PFC XON

KIND_NAMES = {DATA: "DATA", ACK: "ACK", CNP: "CNP", PAUSE: "PAUSE", RESUME: "RESUME"}


class INTRecord:
    """One hop's telemetry: Fig. 7's ``{B, TS, txBytes, qLen}``.

    ``tx_bytes`` is the egress port's cumulative transmitted byte counter and
    ``ts`` the simulator time at stamping; the HPCC sender differentiates
    consecutive records to get the link's output rate.
    """

    __slots__ = ("bandwidth_gbps", "ts", "tx_bytes", "qlen")

    def __init__(self, bandwidth_gbps: float, ts: int, tx_bytes: int, qlen: int) -> None:
        self.bandwidth_gbps = bandwidth_gbps
        self.ts = ts
        self.tx_bytes = tx_bytes
        self.qlen = qlen

    def copy(self) -> "INTRecord":
        return INTRecord(self.bandwidth_gbps, self.ts, self.tx_bytes, self.qlen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"INT(B={self.bandwidth_gbps}G ts={self.ts} "
            f"tx={self.tx_bytes} q={self.qlen})"
        )


class Packet:
    """A frame on the wire.

    Size conventions: ``size`` is the full frame length in bytes (what
    occupies link time and buffer space), ``payload`` the transport bytes it
    acknowledges/carries.  ``seq`` is a byte offset; for DATA it is the
    offset of the first payload byte, for ACK it is the *cumulative* next
    expected byte.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "payload",
        "priority",
        "ecn",
        "ecn_echo",
        "int_records",
        "n_flows",
        "rocc_rate_gbps",
        "last",
        "sent_ts",
        "echo_sent_ts",
        "in_port",
        "fncc_in_port",
        "pause_prio",
        "hops",
        "lb_tag",
        "lb_tail",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> None:
        self.reset(kind, flow_id, src, dst, seq, size, payload, priority)

    def reset(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> None:
        """Re-initialize every field, as if freshly constructed.

        Used by :class:`PacketPool` to recycle frames.  ``int_records`` is
        dropped by reference, never cleared in place: receivers alias the
        list into the ACK they build and HPCC retains it across ACKs.
        """
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.payload = payload
        self.priority = priority
        self.ecn = False  # CE mark set by RED at a congested egress queue
        self.ecn_echo = False  # receiver -> sender echo on the ACK
        self.int_records: Optional[List[INTRecord]] = None
        self.n_flows = 0  # FNCC receiver's N field (Fig. 7)
        self.rocc_rate_gbps: Optional[float] = None  # RoCC advertised fair rate
        self.last = False  # final DATA packet of the flow / its ACK
        self.sent_ts = 0  # sender timestamp (Timely/Swift RTT measurement)
        self.echo_sent_ts = 0  # sender timestamp echoed back on the ACK
        self.in_port = -1  # ingress port at the node currently holding it
        self.fncc_in_port = -1  # Alg. 1 line 3: ACK input port metadata
        self.pause_prio = 0  # PFC frames: which priority to pause/resume
        self.hops = 0  # switch hops traversed (sanity/TTL checks)
        self.lb_tag = -1  # ConWeave-lite epoch/path tag (-1 = untagged)
        # On DATA: last packet of a rerouted epoch's old path (tail marker).
        # On ACK: explicit retransmit request (NACK) from a reorder-tolerant
        # receiver — survives cumulative-ACK coalescing, unlike inferring
        # "duplicate" from the seq field alone.
        self.lb_tail = False

    # -- helpers -------------------------------------------------------------
    def add_int(self, rec: INTRecord) -> None:
        if self.int_records is None:
            self.int_records = [rec]
        else:
            self.int_records.append(rec)

    @property
    def n_hops(self) -> int:
        return 0 if self.int_records is None else len(self.int_records)

    def is_control(self) -> bool:
        """PFC frames bypass data queues and pause state."""
        return self.kind >= PAUSE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{KIND_NAMES.get(self.kind, self.kind)} flow={self.flow_id} "
            f"seq={self.seq} size={self.size} {self.src}->{self.dst}>"
        )


class PacketPool:
    """A per-host frame free list.

    DATA/ACK/CNP frames are recycled at their terminal sink (the receiver QP
    for DATA, the sender host for ACK/CNP) and re-issued by ``acquire``.
    Ownership rules (DESIGN.md §hot-path): a packet belongs to exactly one
    owner at a time; once ``release`` is called the frame must not be read
    again.  Anything that retains packets past the delivery callback —
    :class:`repro.metrics.tap.PacketTap`, ad-hoc test spies — must disable
    the pool on the hosts it observes (``pool.enabled = False``), which
    turns ``release`` into a no-op and restores allocate-per-frame
    semantics.

    Disabled is the default for bare :class:`~repro.net.host.Host`
    construction; :class:`~repro.topo.base.Topology` enables pooling on the
    hosts it builds, so experiments get the fast path and unit fixtures keep
    immortal packets.
    """

    __slots__ = (
        "_free",
        "enabled",
        "max_free",
        "allocated",
        "recycled",
        "_tap_pauses",
        "_was_enabled",
    )

    def __init__(self, enabled: bool = False, max_free: int = 8192) -> None:
        self._free: List[Packet] = []
        self.enabled = enabled
        self.max_free = max_free
        self.allocated = 0  # pool misses (fresh Packet constructions)
        self.recycled = 0  # frames handed back via release()
        self._tap_pauses = 0  # observers currently holding the pool off
        self._was_enabled = enabled

    # -- observer support -------------------------------------------------------
    def pause_recycling(self) -> None:
        """Observer (PacketTap & co.) wants immortal frames.  Refcounted:
        the pool re-enables only when the *last* observer resumes."""
        if self._tap_pauses == 0:
            self._was_enabled = self.enabled
        self._tap_pauses += 1
        self.enabled = False

    def resume_recycling(self) -> None:
        if self._tap_pauses > 0:
            self._tap_pauses -= 1
            if self._tap_pauses == 0 and self._was_enabled:
                self.enabled = True

    def acquire(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> Packet:
        free = self._free
        if free:
            pkt = free.pop()
            # Packet.reset's body, flattened (keep the field list in sync):
            # one Python call per recycled frame is real money at this rate.
            pkt.kind = kind
            pkt.flow_id = flow_id
            pkt.src = src
            pkt.dst = dst
            pkt.seq = seq
            pkt.size = size
            pkt.payload = payload
            pkt.priority = priority
            pkt.ecn = False
            pkt.ecn_echo = False
            pkt.int_records = None
            pkt.n_flows = 0
            pkt.rocc_rate_gbps = None
            pkt.last = False
            pkt.sent_ts = 0
            pkt.echo_sent_ts = 0
            pkt.in_port = -1
            pkt.fncc_in_port = -1
            pkt.pause_prio = 0
            pkt.hops = 0
            pkt.lb_tag = -1
            pkt.lb_tail = False
            return pkt
        self.allocated += 1
        return Packet(kind, flow_id, src, dst, seq, size, payload, priority)

    def release(self, pkt: Packet) -> None:
        """Hand a dead frame back for reuse (no-op when disabled)."""
        if self.enabled:
            free = self._free
            if len(free) < self.max_free:
                pkt.int_records = None  # drop the aliased telemetry list
                self.recycled += 1
                free.append(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<PacketPool {state} free={len(self._free)} "
            f"alloc={self.allocated} recycled={self.recycled}>"
        )


# -- use-after-release sanitizer (DESIGN.md §9) ------------------------------
#
# The pool's ownership rule — "once release() is called the frame must not
# be read again" — is invisible when violated: the stale reader sees either
# the old fields (wrong data, silently) or, worse, the fields of whatever
# flow the frame was recycled into.  The sanitizer makes the violation loud.
# ``SanitizingPacketPool`` swaps a released frame's class to
# ``_PoisonedPacket``, whose every attribute access raises
# :class:`UseAfterReleaseError` carrying the frame's allocation and release
# stacks; ``acquire`` swaps the class back before reuse.  Opt-in via
# ``Simulator(sanitize="pool")`` / ``REPRO_SANITIZE=pool`` (hosts pick the
# pool class off ``sim.sanitize``); the production ``PacketPool`` is
# untouched.

#: Frames walked per captured stack.  Stored as raw (code, lineno) pairs and
#: formatted only when an error actually fires, keeping capture cheap enough
#: for the bench overhead gate (tools/bench.py --ab-sanitize, ≤15%).
_STACK_DEPTH = 8

#: Default sampling stride for :class:`SanitizingPacketPool` — one tracked
#: lifecycle per this many acquires (override per pool via ``stride=`` or
#: globally via ``REPRO_POOL_STRIDE``; ``1`` = full poisoning).
_DEFAULT_STRIDE = 64


def _capture_stack(skip: int) -> tuple:
    """A cheap partial stack: ((code, lineno), ...) innermost first."""
    try:
        f = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow call stacks
        return ()
    out = []
    depth = 0
    while f is not None and depth < _STACK_DEPTH:
        out.append((f.f_code, f.f_lineno))
        f = f.f_back
        depth += 1
    return tuple(out)


def _format_stack(stack: Optional[tuple]) -> str:
    if not stack:
        return "    <not recorded>"
    return "\n".join(
        f"    {code.co_filename}:{lineno} in {code.co_name}"
        for code, lineno in stack
    )


class UseAfterReleaseError(RuntimeError):
    """A pooled Packet was touched after ``release()`` (DESIGN.md §9)."""


class _PoisonedPacket(Packet):
    """What a released frame *is* while it sits on a sanitizing free list.

    Any attribute read or write raises with the frame's allocation and
    release stacks.  ``__slots__ = ()`` keeps the memory layout identical to
    :class:`Packet`, which is what makes the ``__class__`` swap legal.  The
    two stacks ride in the frame's own ``int_records`` slot (dead while
    released, reset to ``None`` on revival) — poisoning needs no global
    registry, so stacks die with their frame instead of leaking.
    """

    __slots__ = ()

    def _uar(self, verb: str, name: str) -> UseAfterReleaseError:
        alloc, released = object.__getattribute__(self, "int_records") or (
            None,
            None,
        )
        return UseAfterReleaseError(
            f"{verb} of {name!r} on a released pooled Packet "
            f"(ownership rule: a frame must not be touched after release(); "
            f"see DESIGN.md §9)\n"
            f"  allocated at:\n{_format_stack(alloc)}\n"
            f"  released at:\n{_format_stack(released)}"
        )

    def __getattribute__(self, name: str):
        if name in ("_uar", "__class__", "__hash__"):
            return object.__getattribute__(self, name)
        raise object.__getattribute__(self, "_uar")("read", name)

    def __setattr__(self, name: str, value) -> None:
        raise object.__getattribute__(self, "_uar")("write", name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<poisoned (released) Packet>"


class SanitizingPacketPool(PacketPool):
    """Drop-in :class:`PacketPool` with use-after-release detection.

    Tracking is **sampled** (GWP-ASan style): one in every ``stride``
    lifecycles is tracked — its allocation stack captured on ``acquire``,
    the frame class-swap poisoned on ``release`` — and the first lifecycle
    is always tracked so a systematically-broken call site fails on its
    first packet.  Sampling is what keeps the debug mode inside the CI
    ``--ab-sanitize`` overhead gate: full per-frame poisoning costs ~2x a
    pool cycle in CPython, ``stride`` amortizes that to noise while a
    *recurring* use-after-release site still gets caught after O(stride)
    packets.  ``stride=1`` (or ``REPRO_POOL_STRIDE=1``) restores full
    poisoning — what the sanitizer tests and targeted repro sessions use.

    A tracked *live* frame stays a plain :class:`Packet` — tracking rides
    the ``_alloc_sites`` dict, not the object's class, so the hot path only
    ever sees one packet type and CPython's specializing interpreter keeps
    its attribute caches monomorphic (a tracked subclass measurably slowed
    *unrelated* hot functions by deoptimizing shared call sites).
    """

    __slots__ = ("stride", "_left", "_alloc_sites")

    def __init__(
        self,
        enabled: bool = False,
        max_free: int = 8192,
        stride: Optional[int] = None,
    ) -> None:
        PacketPool.__init__(self, enabled, max_free)
        if stride is None:
            stride = int(os.environ.get("REPRO_POOL_STRIDE", "") or _DEFAULT_STRIDE)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self._left = 1  # first lifecycle always tracked
        # id(live tracked frame) -> allocation stack, moved to _POISON on
        # release.  Entries are popped on release (tracked or dropped), so
        # a stale id can never alias a recycled frame.
        self._alloc_sites: Dict[int, tuple] = {}

    def acquire(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> Packet:
        free = self._free
        if free:
            pkt = free.pop()
            if type(pkt) is _PoisonedPacket:
                # Revive: restore the real class, then reset normally (which
                # drops the stashed stacks with int_records).  Must use
                # object.__setattr__ — the poisoned class's own __setattr__
                # would (correctly) refuse.
                object.__setattr__(pkt, "__class__", Packet)
            pkt.reset(kind, flow_id, src, dst, seq, size, payload, priority)
        else:
            self.allocated += 1
            pkt = Packet(kind, flow_id, src, dst, seq, size, payload, priority)
        left = self._left - 1
        if left:
            self._left = left
        else:
            self._left = self.stride
            if self.enabled:
                self._alloc_sites[id(pkt)] = _capture_stack(2)
        return pkt

    def release(self, pkt: Packet) -> None:
        if type(pkt) is _PoisonedPacket:
            alloc, released = object.__getattribute__(pkt, "int_records") or (
                None,
                None,
            )
            raise UseAfterReleaseError(
                "double release() of a pooled Packet\n"
                f"  allocated at:\n{_format_stack(alloc)}\n"
                f"  first released at:\n{_format_stack(released)}"
            )
        if not self.enabled:
            return
        # Pop *before* the free-list capacity check: if the frame is dropped
        # to the GC its tracking entry must go too (a later frame could
        # reuse the id and inherit a foreign allocation stack).  For the
        # (stride-1)/stride untracked lifecycles this is one dict miss.
        sites = self._alloc_sites
        alloc = sites.pop(id(pkt), None) if sites else None
        free = self._free
        if len(free) < self.max_free:
            self.recycled += 1
            if alloc is None:
                pkt.int_records = None
            else:
                # Stash both stacks in the dead frame's int_records slot;
                # revival's reset() replaces it with None.
                pkt.int_records = (alloc, _capture_stack(2))
                object.__setattr__(pkt, "__class__", _PoisonedPacket)
            free.append(pkt)
