"""Wire formats.

One :class:`Packet` class covers every frame kind; a ``kind`` tag plus a few
optional fields is far cheaper than a class hierarchy on the hot path
(millions of instances per run).  Field widths follow Fig. 7 of the paper:

* INT record: ``{B (bandwidth), TS (timestamp), txBytes, qLen}`` — one per
  hop, up to ``nHop``.
* ``n_flows`` (N): 16-bit count of concurrent flows written by the FNCC
  receiver (supports 64k QPs, §3.2.3).
"""

from __future__ import annotations

from typing import List, Optional

# Packet kinds --------------------------------------------------------------
# Ordering invariant relied on by the port/switch hot paths: control kinds
# (PFC PAUSE/RESUME) are exactly the values >= PAUSE, so "is this a control
# frame" is a single integer compare.  Add new data kinds BELOW PAUSE.
DATA: int = 0
ACK: int = 1
CNP: int = 2  # DCQCN congestion notification packet
PAUSE: int = 3  # PFC XOFF
RESUME: int = 4  # PFC XON

KIND_NAMES = {DATA: "DATA", ACK: "ACK", CNP: "CNP", PAUSE: "PAUSE", RESUME: "RESUME"}


class INTRecord:
    """One hop's telemetry: Fig. 7's ``{B, TS, txBytes, qLen}``.

    ``tx_bytes`` is the egress port's cumulative transmitted byte counter and
    ``ts`` the simulator time at stamping; the HPCC sender differentiates
    consecutive records to get the link's output rate.
    """

    __slots__ = ("bandwidth_gbps", "ts", "tx_bytes", "qlen")

    def __init__(self, bandwidth_gbps: float, ts: int, tx_bytes: int, qlen: int) -> None:
        self.bandwidth_gbps = bandwidth_gbps
        self.ts = ts
        self.tx_bytes = tx_bytes
        self.qlen = qlen

    def copy(self) -> "INTRecord":
        return INTRecord(self.bandwidth_gbps, self.ts, self.tx_bytes, self.qlen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"INT(B={self.bandwidth_gbps}G ts={self.ts} "
            f"tx={self.tx_bytes} q={self.qlen})"
        )


class Packet:
    """A frame on the wire.

    Size conventions: ``size`` is the full frame length in bytes (what
    occupies link time and buffer space), ``payload`` the transport bytes it
    acknowledges/carries.  ``seq`` is a byte offset; for DATA it is the
    offset of the first payload byte, for ACK it is the *cumulative* next
    expected byte.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "payload",
        "priority",
        "ecn",
        "ecn_echo",
        "int_records",
        "n_flows",
        "rocc_rate_gbps",
        "last",
        "sent_ts",
        "echo_sent_ts",
        "in_port",
        "fncc_in_port",
        "pause_prio",
        "hops",
        "lb_tag",
        "lb_tail",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> None:
        self.reset(kind, flow_id, src, dst, seq, size, payload, priority)

    def reset(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> None:
        """Re-initialize every field, as if freshly constructed.

        Used by :class:`PacketPool` to recycle frames.  ``int_records`` is
        dropped by reference, never cleared in place: receivers alias the
        list into the ACK they build and HPCC retains it across ACKs.
        """
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.payload = payload
        self.priority = priority
        self.ecn = False  # CE mark set by RED at a congested egress queue
        self.ecn_echo = False  # receiver -> sender echo on the ACK
        self.int_records: Optional[List[INTRecord]] = None
        self.n_flows = 0  # FNCC receiver's N field (Fig. 7)
        self.rocc_rate_gbps: Optional[float] = None  # RoCC advertised fair rate
        self.last = False  # final DATA packet of the flow / its ACK
        self.sent_ts = 0  # sender timestamp (Timely/Swift RTT measurement)
        self.echo_sent_ts = 0  # sender timestamp echoed back on the ACK
        self.in_port = -1  # ingress port at the node currently holding it
        self.fncc_in_port = -1  # Alg. 1 line 3: ACK input port metadata
        self.pause_prio = 0  # PFC frames: which priority to pause/resume
        self.hops = 0  # switch hops traversed (sanity/TTL checks)
        self.lb_tag = -1  # ConWeave-lite epoch/path tag (-1 = untagged)
        # On DATA: last packet of a rerouted epoch's old path (tail marker).
        # On ACK: explicit retransmit request (NACK) from a reorder-tolerant
        # receiver — survives cumulative-ACK coalescing, unlike inferring
        # "duplicate" from the seq field alone.
        self.lb_tail = False

    # -- helpers -------------------------------------------------------------
    def add_int(self, rec: INTRecord) -> None:
        if self.int_records is None:
            self.int_records = [rec]
        else:
            self.int_records.append(rec)

    @property
    def n_hops(self) -> int:
        return 0 if self.int_records is None else len(self.int_records)

    def is_control(self) -> bool:
        """PFC frames bypass data queues and pause state."""
        return self.kind >= PAUSE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{KIND_NAMES.get(self.kind, self.kind)} flow={self.flow_id} "
            f"seq={self.seq} size={self.size} {self.src}->{self.dst}>"
        )


class PacketPool:
    """A per-host frame free list.

    DATA/ACK/CNP frames are recycled at their terminal sink (the receiver QP
    for DATA, the sender host for ACK/CNP) and re-issued by ``acquire``.
    Ownership rules (DESIGN.md §hot-path): a packet belongs to exactly one
    owner at a time; once ``release`` is called the frame must not be read
    again.  Anything that retains packets past the delivery callback —
    :class:`repro.metrics.tap.PacketTap`, ad-hoc test spies — must disable
    the pool on the hosts it observes (``pool.enabled = False``), which
    turns ``release`` into a no-op and restores allocate-per-frame
    semantics.

    Disabled is the default for bare :class:`~repro.net.host.Host`
    construction; :class:`~repro.topo.base.Topology` enables pooling on the
    hosts it builds, so experiments get the fast path and unit fixtures keep
    immortal packets.
    """

    __slots__ = (
        "_free",
        "enabled",
        "max_free",
        "allocated",
        "recycled",
        "_tap_pauses",
        "_was_enabled",
    )

    def __init__(self, enabled: bool = False, max_free: int = 8192) -> None:
        self._free: List[Packet] = []
        self.enabled = enabled
        self.max_free = max_free
        self.allocated = 0  # pool misses (fresh Packet constructions)
        self.recycled = 0  # frames handed back via release()
        self._tap_pauses = 0  # observers currently holding the pool off
        self._was_enabled = enabled

    # -- observer support -------------------------------------------------------
    def pause_recycling(self) -> None:
        """Observer (PacketTap & co.) wants immortal frames.  Refcounted:
        the pool re-enables only when the *last* observer resumes."""
        if self._tap_pauses == 0:
            self._was_enabled = self.enabled
        self._tap_pauses += 1
        self.enabled = False

    def resume_recycling(self) -> None:
        if self._tap_pauses > 0:
            self._tap_pauses -= 1
            if self._tap_pauses == 0 and self._was_enabled:
                self.enabled = True

    def acquire(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        seq: int = 0,
        size: int = 0,
        payload: int = 0,
        priority: int = 0,
    ) -> Packet:
        free = self._free
        if free:
            pkt = free.pop()
            # Packet.reset's body, flattened (keep the field list in sync):
            # one Python call per recycled frame is real money at this rate.
            pkt.kind = kind
            pkt.flow_id = flow_id
            pkt.src = src
            pkt.dst = dst
            pkt.seq = seq
            pkt.size = size
            pkt.payload = payload
            pkt.priority = priority
            pkt.ecn = False
            pkt.ecn_echo = False
            pkt.int_records = None
            pkt.n_flows = 0
            pkt.rocc_rate_gbps = None
            pkt.last = False
            pkt.sent_ts = 0
            pkt.echo_sent_ts = 0
            pkt.in_port = -1
            pkt.fncc_in_port = -1
            pkt.pause_prio = 0
            pkt.hops = 0
            pkt.lb_tag = -1
            pkt.lb_tail = False
            return pkt
        self.allocated += 1
        return Packet(kind, flow_id, src, dst, seq, size, payload, priority)

    def release(self, pkt: Packet) -> None:
        """Hand a dead frame back for reuse (no-op when disabled)."""
        if self.enabled:
            free = self._free
            if len(free) < self.max_free:
                pkt.int_records = None  # drop the aliased telemetry list
                self.recycled += 1
                free.append(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<PacketPool {state} free={len(self._free)} "
            f"alloc={self.allocated} recycled={self.recycled}>"
        )
