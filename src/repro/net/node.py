"""Base class shared by switches and hosts."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import Packet
from repro.net.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Node:
    """A network element owning a set of ports.

    Subclasses implement :meth:`receive`; :meth:`on_departure` is the egress
    hook ports call when a frame finishes transmitting (used for INT
    stamping and PFC counter release).
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        # Canonical tie-break lane for events scheduled on this node's
        # behalf (flow starts, CC timers, samplers) — see Event.key.
        self.lane = sim.alloc_lane()
        self.ports: List[Port] = []

    def new_port(
        self, rate_gbps: float, prop_delay_ps: int, n_prio: Optional[int] = None
    ) -> Port:
        """Create a port.  ``n_prio=None`` means "this node's default" (1
        here; :class:`~repro.net.switch.Switch` substitutes its config)."""
        port = Port(
            self.sim, self, len(self.ports), rate_gbps, prop_delay_ps, n_prio or 1
        )
        self.ports.append(port)
        return port

    # -- hooks ------------------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int) -> None:
        raise NotImplementedError

    def on_departure(self, pkt: Packet, port: Port) -> None:
        """Called by a port when ``pkt`` finished serializing out of it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
