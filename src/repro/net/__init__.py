"""Packet-level lossless-Ethernet substrate (the INET substitute).

Layers:

* :mod:`repro.net.packet` — wire formats (data, ACK, CNP, PFC frames) and
  the INT record of Fig. 7.
* :mod:`repro.net.port` — full-duplex port: egress queue engine with
  per-priority queues, ECN/RED marking, PFC pause state and byte counters.
* :mod:`repro.net.switch` — shared-buffer switch with PFC accounting,
  All_INT_Table (FNCC CP, Alg. 1) and HPCC data-path INT insertion.
* :mod:`repro.net.host` — host with a NIC port and RDMA transport endpoints.
"""

from repro.net.packet import (
    Packet,
    INTRecord,
    DATA,
    ACK,
    CNP,
    PAUSE,
    RESUME,
    KIND_NAMES,
)
from repro.net.port import Port, EcnConfig, PortStats
from repro.net.node import Node
from repro.net.switch import Switch, SwitchConfig, IntMode
from repro.net.host import Host

__all__ = [
    "Packet",
    "INTRecord",
    "DATA",
    "ACK",
    "CNP",
    "PAUSE",
    "RESUME",
    "KIND_NAMES",
    "Port",
    "EcnConfig",
    "PortStats",
    "Node",
    "Switch",
    "SwitchConfig",
    "IntMode",
    "Host",
]
