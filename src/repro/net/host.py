"""End host: a NIC port plus the per-flow transport endpoints.

The host owns every sender QP (Reaction Point) and receiver QP (ACK
Generation Point) terminating at it, dispatches arriving frames to them,
and maintains the concurrent-inbound-flow count that FNCC's receiver writes
into ACKs (§3.2.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.node import Node
from repro.net.packet import (
    ACK,
    CNP,
    DATA,
    PAUSE,
    RESUME,
    Packet,
    PacketPool,
    SanitizingPacketPool,
)
from repro.transport.receiver import ReceiverQP
from repro.transport.sender import SenderQP, TransportConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.cc.base import CongestionControl
    from repro.sim.engine import Simulator
    from repro.transport.flow import Flow

CcFactory = Callable[["Flow", "Host"], "CongestionControl"]


class Host(Node):
    """A single-homed end host (one NIC port, index 0)."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        host_id: int,
        transport: Optional[TransportConfig] = None,
        cnp_enabled: bool = False,
        pool_packets: bool = False,
    ) -> None:
        super().__init__(sim, name)
        self.host_id = host_id
        self.transport_config = transport or TransportConfig()
        self.cnp_enabled = cnp_enabled
        # Frame free list.  Off by default so bare hosts (unit fixtures,
        # spies that retain packets) keep immortal frames; the topology
        # layer enables it for experiment fabrics.  See PacketPool docs.
        # Under Simulator(sanitize="pool") the use-after-release-detecting
        # variant is substituted (DESIGN.md §9) — same API, poisoned frames.
        pool_cls = (
            SanitizingPacketPool
            if "pool" in getattr(sim, "sanitize", ())
            else PacketPool
        )
        self.pkt_pool = pool_cls(enabled=pool_packets)
        self.senders: Dict[int, SenderQP] = {}
        self.receivers: Dict[int, ReceiverQP] = {}
        self._active_inbound = 0
        self.fct_sink: Optional[Callable[[ReceiverQP], None]] = None
        self.sender_done_sink: Optional[Callable[[SenderQP], None]] = None

    # -- wiring -------------------------------------------------------------------
    @property
    def nic(self):
        return self.ports[0]

    def transmit(self, pkt: Packet) -> None:
        self.ports[0].enqueue(pkt)

    # -- flow management -----------------------------------------------------------
    def start_flow(
        self,
        flow: "Flow",
        cc: "CongestionControl",
        base_rtt_ps: int,
    ) -> SenderQP:
        """Create the sender QP and schedule its first transmission."""
        if flow.src != self.host_id:
            raise ValueError(f"flow {flow.flow_id} does not originate here")
        if flow.flow_id in self.senders:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        qp = SenderQP(
            self,
            flow,
            cc,
            self.transport_config,
            base_rtt_ps,
            self.ports[0].rate_gbps,
        )
        qp.on_complete = self._sender_finished
        self.senders[flow.flow_id] = qp
        delay = flow.start_ps - self.sim.now
        if delay < 0:
            raise ValueError(f"flow {flow.flow_id} starts in the past")
        self.sim.schedule(delay, lambda _: qp.start(), None, self.lane)
        return qp

    def register_receiver(self, flow: "Flow") -> ReceiverQP:
        """Pre-register the receive context for an inbound flow."""
        if flow.dst != self.host_id:
            raise ValueError(f"flow {flow.flow_id} does not terminate here")
        tc = self.transport_config
        rqp = ReceiverQP(
            self,
            flow,
            ack_every=tc.ack_every,
            cnp_enabled=self.cnp_enabled,
            reorder_window_bytes=tc.reorder_window_bytes,
            reorder_max_pkts=tc.reorder_max_pkts,
        )
        self.receivers[flow.flow_id] = rqp
        return rqp

    def deactivate_receiver(self, flow_id: int) -> None:
        """Tear down an inbound flow that will never complete (the sender
        aborted).  Keeps the concurrent-flow count N honest — a stale entry
        would make FNCC's LHCS divide the fair share by too many flows."""
        rqp = self.receivers.get(flow_id)
        if rqp is None or rqp.completed:
            return
        if rqp.data_packets > 0:
            self._active_inbound -= 1
        rqp.completed = True

    def active_inbound_flows(self) -> int:
        """The N of Fig. 7: concurrent flows currently delivering to this
        host.  Never less than 1 when asked while generating an ACK."""
        return max(1, self._active_inbound)

    # -- packet dispatch -----------------------------------------------------------
    def receive(self, pkt: Packet, in_port: int) -> None:
        kind = pkt.kind
        if kind == DATA:
            rqp = self.receivers.get(pkt.flow_id)
            if rqp is None:
                raise RuntimeError(
                    f"{self.name}: data for unregistered flow {pkt.flow_id}"
                )
            if rqp.data_packets == 0:
                self._active_inbound += 1
            rqp.on_data(pkt)
        elif kind == ACK:
            qp = self.senders.get(pkt.flow_id)
            if qp is not None:
                qp.on_ack(pkt)  # the QP recycles the ACK when done with it
            else:
                self.pkt_pool.release(pkt)
        elif kind == CNP:
            qp = self.senders.get(pkt.flow_id)
            if qp is not None:
                qp.on_cnp()
            self.pkt_pool.release(pkt)
        elif kind == PAUSE:
            self.ports[in_port].pause(pkt.pause_prio)
            self.ports[in_port].stats.pause_received += 1
        elif kind == RESUME:
            self.ports[in_port].resume(pkt.pause_prio)
            self.ports[in_port].stats.resume_received += 1
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected packet kind {kind}")

    # -- completion hooks -----------------------------------------------------------
    def on_flow_received(self, rqp: ReceiverQP) -> None:
        """Last in-order byte arrived: the FCT measurement point."""
        self._active_inbound -= 1
        if self.fct_sink is not None:
            self.fct_sink(rqp)

    def _sender_finished(self, qp: SenderQP) -> None:
        if self.sender_done_sink is not None:
            self.sender_done_sink(qp)
