"""Full-duplex port with an egress queue engine.

A :class:`Port` is one end of a wire.  Its egress side owns per-priority
FIFO queues, the PFC pause state for each priority, RED/ECN marking, and the
cumulative ``tx_bytes`` counter that INT exposes.  Its ingress side simply
forwards delivered packets to the owning node.

Store-and-forward timing: a packet occupying the head of the queue holds the
transmitter for ``serialization_ps(size, rate)``, then arrives at the peer
``prop_delay_ps`` later.  PFC pause takes effect at frame boundaries (the
in-flight frame always completes), per IEEE 802.1Qbb.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import DATA, Packet
from repro.units import serialization_ps

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class EcnConfig:
    """RED-style ECN marking thresholds (used by DCQCN's congestion point).

    Marking probability rises linearly from 0 at ``kmin`` bytes to ``pmax``
    at ``kmax`` bytes, and is 1 above ``kmax``.
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float) -> None:
        if not (0 <= kmin <= kmax):
            raise ValueError(f"need 0 <= kmin <= kmax, got {kmin}, {kmax}")
        if not (0.0 <= pmax <= 1.0):
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    def mark_probability(self, qlen_bytes: int) -> float:
        if qlen_bytes <= self.kmin:
            return 0.0
        if qlen_bytes >= self.kmax:
            return 1.0
        if self.kmax == self.kmin:
            return 1.0
        return self.pmax * (qlen_bytes - self.kmin) / (self.kmax - self.kmin)


class PortStats:
    """Per-port counters surfaced to the metrics layer."""

    __slots__ = (
        "tx_packets",
        "tx_bytes",
        "rx_packets",
        "rx_bytes",
        "pause_sent",
        "resume_sent",
        "pause_received",
        "drops",
        "ecn_marked",
        "max_qlen",
    )

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.pause_sent = 0
        self.resume_sent = 0
        self.pause_received = 0
        self.drops = 0
        self.ecn_marked = 0
        self.max_qlen = 0


class Port:
    """One end of a full-duplex link, owned by a :class:`~repro.net.node.Node`."""

    __slots__ = (
        "sim",
        "node",
        "index",
        "rate_gbps",
        "prop_delay_ps",
        "peer",
        "n_prio",
        "queues",
        "qbytes",
        "qbytes_total",
        "ctrl",
        "busy",
        "paused",
        "tx_bytes",
        "stats",
        "ecn",
        "ecn_rng",
    )

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        index: int,
        rate_gbps: float,
        prop_delay_ps: int,
        n_prio: int = 1,
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        if prop_delay_ps < 0:
            raise ValueError("propagation delay must be non-negative")
        if n_prio < 1:
            raise ValueError("need at least one priority")
        self.sim = sim
        self.node = node
        self.index = index
        self.rate_gbps = rate_gbps
        self.prop_delay_ps = prop_delay_ps
        self.peer: Optional["Port"] = None
        self.n_prio = n_prio
        self.queues: List[deque] = [deque() for _ in range(n_prio)]
        self.qbytes: List[int] = [0] * n_prio
        self.qbytes_total = 0
        self.ctrl: deque = deque()  # PFC frames bypass data queues
        self.busy = False
        self.paused: List[bool] = [False] * n_prio
        self.tx_bytes = 0  # cumulative, exposed via INT
        self.stats = PortStats()
        self.ecn: Optional[EcnConfig] = None
        self.ecn_rng: Optional[random.Random] = None

    # -- configuration --------------------------------------------------------
    def set_ecn(self, cfg: Optional[EcnConfig], rng: Optional[random.Random]) -> None:
        if cfg is not None and rng is None:
            raise ValueError("ECN marking needs an RNG stream")
        self.ecn = cfg
        self.ecn_rng = rng

    # -- egress ----------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Queue a frame for transmission (control frames jump the queue)."""
        if self.peer is None:
            raise RuntimeError(f"port {self!r} is not wired")
        if pkt.is_control():
            self.ctrl.append(pkt)
        else:
            ecn = self.ecn
            if ecn is not None and pkt.kind == DATA and not pkt.ecn:
                p = ecn.mark_probability(self.qbytes_total)
                if p > 0.0 and (p >= 1.0 or self.ecn_rng.random() < p):
                    pkt.ecn = True
                    self.stats.ecn_marked += 1
            prio = pkt.priority
            self.queues[prio].append(pkt)
            self.qbytes[prio] += pkt.size
            self.qbytes_total += pkt.size
            if self.qbytes_total > self.stats.max_qlen:
                self.stats.max_qlen = self.qbytes_total
        if not self.busy:
            self._kick()

    def pause(self, prio: int) -> None:
        """PFC XOFF for one priority (in-flight frame completes)."""
        self.paused[prio] = True

    def resume(self, prio: int) -> None:
        """PFC XON; restart the transmitter if it was starved."""
        self.paused[prio] = False
        if not self.busy:
            self._kick()

    def _select(self) -> Optional[Packet]:
        """Strict priority: control first, then lowest priority index."""
        if self.ctrl:
            return self.ctrl.popleft()
        for prio in range(self.n_prio):
            if self.paused[prio]:
                continue
            q = self.queues[prio]
            if q:
                pkt = q.popleft()
                self.qbytes[prio] -= pkt.size
                self.qbytes_total -= pkt.size
                return pkt
        return None

    def _kick(self) -> None:
        pkt = self._select()
        if pkt is None:
            return
        self.busy = True
        self.sim.schedule(serialization_ps(pkt.size, self.rate_gbps), self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.tx_bytes += pkt.size
        self.stats.tx_packets += 1
        self.stats.tx_bytes += pkt.size
        # Node hook: INT stamping (switch), PFC ingress-counter release.
        self.node.on_departure(pkt, self)
        self.sim.schedule(self.prop_delay_ps, self.peer._deliver, pkt)
        self.busy = False
        self._kick()

    # -- ingress ----------------------------------------------------------------
    def _deliver(self, pkt: Packet) -> None:
        self.stats.rx_packets += 1
        self.stats.rx_bytes += pkt.size
        pkt.in_port = self.index
        self.node.receive(pkt, self.index)

    # -- introspection ------------------------------------------------------------
    @property
    def queue_len_bytes(self) -> int:
        """Current egress backlog in bytes (the Fig. 9 'queue length')."""
        return self.qbytes_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}.{self.index} {self.rate_gbps}G q={self.qbytes_total}B>"


def connect(
    sim: "Simulator",
    a: "Node",
    b: "Node",
    rate_gbps: float,
    prop_delay_ps: int,
    n_prio: int = 1,
) -> tuple:
    """Wire two nodes with a full-duplex link; returns ``(port_a, port_b)``."""
    pa = a.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pb = b.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pa.peer = pb
    pb.peer = pa
    return pa, pb
