"""Full-duplex port with an arithmetic egress transmitter.

A :class:`Port` is one end of a wire.  Its egress side owns per-priority
FIFO queues, the PFC pause state for each priority, RED/ECN marking, and the
cumulative ``tx_bytes`` counter that INT exposes.  Its ingress side simply
forwards delivered packets to the owning node.

Hot-path design (DESIGN.md §hot-path): instead of the classic
``kick → tx-done → deliver`` two-event chain, the transmitter is
*arithmetic*.  ``next_free_ps`` tracks when the serializer frees up; a
committed frame's start (``max(now, next_free_ps)``), finish
(``start + serialization``) and arrival (``finish + propagation``) are
computed immediately and the frame joins the in-flight FIFO.  Because
per-link arrivals are strictly ordered, the port keeps exactly **one**
outstanding scheduler event, armed for the head of that FIFO and re-armed
from its own callback (:meth:`Simulator.schedule_reuse`) — one event
dispatch per frame, a heap that stays a few entries deep, and zero event
churn when PFC re-sequences the wire.  Departure-side bookkeeping (tx
counters, INT stamping, PFC/buffer release via ``node.on_departure``)
piggybacks on the delivery event.

Commits are **bounded and lazy** (the pause-storm fix): instead of
committing the entire backlog at enqueue time, the port commits at most
``commit_lookahead`` (K) frames ahead of the serializer; the rest wait in
their priority queues and are topped up one delivery at a time from
:meth:`Port._tx_deliver`.  A PFC XOFF/XON therefore only ever uncommits
and recommits the O(K) committed window — constant in the backlog — where
the eager design paid O(backlog) per transition.  The window obeys a
second rule, the *cover floor*: the serializer must stay booked through
the next delivery event (``next_free_ps >= _inflight[0].arrival``, the
next top-up opportunity), else lazy commits would let the wire idle and
change timing.  Because every lazy commit starts at exactly
``next_free_ps`` (never clamped up to ``now`` while covered), the wire
schedule is **bit-identical for every K >= 1** — including the eager
``K = inf`` schedule the previous engine produced — pause storms or not.

Store-and-forward timing is unchanged: a frame occupies the transmitter for
``serialization_ps(size, rate)`` and arrives at the peer ``prop_delay_ps``
after its serialization finishes.  PFC pause still takes effect at frame
boundaries, per IEEE 802.1Qbb: the frame being serialized when XOFF arrives
always completes; frames committed beyond ``now`` are *uncommitted* — they
leave the in-flight FIFO and return to their priority queues — and the
survivors are recommitted under the new pause mask.

Queue-length accounting is lazy: committed frames whose serialization has
not started yet still count as backlog (alongside parked frames the
window has not admitted yet, which count identically); :meth:`Port._prune`
retires accounting entries as the clock passes their start times, so
``qbytes_total`` reads exactly what the old eager engine reported (waiting
bytes, excluding the frame in service) at amortized O(1) per frame.

Frame trains (DESIGN.md §2.2): back-to-back bursts crossing an untapped,
zero-latency switch with a *static per-flow* router ride a **fused hop
pipeline** — :meth:`Port._tx_deliver` executes departure bookkeeping, the
switch forwarding decision (memoized per same-flow train), and the egress
enqueue in one pass, per frame, in the exact order and at the exact
timestamps of the per-frame path, so every counter, RNG draw and wire time
is byte-identical with trains off.  On the commit side, train formation
widens the pending window from ``commit_lookahead`` to ``train_max`` on
pause-free ports, batching the lazy top-up; the PR 3 invariant (identical
wire schedule for every window size) makes the widening unconditionally
exact.  Any per-frame mechanism splits the train back to the classic
path the moment it needs frame granularity: control frames, a PFC-paused
or previously XOFF'd port, a PacketTap or test spy wrapping ``receive``,
a per-packet LB strategy (spray/flowlet/conweave), switch latency, or a
host endpoint (ACK/CC semantics are per-frame by construction).
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import ACK, DATA, PAUSE, RESUME, INTRecord, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class EcnConfig:
    """RED-style ECN marking thresholds (used by DCQCN's congestion point).

    Marking probability rises linearly from 0 at ``kmin`` bytes to ``pmax``
    at ``kmax`` bytes, and is 1 above ``kmax``.
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float) -> None:
        if not (0 <= kmin <= kmax):
            raise ValueError(f"need 0 <= kmin <= kmax, got {kmin}, {kmax}")
        if not (0.0 <= pmax <= 1.0):
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    def mark_probability(self, qlen_bytes: int) -> float:
        if qlen_bytes <= self.kmin:
            return 0.0
        if qlen_bytes >= self.kmax:
            return 1.0
        if self.kmax == self.kmin:
            return 1.0
        return self.pmax * (qlen_bytes - self.kmin) / (self.kmax - self.kmin)


class PortStats:
    """Per-port counters surfaced to the metrics layer.

    The per-frame tx/rx counters live directly on the :class:`Port` (one
    attribute store per frame-hop instead of an extra object indirection);
    this view exposes them under the traditional names.  Cold-path counters
    (PFC, drops, ECN, watermark) are plain fields here.
    """

    __slots__ = (
        "_port",
        "pause_sent",
        "resume_sent",
        "pause_received",
        "resume_received",
        "drops",
        "ecn_marked",
    )

    def __init__(self, port: "Port") -> None:
        self._port = port
        self.pause_sent = 0
        self.resume_sent = 0
        self.pause_received = 0
        self.resume_received = 0
        self.drops = 0
        self.ecn_marked = 0

    @property
    def tx_packets(self) -> int:
        return self._port.tx_packets

    @property
    def tx_bytes(self) -> int:
        return self._port.tx_bytes

    @property
    def rx_packets(self) -> int:
        return self._port.rx_packets

    @property
    def rx_bytes(self) -> int:
        return self._port.rx_bytes

    @property
    def max_qlen(self) -> int:
        return self._port.max_qlen


#: Priority tag for control frames in the commit bookkeeping: PFC frames
#: never count toward data backlog and outrank every data class.
CTRL_PRIO = -1

#: Default commit lookahead: how many frames may sit committed-but-not-
#: started ahead of the serializer.  A PFC transition touches O(K) frames,
#: so keep it small; the cover floor (see the module docstring) admits
#: extra frames on long-propagation links regardless, so K only needs to
#: amortize the per-commit overhead.  Any K >= 1 produces the identical
#: wire schedule.
COMMIT_LOOKAHEAD = 3

#: Default train formation cap: how many frames a single lazy top-up may
#: commit on a pause-free port when trains are enabled (the widened window
#: batches the per-delivery ``_commit`` cost across a burst).  Identical
#: wire schedule for any value >= 1 (the PR 3 invariant); the only cost of
#: a larger value is that a PFC XOFF on a previously pause-free port
#: re-sequences O(train_max) frames once, after which the port drops back
#: to the tight ``commit_lookahead`` window for good.
TRAIN_MAX = 8

# Lazily resolved symbols from repro.net.switch (circular import: switch
# imports port for EcnConfig/Port).  Filled by _resolve_train_symbols().
_Switch = None
_HPCC = None
_FNCC = None
_NONE_INT = None
_INT_BYTES = 8


def _resolve_train_symbols():
    global _Switch, _HPCC, _FNCC, _NONE_INT, _INT_BYTES
    from repro.net.switch import INT_RECORD_BYTES, IntMode, Switch

    _Switch = Switch
    _HPCC = IntMode.HPCC
    _FNCC = IntMode.FNCC
    _NONE_INT = IntMode.NONE
    _INT_BYTES = INT_RECORD_BYTES
    return Switch


class Port:
    """One end of a full-duplex link, owned by a :class:`~repro.net.node.Node`."""

    __slots__ = (
        "sim",
        "node",
        "index",
        "lane",
        "_lane_key",
        "rate_gbps",
        "prop_delay_ps",
        "peer",
        "n_prio",
        "queues",
        "qbytes",
        "ctrl",
        "paused",
        "tx_bytes",
        "tx_packets",
        "rx_packets",
        "rx_bytes",
        "max_qlen",
        "stats",
        "ecn",
        "ecn_rng",
        "next_free_ps",
        "commit_lookahead",
        "train_max",
        "train_frames",
        "_inflight",
        "_acct",
        "_queued_bytes",
        "_uncommitted",
        "_del_ev",
        "_departure_hook",
        "_ser",
        "_trains",
        "_own_sw",
        "_peer_sw",
        "_rt_cache",
        "wd_drop",
    )

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        index: int,
        rate_gbps: float,
        prop_delay_ps: int,
        n_prio: int = 1,
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        if prop_delay_ps < 0:
            raise ValueError("propagation delay must be non-negative")
        if n_prio < 1:
            raise ValueError("need at least one priority")
        self.sim = sim
        self.node = node
        self.index = index
        # Canonical tie-break lane for this port's delivery events, plus
        # its pre-shifted key contribution for the inlined re-arm below.
        self.lane = sim.alloc_lane()
        self._lane_key = self.lane << 44
        self.rate_gbps = rate_gbps
        self.prop_delay_ps = prop_delay_ps
        self.peer: Optional["Port"] = None
        self.n_prio = n_prio
        self.queues: List[deque] = [deque() for _ in range(n_prio)]
        self.qbytes: List[int] = [0] * n_prio
        self.ctrl: deque = deque()  # PFC frames bypass data queues
        self.paused: List[bool] = [False] * n_prio
        self.tx_bytes = 0  # cumulative, exposed via INT
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.max_qlen = 0  # backlog high watermark (stats.max_qlen view)
        self.stats = PortStats(self)
        self.ecn: Optional[EcnConfig] = None
        self.ecn_rng: Optional[random.Random] = None
        self.next_free_ps = 0  # when the serializer frees up
        # Bounded commit window: at most this many frames committed ahead
        # of the serializer (plus the cover floor); a PFC transition costs
        # O(commit_lookahead), never O(backlog).
        self.commit_lookahead = COMMIT_LOOKAHEAD
        # Train formation: the widened pending-window cap a lazy top-up may
        # fill to on a pause-free port when trains are enabled (exact for
        # any value — see the module docstring).
        self.train_max = TRAIN_MAX
        self.train_frames = 0  # frame-hops that rode the fused train path
        # Per-port serialization-time memo: size -> round(size*8000/rate).
        # The rate is fixed for the port's lifetime and the memo stores the
        # very expression the hot paths inline, so a hit is bit-exact.
        self._ser: dict = {}
        # Snapshot of the engine's train switch (A/B runs build fresh
        # Simulators; ports deliberately do not track mid-run flips).
        self._trains = sim.trains_enabled
        # Fused-path classification (lazy — peers are wired after
        # construction): False = not yet classified, None = ineligible.
        self._own_sw = False
        self._peer_sw = False
        # Train route memo: static per-flow routing decisions, keyed by a
        # packed (flow_id, dst) int.  Valid only under the train predicate
        # (static per-flow router); repro.lb.install_lb clears it when a
        # new strategy is installed, and it is bounded (cleared on
        # overflow — every entry is recomputable from the packet alone).
        self._rt_cache: dict = {}
        # PFC-watchdog storm action (net/switch.py PfcWatchdog): when a
        # stuck-XOFF storm is isolated on this egress port, the watchdog
        # installs a ``wd_drop(pkt) -> bool`` handler here; enqueue hands
        # every data frame to it first and drops on True.  None (one load
        # + branch) on healthy ports.  Control frames are exempt — the
        # check sits after the control branch so the victim's own
        # PAUSE/RESUME ledger stays balanced.
        self.wd_drop = None
        # Committed frames, in service order: (arrival_ps, pkt).  The single
        # delivery event (_del_ev) is armed for the head entry.
        self._inflight: deque = deque()
        # Backlog bookkeeping for committed frames: (start_ps, size, prio,
        # pkt).  Entries with start <= now are lazily retired by _prune; the
        # start > now suffix mirrors the tail of _inflight (the frames a PFC
        # XOFF may still uncommit) and is bounded by the commit window.
        self._acct: deque = deque()
        self._queued_bytes = 0  # waiting bytes across queues + pending commits
        self._uncommitted = 0  # frames parked in queues/ctrl (window, pause, re-seq)
        self._del_ev = None
        # Skip the per-frame on_departure call entirely for nodes that keep
        # the base no-op hook (hosts, test sinks); bound once at wiring.
        from repro.net.node import Node as _Node

        self._departure_hook = (
            None if type(node).on_departure is _Node.on_departure else node.on_departure
        )

    # -- configuration --------------------------------------------------------
    def set_ecn(self, cfg: Optional[EcnConfig], rng: Optional[random.Random]) -> None:
        if cfg is not None and rng is None:
            raise ValueError("ECN marking needs an RNG stream")
        self.ecn = cfg
        self.ecn_rng = rng

    # -- backlog accounting ----------------------------------------------------
    def _prune(self, now: int) -> None:
        """Retire accounting entries whose serialization has started."""
        acct = self._acct
        if not acct:
            return
        qb = self.qbytes
        while acct:
            e = acct[0]
            if e[0] > now:
                break
            acct.popleft()
            size = e[1]
            if size:
                qb[e[2]] -= size
                self._queued_bytes -= size

    @property
    def qbytes_total(self) -> int:
        """Current egress backlog in bytes (waiting frames, excluding the
        one in service — the Fig. 9 'queue length')."""
        acct = self._acct
        if acct and acct[0][0] <= self.sim.now:
            self._prune(self.sim.now)
        return self._queued_bytes

    # -- egress ----------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Queue a frame for transmission (control frames jump the queue)."""
        if self.peer is None:
            raise RuntimeError(f"port {self!r} is not wired")
        now = self.sim.now
        acct = self._acct
        if acct and acct[0][0] <= now:
            self._prune(now)
        kind = pkt.kind
        if kind >= PAUSE:  # control frame, inline is_control()
            self.ctrl.append(pkt)
            self._uncommitted += 1
            if self._acct:
                # Pending data frames hold later wire slots; control jumps
                # them at the next frame boundary.
                self._uncommit_pending(now)
            self._commit(now)
            return
        h = self.wd_drop
        if h is not None and h(pkt):
            return
        prio = pkt.priority
        size = pkt.size
        if (
            self._uncommitted == 0
            and not self.paused[prio]
            and (not acct or prio >= acct[-1][2])
            # Window rule: the pending window has a free slot, or the
            # serializer is not yet covered through the next delivery
            # (len(acct) >= K > 0 implies _inflight is non-empty).
            and (
                len(acct) < self.commit_lookahead
                or self.next_free_ps < self._inflight[0][0]
            )
        ):
            # Fast path (idle *and* shallow backlogged ports): nothing is
            # parked in the queues, the new frame's class is transmittable,
            # strict priority puts it behind every pending commit, and the
            # commit window has room — so commit it at the wire tail
            # without a deque round-trip.
            qt = self._queued_bytes
            ecn = self.ecn
            if qt and ecn is not None and kind == DATA and not pkt.ecn:
                p = ecn.mark_probability(qt)
                if p > 0.0 and (p >= 1.0 or self.ecn_rng.random() < p):
                    pkt.ecn = True
                    self.stats.ecn_marked += 1
            nf = self.next_free_ps
            start = nf if nf > now else now
            # Serialization memo (same expression, same rounding on miss).
            ser_map = self._ser
            ser = ser_map.get(size)
            if ser is None:
                ser = ser_map[size] = round(size * 8000 / self.rate_gbps)
            nf = start + ser
            inflight = self._inflight
            inflight.append((nf + self.prop_delay_ps, pkt))
            self.next_free_ps = nf
            if start > now:
                acct.append((start, size, prio, pkt))
                self.qbytes[prio] += size
                qt = self._queued_bytes = qt + size
                if qt > self.max_qlen:
                    self.max_qlen = qt
            if self._del_ev is None:
                self._del_ev = self.sim.schedule_at(
                    inflight[0][0], self._tx_deliver, None, self.lane
                )
            return
        ecn = self.ecn
        if ecn is not None and kind == DATA and not pkt.ecn:
            p = ecn.mark_probability(self._queued_bytes)
            if p > 0.0 and (p >= 1.0 or self.ecn_rng.random() < p):
                pkt.ecn = True
                self.stats.ecn_marked += 1
        self.queues[prio].append(pkt)
        self._uncommitted += 1
        self.qbytes[prio] += size
        qt = self._queued_bytes = self._queued_bytes + size
        if qt > self.max_qlen:
            self.max_qlen = qt
        if acct and prio < acct[-1][2]:
            # A stricter priority arrived behind softer pending commits:
            # re-sequence at the frame boundary (touches O(K) entries).
            self._uncommit_pending(now)
            self._commit(now)
            return
        if len(acct) < self.commit_lookahead or not (
            self._inflight and self.next_free_ps >= self._inflight[0][0]
        ):
            # Window has room (or the serializer is uncovered): commit.
            # Otherwise the frame just parks; _tx_deliver tops up later.
            self._commit(now)

    def bg_drain(self, nbytes: int) -> None:
        """Steal serializer time for background bytes that exist only in
        the hybrid backend's fluid tier (DESIGN.md §6): the wire is busy
        for their serialization, so co-located packet-tier frames queue
        behind them, but no frame is created — ``tx_bytes`` keeps counting
        real frames only, which is what the residual-capacity sampler
        reads back.  Safe against the bounded-commit window invariants:
        ``next_free_ps`` only ever moves forward, already-committed frames
        keep their delivery times (the background bytes conceptually slot
        in behind them), and future commits start from the new tail."""
        now = self.sim.now
        nf = self.next_free_ps
        base = nf if nf > now else now
        self.next_free_ps = base + round(nbytes * 8000 / self.rate_gbps)

    def pause(self, prio: int) -> None:
        """PFC XOFF for one priority (in-flight frame completes).

        Cost: O(committed window) — the K-frame lookahead plus at most one
        propagation delay's worth of cover frames — independent of how
        deep the queue backlog is.  (The eager engine re-sequenced the
        entire backlog here: O(backlog) per transition, quadratic under
        pause storms.)"""
        self.paused[prio] = True
        now = self.sim.now
        if self._acct:
            self._prune(now)
        if self._acct:
            # Uncommit the bounded window past the frame boundary and
            # recommit the survivors (control + unpaused priorities) under
            # the new mask.
            self._uncommit_pending(now)
            self._commit(now)

    def resume(self, prio: int) -> None:
        """PFC XON; restart the transmitter if it was starved.

        The empty-queue early return is provably safe: while a class is
        paused, its frames can wait in exactly one place — its own queue.
        ``pause(prio)`` uncommits the whole pending window and recommits
        under the mask, so no paused-class frame survives in ``_acct``,
        and neither ``_commit`` nor the enqueue fast path ever commits a
        paused class.  An empty ``queues[prio]`` therefore means this XON
        changes the transmittable set not at all; frames of *other*
        classes are either committed (delivery event armed), parked
        behind a full window (the armed delivery tops them up), or parked
        because their own class is paused (their own XON re-commits
        them).  No interleaving strands the transmitter — pinned by
        tests/net/test_port_pipeline.py and tests/property/
        test_pause_storm.py."""
        self.paused[prio] = False
        if not self.queues[prio]:
            return
        now = self.sim.now
        if self._acct:
            self._prune(now)
            self._uncommit_pending(now)
        self._commit(now)

    def _uncommit_pending(self, now: int) -> None:
        """Return every committed-but-not-started frame to its queue,
        preserving order.  Caller must have pruned first, so the whole
        ``_acct`` deque is the pending set — which also mirrors the tail of
        ``_inflight``.  The head of ``_inflight`` (the frame in service, if
        any) is untouched, so the armed delivery event stays valid.  The
        pending set is bounded by the commit window, so this is O(K), not
        O(backlog)."""
        acct = self._acct
        if not acct:
            return
        # Pending frames chain back-to-back behind the in-flight frame, so
        # the first pending start is exactly when the serializer frees up.
        self.next_free_ps = acct[0][0]
        inflight = self._inflight
        ctrl = self.ctrl
        queues = self.queues
        while acct:
            start, size, prio, pkt = acct.pop()
            inflight.pop()  # same frame, tail position mirrors _acct
            self._uncommitted += 1
            if prio == CTRL_PRIO:
                ctrl.appendleft(pkt)
            else:
                queues[prio].appendleft(pkt)

    def _commit(self, now: int) -> None:
        """Commit transmittable frames to the wire arithmetically, up to
        the bounded lookahead window, and make sure the single delivery
        event is armed.

        The window rule has a cap and a floor:

        * **cap** — at most ``commit_lookahead`` (K) frames may sit in the
          committed-pending window (``_acct``), so a PFC transition only
          ever re-sequences O(K) frames;
        * **floor** — the serializer must stay booked through the next
          delivery event (``next_free_ps >= _inflight[0].arrival``), which
          is the next chance to top the window up.  Without the floor a
          lazy commit could start later than the eager schedule (wire
          idles between deliveries); with it, every commit starts exactly
          at ``next_free_ps``, so the schedule is bit-identical for any
          K >= 1.  On a link with propagation delay the floor admits at
          most one propagation delay's worth of frames — still O(1) in
          the backlog.

        Control frames ignore the cap: PFC PAUSE/RESUME must hit the wire
        at the next frame boundary regardless of window state (they are
        rare and carry zero backlog bytes).

        Caller must have pruned ``_acct`` (all entries ``start > now``) so
        its length is the pending-window occupancy."""
        nf = self.next_free_ps
        if nf < now:
            nf = now
        rate = self.rate_gbps
        prop = self.prop_delay_ps
        acct = self._acct
        inflight = self._inflight
        ctrl = self.ctrl
        ser_map = self._ser
        while ctrl:
            pkt = ctrl.popleft()
            self._uncommitted -= 1
            start = nf
            # Serialization memo (same expression, same rounding on miss).
            ser = ser_map.get(pkt.size)
            if ser is None:
                ser = ser_map[pkt.size] = round(pkt.size * 8000 / rate)
            nf = start + ser
            inflight.append((nf + prop, pkt))
            if start > now:
                acct.append((start, 0, CTRL_PRIO, pkt))
        queues = self.queues
        paused = self.paused
        qb = self.qbytes
        k = self.commit_lookahead
        if self._peer_sw and k < self.train_max and self.stats.pause_received == 0:
            # Train formation: on a pause-free, train-eligible port (the
            # peer is a stock switch — classified at first delivery) the
            # pending window may batch-fill to train_max, amortizing the
            # per-delivery top-up over a burst.  Exact for any cap (PR 3
            # invariant); a port that has been XOFF'd keeps the tight
            # window so pause storms stay O(commit_lookahead) per
            # transition, and test/sink fabrics keep the documented
            # commit_lookahead bound.
            k = self.train_max
        # The cover target is the armed delivery's arrival: fixed for the
        # whole call (commits append at the FIFO tail, never the head).
        cover = inflight[0][0] if inflight else None
        stop = False
        for prio in range(self.n_prio):
            if paused[prio]:
                continue
            q = queues[prio]
            while q:
                if cover is not None and nf >= cover and len(acct) >= k:
                    # Window full and the serializer covered through the
                    # next top-up opportunity: park the rest.
                    stop = True
                    break
                pkt = q.popleft()
                self._uncommitted -= 1
                size = pkt.size
                start = nf
                ser = ser_map.get(size)
                if ser is None:
                    ser = ser_map[size] = round(size * 8000 / rate)
                nf = start + ser
                arrival = nf + prop
                inflight.append((arrival, pkt))
                if cover is None:
                    cover = arrival
                if start > now:
                    acct.append((start, size, prio, pkt))
                else:  # started immediately: no longer backlog
                    qb[prio] -= size
                    self._queued_bytes -= size
            if stop:
                break
        self.next_free_ps = nf
        if self._del_ev is None and inflight:
            self._del_ev = self.sim.schedule_at(
                inflight[0][0], self._tx_deliver, None, self.lane
            )

    def _classify_train_path(self):
        """One-time (per port) static classification for the fused train
        path.  The owner side qualifies when its departure hook is absent
        or the stock ``Switch.on_departure``; the peer side when trains
        are enabled and the peer node is a switch whose class-level
        ``receive`` is the stock one.  The *dynamic* split triggers —
        PacketTap wrapping, router identity, strategy staticness — live in
        the peer switch's ``_train_ok`` flag plus the per-frame router
        identity compare; class-level overrides follow the same bind-once
        discipline as ``_departure_hook``."""
        Switch = _Switch if _Switch is not None else _resolve_train_symbols()
        node = self.node
        self._own_sw = (
            node if type(node).on_departure is Switch.on_departure else None
        )
        peer = self.peer
        pn = peer.node if peer is not None else None
        B = (
            pn
            if self._trains
            and pn is not None
            and type(pn).receive is Switch.receive
            else None
        )
        self._peer_sw = B
        return B

    def _tx_deliver(self, _arg) -> None:
        """The per-frame delivery event: departure bookkeeping on this port,
        ingress at the peer, then re-arm for the next in-flight frame.

        Frame-train fast path (DESIGN.md §2.2): when the hop terminates at
        an untapped, zero-latency switch whose installed router is a static
        per-flow function, the whole frame-hop — departure bookkeeping,
        forwarding decision (memoized per same-flow train), shared-buffer
        admission, PFC accounting, ECN draw and egress enqueue — runs as
        one fused pass below, replicating the classic
        ``on_departure -> receive -> enqueue`` chain operation for
        operation (keep the three in sync!).  Same order, same timestamps,
        same RNG draws: byte-identical observables, pinned by
        tests/property/test_trains.py.  Any split trigger (control frame,
        tap, per-packet LB, latency, host peer) falls through to the
        classic calls."""
        inflight = self._inflight
        pkt = inflight.popleft()[1]
        size = pkt.size
        self.tx_bytes += size
        self.tx_packets += 1
        kind = pkt.kind
        sim = self.sim
        peer = self.peer
        B = self._peer_sw
        if B is False:
            B = self._classify_train_path()
        if (
            B is not None
            and kind < PAUSE  # control frames always go per-frame
            and B._train_ok  # static LB, zero latency, untapped (live)
            and B.router is B._lb_router  # router not swapped by hand
        ):
            # ---- fused frame-train hop --------------------------------
            self.train_frames += 1
            A = self._own_sw
            if A is not None:
                # Switch.on_departure, inlined.
                A.buffer_used -= size
                if A._pfc_on:
                    in_a = pkt.in_port
                    prio = pkt.priority
                    counters = A._pfc_bytes[in_a]
                    counters[prio] -= size
                    if counters[prio] <= A._xon and A._pfc_paused_up[in_a][prio]:
                        A._pfc_paused_up[in_a][prio] = False
                        A._send_pfc(in_a, prio, RESUME)
                # Telemetry stamping moved to forward time (Switch.receive
                # / _stamp_forward): A stamped this frame one hop ago, and
                # B's stamp happens below, before B's admission.
            else:
                hook = self._departure_hook
                if hook is not None:  # non-switch custom hook: honor it
                    hook(pkt, self)
            size = pkt.size  # re-read: a custom hook may mutate the frame
            peer.rx_packets += 1
            peer.rx_bytes += size
            in_p = peer.index
            pkt.in_port = in_p
            # Switch.receive, inlined.
            if kind == ACK:
                pkt.fncc_in_port = in_p
            pkt.hops += 1
            rt = self._rt_cache
            key = pkt.flow_id * 1048576 + pkt.dst  # packed (flow_id, dst)
            out = rt.get(key)
            if out is None:
                if len(rt) >= 4096:
                    rt.clear()
                out = rt[key] = B._lb_router(B, pkt)
            if out == in_p:
                raise RuntimeError(
                    f"{B.name}: routing loop, {pkt!r} back out port {out}"
                )
            # Switch.receive's forward-time stamp, inlined (third copy of
            # the block — keep in sync with receive/_stamp_forward).
            mode = B._int_mode
            if mode is not _NONE_INT:
                if mode is _HPCC:
                    if kind == DATA:
                        eg = B.ports[out]
                        now = sim.now
                        acct = eg._acct
                        if acct and acct[0][0] <= now:
                            eg._prune(now)
                        rec = INTRecord(
                            eg.rate_gbps, now, eg.tx_bytes, eg._queued_bytes
                        )
                        recs = pkt.int_records
                        if recs is None:
                            pkt.int_records = [rec]
                        else:
                            recs.append(rec)
                        pkt.size += _INT_BYTES
                elif kind == ACK:  # FNCC
                    snap = B._int_snapshot
                    rec = INTRecord.__new__(INTRecord)
                    if snap is not None:
                        s = snap[in_p]
                        rec.bandwidth_gbps = s.bandwidth_gbps
                        rec.ts = s.ts
                        rec.tx_bytes = s.tx_bytes
                        rec.qlen = s.qlen
                    else:
                        p = B.ports[in_p]
                        now = sim.now
                        acct = p._acct
                        if acct and acct[0][0] <= now:
                            p._prune(now)
                        rec.bandwidth_gbps = p.rate_gbps
                        rec.ts = now
                        rec.tx_bytes = p.tx_bytes
                        rec.qlen = p._queued_bytes
                    recs = pkt.int_records
                    if recs is None:
                        pkt.int_records = [rec]
                    else:
                        recs.append(rec)
                    pkt.size += _INT_BYTES
            if kind == ACK:
                ctrl = B.port_controllers[in_p]
                if ctrl is not None:
                    rate = ctrl.fair_rate_gbps
                    if pkt.rocc_rate_gbps is None or rate < pkt.rocc_rate_gbps:
                        pkt.rocc_rate_gbps = rate
            size = pkt.size  # re-read: the stamp may have grown the frame
            if B.buffer_used + size > B._buffer_bytes:  # shared-buffer admission
                B.drops += 1
                peer.stats.drops += 1
            else:
                B.buffer_used += size
                if B._pfc_on:
                    prio = pkt.priority
                    counters = B._pfc_bytes[in_p]
                    counters[prio] += size
                    if counters[prio] >= B._xoff and not B._pfc_paused_up[in_p][prio]:
                        B._pfc_paused_up[in_p][prio] = True
                        B._send_pfc(in_p, prio, PAUSE)
                # Port.enqueue (data branches), inlined.
                eg = B.ports[out]
                now = sim.now
                acct_e = eg._acct
                if acct_e and acct_e[0][0] <= now:
                    eg._prune(now)
                prio = pkt.priority
                if (
                    eg._uncommitted == 0
                    and not eg.paused[prio]
                    and (not acct_e or prio >= acct_e[-1][2])
                    and (
                        len(acct_e) < eg.commit_lookahead
                        or eg.next_free_ps < eg._inflight[0][0]
                    )
                ):
                    qt = eg._queued_bytes
                    ecn = eg.ecn
                    if qt and ecn is not None and kind == DATA and not pkt.ecn:
                        p = ecn.mark_probability(qt)
                        if p > 0.0 and (p >= 1.0 or eg.ecn_rng.random() < p):
                            pkt.ecn = True
                            eg.stats.ecn_marked += 1
                    nf = eg.next_free_ps
                    start = nf if nf > now else now
                    ser_map = eg._ser
                    ser = ser_map.get(size)
                    if ser is None:
                        ser = ser_map[size] = round(size * 8000 / eg.rate_gbps)
                    nf = start + ser
                    inflight_e = eg._inflight
                    inflight_e.append((nf + eg.prop_delay_ps, pkt))
                    eg.next_free_ps = nf
                    if start > now:
                        acct_e.append((start, size, prio, pkt))
                        eg.qbytes[prio] += size
                        qt = eg._queued_bytes = qt + size
                        if qt > eg.max_qlen:
                            eg.max_qlen = qt
                    if eg._del_ev is None:
                        eg._del_ev = sim.schedule_at(
                            inflight_e[0][0], eg._tx_deliver, None, eg.lane
                        )
                else:
                    ecn = eg.ecn
                    if ecn is not None and kind == DATA and not pkt.ecn:
                        p = ecn.mark_probability(eg._queued_bytes)
                        if p > 0.0 and (p >= 1.0 or eg.ecn_rng.random() < p):
                            pkt.ecn = True
                            eg.stats.ecn_marked += 1
                    eg.queues[prio].append(pkt)
                    eg._uncommitted += 1
                    eg.qbytes[prio] += size
                    qt = eg._queued_bytes = eg._queued_bytes + size
                    if qt > eg.max_qlen:
                        eg.max_qlen = qt
                    if acct_e and prio < acct_e[-1][2]:
                        eg._uncommit_pending(now)
                        eg._commit(now)
                    elif len(acct_e) < eg.commit_lookahead or not (
                        eg._inflight and eg.next_free_ps >= eg._inflight[0][0]
                    ):
                        eg._commit(now)
        else:
            # ---- classic per-frame path -------------------------------
            # Node hook: INT stamping (switch), PFC ingress-counter release.
            hook = self._departure_hook
            if hook is not None:
                hook(pkt, self)
            peer.rx_packets += 1
            peer.rx_bytes += pkt.size  # after on_departure: INT bytes included
            pkt.in_port = peer.index
            peer.node.receive(pkt, peer.index)
        if self._uncommitted:
            # Bounded lazy commit: a delivery slot freed, so top the
            # committed window back up from the parked queues.  _commit
            # never schedules here (_del_ev is this very event); the
            # re-arm below picks up whatever became the FIFO head.  The
            # hook/receive calls above cannot re-enter this port: PFC and
            # forwarding act on other ports, and the peer's reactions ride
            # their own events.  The call is skipped while the pending
            # window is still at/above commit_lookahead *and* covered.
            # Deliberate hysteresis: the refill TRIGGER is the tight
            # commit_lookahead while _commit's FILL cap is the widened
            # train_max on train-eligible ports, so a draining window
            # refills in batches of ~(train_max - K) frames once per
            # several deliveries instead of one frame every delivery.  On
            # non-widened ports the skipped call is exactly one that would
            # commit nothing (control frames never park across events, so
            # ctrl is empty here); either way the wire schedule is
            # unchanged (any-cap invariant, DESIGN.md §2.1/§2.2).
            topup_now = sim.now
            acct = self._acct
            if acct and acct[0][0] <= topup_now:
                self._prune(topup_now)
            if len(acct) < self.commit_lookahead or not (
                inflight and self.next_free_ps >= inflight[0][0]
            ):
                self._commit(topup_now)
        if inflight:
            # Simulator.schedule_reuse's body, flattened: this runs once per
            # frame-hop, inside our own dispatched event (the documented
            # reuse contract), and per-link arrivals are monotonic so the
            # negative-delay guard is structurally unneeded.
            sim._seq = seq = sim._seq + 1
            ev = self._del_ev
            ev.time = time = inflight[0][0]
            ev.seq = seq
            ev.key = key = (time << 64) | self._lane_key | seq
            ev.alive = True
            heappush(sim._heap, (key, ev))
        else:
            self._del_ev = None

    # -- introspection ------------------------------------------------------------
    @property
    def queue_len_bytes(self) -> int:
        """Current egress backlog in bytes (the Fig. 9 'queue length')."""
        return self.qbytes_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}.{self.index} {self.rate_gbps}G q={self._queued_bytes}B>"


def connect(
    sim: "Simulator",
    a: "Node",
    b: "Node",
    rate_gbps: float,
    prop_delay_ps: int,
    n_prio: Optional[int] = None,
) -> tuple:
    """Wire two nodes with a full-duplex link; returns ``(port_a, port_b)``.

    ``n_prio=None`` lets each node pick its own default (plain nodes use 1,
    switches use their config's ``n_prio``)."""
    pa = a.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pb = b.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pa.peer = pb
    pb.peer = pa
    return pa, pb
