"""Full-duplex port with an arithmetic egress transmitter.

A :class:`Port` is one end of a wire.  Its egress side owns per-priority
FIFO queues, the PFC pause state for each priority, RED/ECN marking, and the
cumulative ``tx_bytes`` counter that INT exposes.  Its ingress side simply
forwards delivered packets to the owning node.

Hot-path design (DESIGN.md §hot-path): instead of the classic
``kick → tx-done → deliver`` two-event chain, the transmitter is
*arithmetic*.  ``next_free_ps`` tracks when the serializer frees up; a
committed frame's start (``max(now, next_free_ps)``), finish
(``start + serialization``) and arrival (``finish + propagation``) are
computed immediately and the frame joins the in-flight FIFO.  Because
per-link arrivals are strictly ordered, the port keeps exactly **one**
outstanding scheduler event, armed for the head of that FIFO and re-armed
from its own callback (:meth:`Simulator.schedule_reuse`) — one event
dispatch per frame, a heap that stays a few entries deep, and zero event
churn when PFC re-sequences the wire.  Departure-side bookkeeping (tx
counters, INT stamping, PFC/buffer release via ``node.on_departure``)
piggybacks on the delivery event.

Commits are **bounded and lazy** (the pause-storm fix): instead of
committing the entire backlog at enqueue time, the port commits at most
``commit_lookahead`` (K) frames ahead of the serializer; the rest wait in
their priority queues and are topped up one delivery at a time from
:meth:`Port._tx_deliver`.  A PFC XOFF/XON therefore only ever uncommits
and recommits the O(K) committed window — constant in the backlog — where
the eager design paid O(backlog) per transition.  The window obeys a
second rule, the *cover floor*: the serializer must stay booked through
the next delivery event (``next_free_ps >= _inflight[0].arrival``, the
next top-up opportunity), else lazy commits would let the wire idle and
change timing.  Because every lazy commit starts at exactly
``next_free_ps`` (never clamped up to ``now`` while covered), the wire
schedule is **bit-identical for every K >= 1** — including the eager
``K = inf`` schedule the previous engine produced — pause storms or not.

Store-and-forward timing is unchanged: a frame occupies the transmitter for
``serialization_ps(size, rate)`` and arrives at the peer ``prop_delay_ps``
after its serialization finishes.  PFC pause still takes effect at frame
boundaries, per IEEE 802.1Qbb: the frame being serialized when XOFF arrives
always completes; frames committed beyond ``now`` are *uncommitted* — they
leave the in-flight FIFO and return to their priority queues — and the
survivors are recommitted under the new pause mask.

Queue-length accounting is lazy: committed frames whose serialization has
not started yet still count as backlog (alongside parked frames the
window has not admitted yet, which count identically); :meth:`Port._prune`
retires accounting entries as the clock passes their start times, so
``qbytes_total`` reads exactly what the old eager engine reported (waiting
bytes, excluding the frame in service) at amortized O(1) per frame.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, List, Optional

from repro.net.packet import DATA, PAUSE, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class EcnConfig:
    """RED-style ECN marking thresholds (used by DCQCN's congestion point).

    Marking probability rises linearly from 0 at ``kmin`` bytes to ``pmax``
    at ``kmax`` bytes, and is 1 above ``kmax``.
    """

    __slots__ = ("kmin", "kmax", "pmax")

    def __init__(self, kmin: int, kmax: int, pmax: float) -> None:
        if not (0 <= kmin <= kmax):
            raise ValueError(f"need 0 <= kmin <= kmax, got {kmin}, {kmax}")
        if not (0.0 <= pmax <= 1.0):
            raise ValueError(f"pmax must be in [0,1], got {pmax}")
        self.kmin = kmin
        self.kmax = kmax
        self.pmax = pmax

    def mark_probability(self, qlen_bytes: int) -> float:
        if qlen_bytes <= self.kmin:
            return 0.0
        if qlen_bytes >= self.kmax:
            return 1.0
        if self.kmax == self.kmin:
            return 1.0
        return self.pmax * (qlen_bytes - self.kmin) / (self.kmax - self.kmin)


class PortStats:
    """Per-port counters surfaced to the metrics layer.

    The per-frame tx/rx counters live directly on the :class:`Port` (one
    attribute store per frame-hop instead of an extra object indirection);
    this view exposes them under the traditional names.  Cold-path counters
    (PFC, drops, ECN, watermark) are plain fields here.
    """

    __slots__ = (
        "_port",
        "pause_sent",
        "resume_sent",
        "pause_received",
        "resume_received",
        "drops",
        "ecn_marked",
    )

    def __init__(self, port: "Port") -> None:
        self._port = port
        self.pause_sent = 0
        self.resume_sent = 0
        self.pause_received = 0
        self.resume_received = 0
        self.drops = 0
        self.ecn_marked = 0

    @property
    def tx_packets(self) -> int:
        return self._port.tx_packets

    @property
    def tx_bytes(self) -> int:
        return self._port.tx_bytes

    @property
    def rx_packets(self) -> int:
        return self._port.rx_packets

    @property
    def rx_bytes(self) -> int:
        return self._port.rx_bytes

    @property
    def max_qlen(self) -> int:
        return self._port.max_qlen


#: Priority tag for control frames in the commit bookkeeping: PFC frames
#: never count toward data backlog and outrank every data class.
CTRL_PRIO = -1

#: Default commit lookahead: how many frames may sit committed-but-not-
#: started ahead of the serializer.  A PFC transition touches O(K) frames,
#: so keep it small; the cover floor (see the module docstring) admits
#: extra frames on long-propagation links regardless, so K only needs to
#: amortize the per-commit overhead.  Any K >= 1 produces the identical
#: wire schedule.
COMMIT_LOOKAHEAD = 3


class Port:
    """One end of a full-duplex link, owned by a :class:`~repro.net.node.Node`."""

    __slots__ = (
        "sim",
        "node",
        "index",
        "rate_gbps",
        "prop_delay_ps",
        "peer",
        "n_prio",
        "queues",
        "qbytes",
        "ctrl",
        "paused",
        "tx_bytes",
        "tx_packets",
        "rx_packets",
        "rx_bytes",
        "max_qlen",
        "stats",
        "ecn",
        "ecn_rng",
        "next_free_ps",
        "commit_lookahead",
        "_inflight",
        "_acct",
        "_queued_bytes",
        "_uncommitted",
        "_del_ev",
        "_departure_hook",
    )

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        index: int,
        rate_gbps: float,
        prop_delay_ps: int,
        n_prio: int = 1,
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        if prop_delay_ps < 0:
            raise ValueError("propagation delay must be non-negative")
        if n_prio < 1:
            raise ValueError("need at least one priority")
        self.sim = sim
        self.node = node
        self.index = index
        self.rate_gbps = rate_gbps
        self.prop_delay_ps = prop_delay_ps
        self.peer: Optional["Port"] = None
        self.n_prio = n_prio
        self.queues: List[deque] = [deque() for _ in range(n_prio)]
        self.qbytes: List[int] = [0] * n_prio
        self.ctrl: deque = deque()  # PFC frames bypass data queues
        self.paused: List[bool] = [False] * n_prio
        self.tx_bytes = 0  # cumulative, exposed via INT
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.max_qlen = 0  # backlog high watermark (stats.max_qlen view)
        self.stats = PortStats(self)
        self.ecn: Optional[EcnConfig] = None
        self.ecn_rng: Optional[random.Random] = None
        self.next_free_ps = 0  # when the serializer frees up
        # Bounded commit window: at most this many frames committed ahead
        # of the serializer (plus the cover floor); a PFC transition costs
        # O(commit_lookahead), never O(backlog).
        self.commit_lookahead = COMMIT_LOOKAHEAD
        # Committed frames, in service order: (arrival_ps, pkt).  The single
        # delivery event (_del_ev) is armed for the head entry.
        self._inflight: deque = deque()
        # Backlog bookkeeping for committed frames: (start_ps, size, prio,
        # pkt).  Entries with start <= now are lazily retired by _prune; the
        # start > now suffix mirrors the tail of _inflight (the frames a PFC
        # XOFF may still uncommit) and is bounded by the commit window.
        self._acct: deque = deque()
        self._queued_bytes = 0  # waiting bytes across queues + pending commits
        self._uncommitted = 0  # frames parked in queues/ctrl (window, pause, re-seq)
        self._del_ev = None
        # Skip the per-frame on_departure call entirely for nodes that keep
        # the base no-op hook (hosts, test sinks); bound once at wiring.
        from repro.net.node import Node as _Node

        self._departure_hook = (
            None if type(node).on_departure is _Node.on_departure else node.on_departure
        )

    # -- configuration --------------------------------------------------------
    def set_ecn(self, cfg: Optional[EcnConfig], rng: Optional[random.Random]) -> None:
        if cfg is not None and rng is None:
            raise ValueError("ECN marking needs an RNG stream")
        self.ecn = cfg
        self.ecn_rng = rng

    # -- backlog accounting ----------------------------------------------------
    def _prune(self, now: int) -> None:
        """Retire accounting entries whose serialization has started."""
        acct = self._acct
        if not acct:
            return
        qb = self.qbytes
        while acct:
            e = acct[0]
            if e[0] > now:
                break
            acct.popleft()
            size = e[1]
            if size:
                qb[e[2]] -= size
                self._queued_bytes -= size

    @property
    def qbytes_total(self) -> int:
        """Current egress backlog in bytes (waiting frames, excluding the
        one in service — the Fig. 9 'queue length')."""
        acct = self._acct
        if acct and acct[0][0] <= self.sim.now:
            self._prune(self.sim.now)
        return self._queued_bytes

    # -- egress ----------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Queue a frame for transmission (control frames jump the queue)."""
        if self.peer is None:
            raise RuntimeError(f"port {self!r} is not wired")
        now = self.sim.now
        acct = self._acct
        if acct and acct[0][0] <= now:
            self._prune(now)
        kind = pkt.kind
        if kind >= PAUSE:  # control frame, inline is_control()
            self.ctrl.append(pkt)
            self._uncommitted += 1
            if self._acct:
                # Pending data frames hold later wire slots; control jumps
                # them at the next frame boundary.
                self._uncommit_pending(now)
            self._commit(now)
            return
        prio = pkt.priority
        size = pkt.size
        if (
            self._uncommitted == 0
            and not self.paused[prio]
            and (not acct or prio >= acct[-1][2])
            # Window rule: the pending window has a free slot, or the
            # serializer is not yet covered through the next delivery
            # (len(acct) >= K > 0 implies _inflight is non-empty).
            and (
                len(acct) < self.commit_lookahead
                or self.next_free_ps < self._inflight[0][0]
            )
        ):
            # Fast path (idle *and* shallow backlogged ports): nothing is
            # parked in the queues, the new frame's class is transmittable,
            # strict priority puts it behind every pending commit, and the
            # commit window has room — so commit it at the wire tail
            # without a deque round-trip.
            qt = self._queued_bytes
            ecn = self.ecn
            if qt and ecn is not None and kind == DATA and not pkt.ecn:
                p = ecn.mark_probability(qt)
                if p > 0.0 and (p >= 1.0 or self.ecn_rng.random() < p):
                    pkt.ecn = True
                    self.stats.ecn_marked += 1
            nf = self.next_free_ps
            start = nf if nf > now else now
            # Inline serialization_ps: same expression, same rounding.
            nf = start + round(size * 8000 / self.rate_gbps)
            inflight = self._inflight
            inflight.append((nf + self.prop_delay_ps, pkt))
            self.next_free_ps = nf
            if start > now:
                acct.append((start, size, prio, pkt))
                self.qbytes[prio] += size
                qt = self._queued_bytes = qt + size
                if qt > self.max_qlen:
                    self.max_qlen = qt
            if self._del_ev is None:
                self._del_ev = self.sim.schedule_at(
                    inflight[0][0], self._tx_deliver, None
                )
            return
        ecn = self.ecn
        if ecn is not None and kind == DATA and not pkt.ecn:
            p = ecn.mark_probability(self._queued_bytes)
            if p > 0.0 and (p >= 1.0 or self.ecn_rng.random() < p):
                pkt.ecn = True
                self.stats.ecn_marked += 1
        self.queues[prio].append(pkt)
        self._uncommitted += 1
        self.qbytes[prio] += size
        qt = self._queued_bytes = self._queued_bytes + size
        if qt > self.max_qlen:
            self.max_qlen = qt
        if acct and prio < acct[-1][2]:
            # A stricter priority arrived behind softer pending commits:
            # re-sequence at the frame boundary (touches O(K) entries).
            self._uncommit_pending(now)
            self._commit(now)
            return
        if len(acct) < self.commit_lookahead or not (
            self._inflight and self.next_free_ps >= self._inflight[0][0]
        ):
            # Window has room (or the serializer is uncovered): commit.
            # Otherwise the frame just parks; _tx_deliver tops up later.
            self._commit(now)

    def pause(self, prio: int) -> None:
        """PFC XOFF for one priority (in-flight frame completes).

        Cost: O(committed window) — the K-frame lookahead plus at most one
        propagation delay's worth of cover frames — independent of how
        deep the queue backlog is.  (The eager engine re-sequenced the
        entire backlog here: O(backlog) per transition, quadratic under
        pause storms.)"""
        self.paused[prio] = True
        now = self.sim.now
        if self._acct:
            self._prune(now)
        if self._acct:
            # Uncommit the bounded window past the frame boundary and
            # recommit the survivors (control + unpaused priorities) under
            # the new mask.
            self._uncommit_pending(now)
            self._commit(now)

    def resume(self, prio: int) -> None:
        """PFC XON; restart the transmitter if it was starved.

        The empty-queue early return is provably safe: while a class is
        paused, its frames can wait in exactly one place — its own queue.
        ``pause(prio)`` uncommits the whole pending window and recommits
        under the mask, so no paused-class frame survives in ``_acct``,
        and neither ``_commit`` nor the enqueue fast path ever commits a
        paused class.  An empty ``queues[prio]`` therefore means this XON
        changes the transmittable set not at all; frames of *other*
        classes are either committed (delivery event armed), parked
        behind a full window (the armed delivery tops them up), or parked
        because their own class is paused (their own XON re-commits
        them).  No interleaving strands the transmitter — pinned by
        tests/net/test_port_pipeline.py and tests/property/
        test_pause_storm.py."""
        self.paused[prio] = False
        if not self.queues[prio]:
            return
        now = self.sim.now
        if self._acct:
            self._prune(now)
            self._uncommit_pending(now)
        self._commit(now)

    def _uncommit_pending(self, now: int) -> None:
        """Return every committed-but-not-started frame to its queue,
        preserving order.  Caller must have pruned first, so the whole
        ``_acct`` deque is the pending set — which also mirrors the tail of
        ``_inflight``.  The head of ``_inflight`` (the frame in service, if
        any) is untouched, so the armed delivery event stays valid.  The
        pending set is bounded by the commit window, so this is O(K), not
        O(backlog)."""
        acct = self._acct
        if not acct:
            return
        # Pending frames chain back-to-back behind the in-flight frame, so
        # the first pending start is exactly when the serializer frees up.
        self.next_free_ps = acct[0][0]
        inflight = self._inflight
        ctrl = self.ctrl
        queues = self.queues
        while acct:
            start, size, prio, pkt = acct.pop()
            inflight.pop()  # same frame, tail position mirrors _acct
            self._uncommitted += 1
            if prio == CTRL_PRIO:
                ctrl.appendleft(pkt)
            else:
                queues[prio].appendleft(pkt)

    def _commit(self, now: int) -> None:
        """Commit transmittable frames to the wire arithmetically, up to
        the bounded lookahead window, and make sure the single delivery
        event is armed.

        The window rule has a cap and a floor:

        * **cap** — at most ``commit_lookahead`` (K) frames may sit in the
          committed-pending window (``_acct``), so a PFC transition only
          ever re-sequences O(K) frames;
        * **floor** — the serializer must stay booked through the next
          delivery event (``next_free_ps >= _inflight[0].arrival``), which
          is the next chance to top the window up.  Without the floor a
          lazy commit could start later than the eager schedule (wire
          idles between deliveries); with it, every commit starts exactly
          at ``next_free_ps``, so the schedule is bit-identical for any
          K >= 1.  On a link with propagation delay the floor admits at
          most one propagation delay's worth of frames — still O(1) in
          the backlog.

        Control frames ignore the cap: PFC PAUSE/RESUME must hit the wire
        at the next frame boundary regardless of window state (they are
        rare and carry zero backlog bytes).

        Caller must have pruned ``_acct`` (all entries ``start > now``) so
        its length is the pending-window occupancy."""
        nf = self.next_free_ps
        if nf < now:
            nf = now
        rate = self.rate_gbps
        prop = self.prop_delay_ps
        acct = self._acct
        inflight = self._inflight
        ctrl = self.ctrl
        while ctrl:
            pkt = ctrl.popleft()
            self._uncommitted -= 1
            start = nf
            # Inline serialization_ps: same expression, same rounding.
            nf = start + round(pkt.size * 8000 / rate)
            inflight.append((nf + prop, pkt))
            if start > now:
                acct.append((start, 0, CTRL_PRIO, pkt))
        queues = self.queues
        paused = self.paused
        qb = self.qbytes
        k = self.commit_lookahead
        # The cover target is the armed delivery's arrival: fixed for the
        # whole call (commits append at the FIFO tail, never the head).
        cover = inflight[0][0] if inflight else None
        stop = False
        for prio in range(self.n_prio):
            if paused[prio]:
                continue
            q = queues[prio]
            while q:
                if cover is not None and nf >= cover and len(acct) >= k:
                    # Window full and the serializer covered through the
                    # next top-up opportunity: park the rest.
                    stop = True
                    break
                pkt = q.popleft()
                self._uncommitted -= 1
                size = pkt.size
                start = nf
                nf = start + round(size * 8000 / rate)
                arrival = nf + prop
                inflight.append((arrival, pkt))
                if cover is None:
                    cover = arrival
                if start > now:
                    acct.append((start, size, prio, pkt))
                else:  # started immediately: no longer backlog
                    qb[prio] -= size
                    self._queued_bytes -= size
            if stop:
                break
        self.next_free_ps = nf
        if self._del_ev is None and inflight:
            self._del_ev = self.sim.schedule_at(inflight[0][0], self._tx_deliver, None)

    def _tx_deliver(self, _arg) -> None:
        """The per-frame delivery event: departure bookkeeping on this port,
        ingress at the peer, then re-arm for the next in-flight frame."""
        inflight = self._inflight
        pkt = inflight.popleft()[1]
        self.tx_bytes += pkt.size
        self.tx_packets += 1
        # Node hook: INT stamping (switch), PFC ingress-counter release.
        hook = self._departure_hook
        if hook is not None:
            hook(pkt, self)
        peer = self.peer
        peer.rx_packets += 1
        peer.rx_bytes += pkt.size  # after on_departure: INT bytes included
        pkt.in_port = peer.index
        peer.node.receive(pkt, peer.index)
        if self._uncommitted:
            # Bounded lazy commit: a delivery slot freed, so top the
            # committed window back up from the parked queues.  _commit
            # never schedules here (_del_ev is this very event); the
            # re-arm below picks up whatever became the FIFO head.  The
            # hook/receive calls above cannot re-enter this port: PFC and
            # forwarding act on other ports, and the peer's reactions ride
            # their own events.
            topup_now = self.sim.now
            if self._acct:
                self._prune(topup_now)
            self._commit(topup_now)
        if inflight:
            # Simulator.schedule_reuse's body, flattened: this runs once per
            # frame-hop, inside our own dispatched event (the documented
            # reuse contract), and per-link arrivals are monotonic so the
            # negative-delay guard is structurally unneeded.
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            ev = self._del_ev
            ev.time = time = inflight[0][0]
            ev.seq = seq
            ev.key = key = (time << 44) | seq
            ev.alive = True
            heappush(sim._heap, (key, ev))
        else:
            self._del_ev = None

    # -- introspection ------------------------------------------------------------
    @property
    def queue_len_bytes(self) -> int:
        """Current egress backlog in bytes (the Fig. 9 'queue length')."""
        return self.qbytes_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}.{self.index} {self.rate_gbps}G q={self._queued_bytes}B>"


def connect(
    sim: "Simulator",
    a: "Node",
    b: "Node",
    rate_gbps: float,
    prop_delay_ps: int,
    n_prio: Optional[int] = None,
) -> tuple:
    """Wire two nodes with a full-duplex link; returns ``(port_a, port_b)``.

    ``n_prio=None`` lets each node pick its own default (plain nodes use 1,
    switches use their config's ``n_prio``)."""
    pa = a.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pb = b.new_port(rate_gbps, prop_delay_ps, n_prio=n_prio)
    pa.peer = pb
    pb.peer = pa
    return pa, pb
