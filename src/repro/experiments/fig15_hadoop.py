"""Fig. 15 — FCT slowdown under the FB_Hadoop distribution at 50% load.

Paper headline: for flows shorter than 100 KB, FNCC reduces 95th-percentile
slowdown by ~27.4% vs HPCC and ~88.9% vs DCQCN.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.fct_experiment import (
    FctSummary,
    compare_ccs_sweep,
    format_panel,
)
from repro.metrics.fct import PERCENTILE_COLUMNS

CCS = ("dcqcn", "hpcc", "fncc")


def run_fig15(
    ccs: Sequence[str] = CCS,
    k: int = 4,
    load: float = 0.5,
    n_flows: int = 300,
    scale: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    backend: str = "packet",
    **kwargs,
) -> Dict[str, FctSummary]:
    # Hadoop flows are small (median ~1 KB), so no size scaling is needed
    # even in pure Python — we run the distribution as published.  Per-CC
    # runs fan out over ``jobs`` worker processes (jobs=1 = in-process);
    # ``backend`` selects the engine per cell (DESIGN.md §6).
    return compare_ccs_sweep(
        ccs,
        workload="hadoop",
        k=k,
        load=load,
        n_flows=n_flows,
        scale=scale,
        seed=seed,
        jobs=jobs,
        backend=backend,
        **kwargs,
    )


def short_flow_p95_reduction(
    results: Dict[str, FctSummary], max_size: int = 100_000
) -> Dict[str, float]:
    """FNCC's p95 slowdown reduction (%) vs each baseline for flows shorter
    than ``max_size`` (100 KB in the paper)."""
    fncc = results["fncc"].table.aggregate("p95", max_size=max_size)
    out = {}
    for cc in results:
        if cc == "fncc":
            continue
        base = results[cc].table.aggregate("p95", max_size=max_size)
        if base and fncc:
            out[cc] = 100.0 * (base - fncc) / base
    return out


def main(jobs: int = 1, seed: int = 1, backend: str = "packet") -> None:
    results = run_fig15(seed=seed, jobs=jobs, backend=backend)
    for col in PERCENTILE_COLUMNS:
        print(format_panel(results, col, f"\nFig 15 ({col}) — FB_Hadoop @50% load, FCT slowdown"))
    completed = {cc: r.completed() for cc, r in results.items()}
    print(f"\ncompleted flows: {completed}")
    red = short_flow_p95_reduction(results)
    for cc, pct in red.items():
        print(f"FNCC p95 slowdown reduction vs {cc} (flows < 100KB): {pct:.1f}%")


if __name__ == "__main__":  # pragma: no cover
    main()
