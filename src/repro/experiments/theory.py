"""§5.4.1 theory vs. simulation: notification latency per congestion hop.

The closed-form model (:mod:`repro.analysis.notification`) predicts how
much earlier FNCC's sender hears about congestion than HPCC's, per hop:
largest for first-hop congestion, smallest for last-hop.  This experiment
measures the same quantity in the packet simulator — the gap between the
two schemes' response times in the Fig. 11 scenarios — and prints both.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.notification import NotificationModel
from repro.experiments.fig13_congestion_location import run_location
from repro.topo.parkinglot import LOCATIONS
from repro.units import to_us, us

HOP_OF_LOCATION = {"first": 1, "middle": 2, "last": 3}


def measured_response_gap_us(
    location: str,
    duration_us: float = 500.0,
    frac: float = 0.8,
    seed: int = 1,
    lhcs: bool = True,
) -> Optional[float]:
    """HPCC response time minus FNCC response time for flow0 after the join
    (positive = FNCC heard about it earlier).  ``lhcs=False`` isolates the
    pure notification-latency effect on the last hop (LHCS otherwise adds
    its own acceleration on top of the model's prediction)."""
    fncc = run_location(
        "fncc", location, duration_us=duration_us, seed=seed, lhcs_enabled=lhcs
    )
    hpcc = run_location("hpcc", location, duration_us=duration_us, seed=seed)
    threshold = frac * fncc.link_rate_gbps
    t_f = fncc.rates[0].first_time_below(threshold, after_ps=us(301))
    t_h = hpcc.rates[0].first_time_below(threshold, after_ps=us(301))
    if t_f < 0 or t_h < 0:
        return None
    return to_us(t_h - t_f)


def run_theory(duration_us: float = 500.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    model = NotificationModel(n_switches=3)
    out: Dict[str, Dict[str, float]] = {}
    for loc in LOCATIONS:
        hop = HOP_OF_LOCATION[loc]
        # LHCS off: isolate the pure notification-latency effect the model
        # describes (LHCS adds its own last-hop acceleration on top).
        gap = measured_response_gap_us(
            loc, duration_us=duration_us, seed=seed, lhcs=False
        )
        out[loc] = {
            "hop": hop,
            "theory_gain_us": model.gain_ps(hop) / 1e6,
            "theory_hpcc_us": model.hpcc_delay_ps(hop) / 1e6,
            "theory_fncc_us": model.fncc_delay_ps(hop) / 1e6,
            "measured_gap_us": gap if gap is not None else float("nan"),
        }
        if loc == "last":
            g = measured_response_gap_us(
                loc, duration_us=duration_us, seed=seed, lhcs=True
            )
            out[loc]["measured_gap_with_lhcs_us"] = (
                g if g is not None else float("nan")
            )
    return out


def main() -> None:
    rows = run_theory()
    print("§5.4.1 — notification-latency theory vs measured response gap")
    print(f"{'location':>8} {'hop':>4} {'HPCC(us)':>9} {'FNCC(us)':>9} {'gain(us)':>9} {'measured(us)':>13}")
    for loc, r in rows.items():
        print(
            f"{loc:>8} {r['hop']:>4} {r['theory_hpcc_us']:9.2f} "
            f"{r['theory_fncc_us']:9.2f} {r['theory_gain_us']:9.2f} "
            f"{r['measured_gap_us']:13.2f}"
        )
    lhcs_gap = rows["last"].get("measured_gap_with_lhcs_us")
    if lhcs_gap is not None:
        print(
            f"last hop with LHCS enabled: measured gap {lhcs_gap:.2f} us — "
            "larger than the pure-notification prediction, which is LHCS "
            "doing exactly its job (Alg. 2 compensates the smallest gain)"
        )
    print("theory: gain shrinks toward the last hop — hence LHCS (Alg. 2)")


if __name__ == "__main__":  # pragma: no cover
    main()
