"""Figs. 13a-d — congestion at the first, middle, or last hop (Fig. 11
topologies), HPCC vs FNCC, with the LHCS ablation on the last hop.

Paper numbers (queue-depth reduction of FNCC vs HPCC): 37.5% first hop,
29.5% middle hop, 8.4% last hop without LHCS, 38.5% last hop with LHCS —
while keeping utilization at least as high.  Fig. 13d additionally shows
the last-hop flow rates snapping to ``fair * beta`` under LHCS.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import CcEnv, MicrobenchResult, build_cc_env, launch_flows
from repro.metrics.monitors import QueueSampler, RateSampler, UtilizationSampler, pause_frame_count
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.parkinglot import LOCATIONS, congestion_at
from repro.traffic.generator import staggered_elephants
from repro.units import KB, MB, us


def run_location(
    cc: str,
    location: str,
    link_rate_gbps: float = 100.0,
    flow_size_bytes: int = 20 * MB,
    stagger_us: float = 300.0,
    duration_us: float = 800.0,
    seed: int = 1,
    **cc_params,
) -> MicrobenchResult:
    """One cell of Fig. 13a-c: two elephants colliding at ``location``."""
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    topo = congestion_at(
        sim,
        location,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
    )
    env.post_install(topo)
    receiver = topo.node("receiver0")
    senders = [topo.node("sender0"), topo.node("sender1")]
    flows = staggered_elephants(
        sender_ids=[s.host_id for s in senders],
        receiver_id=receiver.host_id,
        size_bytes=flow_size_bytes,
        stagger_ps=us(stagger_us),
    )
    qps = launch_flows(topo, flows, env)

    port = topo.switches[topo.congested_switch_index].ports[topo.congested_port_index]
    qmon = QueueSampler(sim, port, interval_ps=us(1))
    umon = UtilizationSampler(sim, port, interval_ps=us(5))
    rmons = {fid: RateSampler(sim, qp, interval_ps=us(1)) for fid, qp in qps.items()}
    sim.run(until=us(duration_us))
    return MicrobenchResult(
        cc=cc,
        link_rate_gbps=link_rate_gbps,
        queue=qmon.series,
        rates={fid: m.series for fid, m in rmons.items()},
        utilization=umon.series,
        pause_frames=pause_frame_count(topo.switches),
        topo=topo,
        sim=sim,
    )


def run_fig13(
    duration_us: float = 800.0, seed: int = 1
) -> Dict[str, Dict[str, MicrobenchResult]]:
    """All Fig. 13a-c cells.  Keys: location -> scheme, where scheme is
    'hpcc', 'fncc' (LHCS on) or 'fncc_nolhcs' (last hop only)."""
    out: Dict[str, Dict[str, MicrobenchResult]] = {}
    for loc in LOCATIONS:
        out[loc] = {
            "hpcc": run_location("hpcc", loc, duration_us=duration_us, seed=seed),
            "fncc": run_location("fncc", loc, duration_us=duration_us, seed=seed),
        }
        if loc == "last":
            out[loc]["fncc_nolhcs"] = run_location(
                "fncc", loc, duration_us=duration_us, seed=seed, lhcs_enabled=False
            )
    return out


def queue_reduction_pct(hpcc: MicrobenchResult, fncc: MicrobenchResult) -> float:
    """Peak-queue reduction of FNCC relative to HPCC (the Fig. 13 metric)."""
    base = hpcc.peak_queue_bytes
    if base <= 0:
        return 0.0
    return 100.0 * (base - fncc.peak_queue_bytes) / base


def main() -> None:
    results = run_fig13()
    print("Fig 13a-d — queue depth by congestion location (KB) and FNCC reduction")
    for loc, cells in results.items():
        hp = cells["hpcc"]
        fn = cells["fncc"]
        line = (
            f"{loc:>7}: HPCC={hp.peak_queue_bytes / KB:7.1f}  "
            f"FNCC={fn.peak_queue_bytes / KB:7.1f}  "
            f"reduction={queue_reduction_pct(hp, fn):5.1f}%  "
            f"util HPCC={hp.utilization.mean_after(us(100)):.3f} "
            f"FNCC={fn.utilization.mean_after(us(100)):.3f}"
        )
        if "fncc_nolhcs" in cells:
            nl = cells["fncc_nolhcs"]
            line += (
                f"  [no-LHCS peak={nl.peak_queue_bytes / KB:7.1f} "
                f"reduction={queue_reduction_pct(hp, nl):5.1f}%]"
            )
        print(line)


if __name__ == "__main__":  # pragma: no cover
    main()
