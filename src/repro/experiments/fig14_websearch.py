"""Fig. 14 — FCT slowdown (average / median / 95th / 99th) under the
WebSearch distribution at 50% load on a fat-tree, for DCQCN, HPCC, FNCC.

Paper headline for this workload: for flows > 1 MB, FNCC cuts the *median*
slowdown by ~12.4% vs HPCC and ~42.8% vs DCQCN; FNCC has the lowest tail
latency throughout.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, Sequence

from repro.experiments.fct_experiment import (
    FctSummary,
    compare_ccs_sweep,
    format_panel,
    run_fct_summary,
)
from repro.metrics.fct import PERCENTILE_COLUMNS

CCS = ("dcqcn", "hpcc", "fncc")


def run_fig14(
    ccs: Sequence[str] = CCS,
    k: int = 4,
    load: float = 0.5,
    n_flows: int = 200,
    scale: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    backend: str = "packet",
    **kwargs,
) -> Dict[str, FctSummary]:
    """Per-CC runs are independent, so they fan out over ``jobs`` worker
    processes (``jobs=1`` = in-process; identical results either way).
    ``backend`` selects the simulation engine per cell (packet / flow /
    hybrid — see DESIGN.md §6; hybrid fidelity on this scenario is gated
    by ``repro.hybrid.validate``)."""
    return compare_ccs_sweep(
        ccs,
        workload="websearch",
        k=k,
        load=load,
        n_flows=n_flows,
        scale=scale,
        seed=seed,
        jobs=jobs,
        backend=backend,
        **kwargs,
    )


def long_flow_median_reduction(results: Dict[str, FctSummary], min_size_scaled: int) -> Dict[str, float]:
    """FNCC's median-slowdown reduction (%) vs each baseline for flows
    larger than ``min_size_scaled`` (1 MB x scale in the paper)."""
    fncc = results["fncc"].table.aggregate("median", min_size=min_size_scaled)
    out = {}
    for cc in results:
        if cc == "fncc":
            continue
        base = results[cc].table.aggregate("median", min_size=min_size_scaled)
        if base and fncc:
            out[cc] = 100.0 * (base - fncc) / base
    return out


def _run_fig14_observed(
    ccs: Sequence[str],
    seed: int,
    backend: str,
    n_flows: int,
    trace: Optional[str],
    progress: bool,
) -> Dict[str, FctSummary]:
    """The telemetry path: one per-run :class:`~repro.obs.RunObservability`
    bundle per CC cell, run in-process (trace hooks and live progress
    cannot cross a process pool), merged into one Chrome trace file — one
    trace *process* per cell — with the merged registry snapshot riding
    in ``otherData``."""
    from repro.obs import (
        EventTracer,
        MetricsRegistry,
        ProgressReporter,
        RunObservability,
        export_chrome_trace,
        merge_snapshots,
    )

    results: Dict[str, FctSummary] = {}
    bundles = []
    for cc in ccs:
        obs = RunObservability(
            registry=MetricsRegistry(),
            tracer=EventTracer() if trace else None,
            progress=ProgressReporter(label=cc) if progress else None,
        )
        results[cc] = run_fct_summary(
            cc,
            seed=seed,
            backend=backend,
            obs=obs,
            workload="websearch",
            k=4,
            load=0.5,
            n_flows=n_flows,
            scale=0.1,
        )
        obs.detach()
        bundles.append((cc, obs))
    if trace:
        export_chrome_trace(
            trace,
            [(cc, obs.tracer) for cc, obs in bundles],
            registry=merge_snapshots(obs.snapshot() for _, obs in bundles),
        )
        print(f"trace written to {trace}", file=sys.stderr)
    return results


def main(
    jobs: int = 1,
    seed: int = 1,
    backend: str = "packet",
    quick: bool = False,
    trace: Optional[str] = None,
    progress: bool = False,
) -> None:
    n_flows = 60 if quick else 200
    if trace or progress:
        if jobs != 1:
            print(
                "note: --trace/--progress run in-process; ignoring --jobs",
                file=sys.stderr,
            )
        results = _run_fig14_observed(
            CCS, seed=seed, backend=backend, n_flows=n_flows,
            trace=trace, progress=progress,
        )
    else:
        results = run_fig14(seed=seed, jobs=jobs, backend=backend, n_flows=n_flows)
    for col in PERCENTILE_COLUMNS:
        print(format_panel(results, col, f"\nFig 14 ({col}) — WebSearch @50% load, FCT slowdown"))
    completed = {cc: r.completed() for cc, r in results.items()}
    print(f"\ncompleted flows: {completed}")
    scale = 0.1
    red = long_flow_median_reduction(results, round(1_000_000 * scale))
    for cc, pct in red.items():
        print(f"FNCC median slowdown reduction vs {cc} (flows > 1MB-equivalent): {pct:.1f}%")


if __name__ == "__main__":  # pragma: no cover
    main()
