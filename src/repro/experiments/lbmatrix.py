"""The CC × LB evaluation matrix (``fncc-exp lbmatrix``).

Beyond-the-paper scenario diversity: the paper evaluates its CC schemes on
a single multipath story (symmetric per-flow ECMP); this experiment crosses
every load-balancing strategy in :mod:`repro.lb` — ECMP, per-packet spray,
flowlet switching, ConWeave-lite rerouting — with DCQCN / HPCC / FNCC on
two fabrics (k=4 fat-tree, Jellyfish) under two traffic patterns
(permutation elephants, WebSearch Poisson at 50% load).

Everything is deterministic in the seed: same seed → byte-identical FCT
lists for every cell (pinned by ``tests/experiments/test_lbmatrix.py``).

On the fat-tree permutation scenario, spray and flowlet are expected to
beat per-flow ECMP on mean FCT: ECMP hash collisions put multiple
elephants on one uplink while spray/flowlet use the full path set.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.lb import LbConfig
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish
from repro.traffic.distributions import websearch_cdf
from repro.traffic.generator import PoissonWorkload, permutation_flows
from repro.units import KB, MS, us

LBS = ("ecmp", "spray", "flowlet", "conweave")
CCS = ("dcqcn", "hpcc", "fncc")
TOPOS = ("fattree", "jellyfish")
WORKLOADS = ("permutation", "websearch")

#: A cell key: (topo, workload, lb, cc).
CellKey = Tuple[str, str, str, str]


class LbCell:
    """One matrix cell's outcome."""

    def __init__(
        self, key: CellKey, collector: FctCollector, n_flows: int, sim: Simulator
    ) -> None:
        self.key = key
        self.collector = collector
        self.n_flows = n_flows
        self.sim = sim

    @property
    def completed(self) -> int:
        return self.collector.completed()

    @property
    def mean_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.mean(fcts)) / us(1) if fcts else float("nan")

    @property
    def p99_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.percentile(fcts, 99)) / us(1) if fcts else float("nan")

    @property
    def mean_slowdown(self) -> float:
        s = self.collector.slowdowns()
        return float(s.mean()) if len(s) else float("nan")

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """(flow_id, fct_ps) pairs, sorted — the determinism witness."""
        return tuple(
            sorted((r.flow.flow_id, r.fct_ps) for r in self.collector.records)
        )


def make_lb_config(lb: str) -> LbConfig:
    """Matrix-default knobs per strategy (explicit so cells are pinned even
    if library defaults move)."""
    if lb == "flowlet":
        return LbConfig("flowlet", gap_ps=us(15))
    if lb == "conweave":
        return LbConfig("conweave")
    if lb == "spray":
        return LbConfig("spray", mode="round_robin")
    return LbConfig("ecmp", symmetric=True)


def run_lb_cell(
    lb: str,
    cc: str,
    topo_name: str = "fattree",
    workload: str = "permutation",
    seed: int = 1,
    k: int = 4,
    n_switches: int = 8,
    switch_degree: int = 4,
    hosts_per_switch: int = 2,
    link_rate_gbps: float = 100.0,
    perm_flow_bytes: int = 300 * KB,
    n_flows: int = 100,
    load: float = 0.5,
    scale: float = 0.1,
    max_horizon_ms: float = 20.0,
    **cc_params,
) -> LbCell:
    """Run one (topo, workload, lb, cc) cell and collect FCTs."""
    if topo_name not in TOPOS:
        raise ValueError(f"topo must be one of {TOPOS}")
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {WORKLOADS}")
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    link = LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5))
    lb_config = make_lb_config(lb)
    if topo_name == "fattree":
        topo = fattree(
            sim,
            k=k,
            link=link,
            switch_config=env.switch_config,
            seeds=seeds,
            cnp_enabled=env.cnp_enabled,
            lb=lb_config,
        )
    else:
        topo = jellyfish(
            sim,
            n_switches=n_switches,
            switch_degree=switch_degree,
            hosts_per_switch=hosts_per_switch,
            link=link,
            switch_config=env.switch_config,
            seeds=seeds,
            cnp_enabled=env.cnp_enabled,
            lb=lb_config,
        )
    env.post_install(topo)
    collector = FctCollector(topo)

    if workload == "permutation":
        flows = permutation_flows(
            [h.host_id for h in topo.hosts], perm_flow_bytes, seeds
        )
    else:
        flows = PoissonWorkload(
            n_hosts=len(topo.hosts),
            host_rate_gbps=link_rate_gbps,
            cdf=websearch_cdf(scale=scale),
            load=load,
            seeds=seeds,
        ).generate(n_flows)
    launch_flows(topo, flows, env)

    total = len(flows)
    horizon = round(max_horizon_ms * MS)
    chunk = MS // 2
    t = 0
    while collector.completed() < total and t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        if sim.peek() is None:
            break
    return LbCell((topo_name, workload, lb, cc), collector, total, sim)


def run_lbmatrix(
    lbs: Sequence[str] = LBS,
    ccs: Sequence[str] = CCS,
    topos: Sequence[str] = TOPOS,
    workloads: Sequence[str] = WORKLOADS,
    seed: int = 1,
    **kwargs,
) -> Dict[CellKey, LbCell]:
    """The full (or any sliced) CC × LB × fabric × traffic sweep."""
    out: Dict[CellKey, LbCell] = {}
    for topo_name in topos:
        for workload in workloads:
            for lb in lbs:
                for cc in ccs:
                    cell = run_lb_cell(
                        lb,
                        cc,
                        topo_name=topo_name,
                        workload=workload,
                        seed=seed,
                        **kwargs,
                    )
                    out[cell.key] = cell
    return out


def format_matrix(
    cells: Dict[CellKey, LbCell], column: str = "mean_fct_us"
) -> str:
    """One block per (topo, workload): LB rows × CC columns."""
    lines = []
    groups: Dict[Tuple[str, str], Dict[Tuple[str, str], LbCell]] = {}
    for (topo_name, workload, lb, cc), cell in cells.items():
        groups.setdefault((topo_name, workload), {})[(lb, cc)] = cell
    for (topo_name, workload), block in groups.items():
        ccs = sorted({cc for _, cc in block})
        lbs = sorted({lb for lb, _ in block})
        lines.append(f"\n{topo_name} / {workload} — {column}")
        lines.append(f"{'lb':>10} " + " ".join(f"{cc:>10}" for cc in ccs))
        for lb in lbs:
            row = []
            for cc in ccs:
                cell = block.get((lb, cc))
                v = getattr(cell, column) if cell else None
                row.append(f"{v:10.1f}" if v is not None else f"{'-':>10}")
            lines.append(f"{lb:>10} " + " ".join(row))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    cells = run_lbmatrix()
    print("CC × LB matrix (FCTs in µs; lower is better)")
    print(format_matrix(cells, "mean_fct_us"))
    print(format_matrix(cells, "p99_fct_us"))
    incomplete = {
        k: (c.completed, c.n_flows)
        for k, c in cells.items()
        if c.completed < c.n_flows
    }
    if incomplete:
        print("\ncells with stragglers (completed/total):")
        for k, (done, total) in incomplete.items():
            print(f"  {k}: {done}/{total}")
    perm = {
        k: c for k, c in cells.items() if k[0] == "fattree" and k[1] == "permutation"
    }
    if perm:
        print("\nfat-tree permutation, mean FCT vs ECMP (per CC):")
        for cc in sorted({k[3] for k in perm}):
            base = perm.get(("fattree", "permutation", "ecmp", cc))
            for lb in sorted({k[2] for k in perm} - {"ecmp"}):
                cell = perm.get(("fattree", "permutation", lb, cc))
                if base and cell:
                    gain = 100.0 * (base.mean_fct_us - cell.mean_fct_us) / base.mean_fct_us
                    print(f"  {cc:>6} {lb:>9}: {gain:+.1f}%")


if __name__ == "__main__":  # pragma: no cover
    main()
