"""The CC × LB evaluation matrix (``fncc-exp lbmatrix``).

Beyond-the-paper scenario diversity: the paper evaluates its CC schemes on
a single multipath story (symmetric per-flow ECMP); this experiment crosses
every load-balancing strategy in :mod:`repro.lb` — ECMP, per-packet spray,
flowlet switching, ConWeave-lite rerouting — with DCQCN / HPCC / FNCC on
two fabrics (k=4 fat-tree, Jellyfish) under two traffic patterns
(permutation elephants, WebSearch Poisson at 50% load).

Everything is deterministic in the seed: same seed → byte-identical FCT
lists for every cell (pinned by ``tests/experiments/test_lbmatrix.py``).

On the fat-tree permutation scenario, spray and flowlet are expected to
beat per-flow ECMP on mean FCT: ECMP hash collisions put multiple
elephants on one uplink while spray/flowlet use the full path set.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec import RunSpec, SweepExecutor
from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.lb import LbConfig
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish
from repro.traffic.distributions import websearch_cdf
from repro.traffic.generator import PoissonWorkload, permutation_flows
from repro.units import KB, MS, us

LBS = ("ecmp", "spray", "flowlet", "conweave")
CCS = ("dcqcn", "hpcc", "fncc")
TOPOS = ("fattree", "jellyfish")
WORKLOADS = ("permutation", "websearch")

#: A cell key: (topo, workload, lb, cc).
CellKey = Tuple[str, str, str, str]


class LbCell:
    """One matrix cell's outcome."""

    def __init__(
        self,
        key: CellKey,
        collector: FctCollector,
        n_flows: int,
        sim: Simulator,
        topo=None,
    ) -> None:
        self.key = key
        self.collector = collector
        self.n_flows = n_flows
        self.sim = sim
        # The live fabric (per-port tx counters feed the frame_hops
        # metric); None for legacy callers.
        self.topo = topo

    @property
    def completed(self) -> int:
        return self.collector.completed()

    @property
    def mean_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.mean(fcts)) / us(1) if fcts else float("nan")

    @property
    def p99_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.percentile(fcts, 99)) / us(1) if fcts else float("nan")

    @property
    def mean_slowdown(self) -> float:
        s = self.collector.slowdowns()
        return float(s.mean()) if len(s) else float("nan")

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """(flow_id, fct_ps) pairs, sorted — the determinism witness."""
        return tuple(
            sorted((r.flow.flow_id, r.fct_ps) for r in self.collector.records)
        )


class LbCellSummary:
    """A portable :class:`LbCell`: the same statistics surface, computed
    eagerly so the object crosses process boundaries (no simulator, no
    collector, no live flows).  This is what sweep workers return."""

    def __init__(
        self,
        key: CellKey,
        seed: int,
        n_flows: int,
        completed: int,
        mean_fct_us: float,
        p99_fct_us: float,
        mean_slowdown: float,
        fingerprint: Tuple[Tuple[int, int], ...],
        events_dispatched: int,
        frame_hops: int = 0,
    ) -> None:
        self.key = key
        self.seed = seed
        self.n_flows = n_flows
        self.completed = completed
        self.mean_fct_us = mean_fct_us
        self.p99_fct_us = p99_fct_us
        self.mean_slowdown = mean_slowdown
        self._fingerprint = fingerprint
        self.events_dispatched = events_dispatched
        # Frames delivered across any link (in-worker sum of per-port tx
        # counters) — the perf harness's simulated-work unit.
        self.frame_hops = frame_hops

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        return self._fingerprint


def summarize_lb_cell(cell: LbCell, seed: int) -> LbCellSummary:
    from repro.metrics.monitors import topo_frame_hops

    topo = cell.topo
    return LbCellSummary(
        key=cell.key,
        seed=seed,
        n_flows=cell.n_flows,
        completed=cell.completed,
        mean_fct_us=cell.mean_fct_us,
        p99_fct_us=cell.p99_fct_us,
        mean_slowdown=cell.mean_slowdown,
        fingerprint=cell.fct_fingerprint(),
        events_dispatched=cell.sim.events_dispatched,
        frame_hops=topo_frame_hops(topo) if topo is not None else 0,
    )


def run_lb_cell_summary(seed: int = 1, **kwargs) -> LbCellSummary:
    """Sweep-spec target: one cell, returned as a portable summary.

    Module-level and data-only by design — this is the function
    :func:`sweep_specs` names, executed either in-process (``jobs=1``) or
    in a spawned worker (``jobs>1``) with byte-identical results.
    """
    return summarize_lb_cell(run_lb_cell(seed=seed, **kwargs), seed)


def make_lb_config(lb: str) -> LbConfig:
    """Matrix-default knobs per strategy (explicit so cells are pinned even
    if library defaults move)."""
    if lb == "flowlet":
        return LbConfig("flowlet", gap_ps=us(15))
    if lb == "conweave":
        return LbConfig("conweave")
    if lb == "spray":
        return LbConfig("spray", mode="round_robin")
    return LbConfig("ecmp", symmetric=True)


def run_lb_cell(
    lb: str,
    cc: str,
    topo_name: str = "fattree",
    workload: str = "permutation",
    seed: int = 1,
    k: int = 4,
    n_switches: int = 8,
    switch_degree: int = 4,
    hosts_per_switch: int = 2,
    link_rate_gbps: float = 100.0,
    perm_flow_bytes: int = 300 * KB,
    n_flows: int = 100,
    load: float = 0.5,
    scale: float = 0.1,
    max_horizon_ms: float = 20.0,
    obs=None,
    **cc_params,
) -> LbCell:
    """Run one (topo, workload, lb, cc) cell and collect FCTs.

    ``obs`` optionally attaches a :class:`repro.obs.RunObservability`
    bundle to the cell (registry reads the LB reroute/probe counters at
    snapshot time; the ``lb`` trace category hooks the reroute callback) —
    in-process callers only, it is not picklable."""
    if topo_name not in TOPOS:
        raise ValueError(f"topo must be one of {TOPOS}")
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {WORKLOADS}")
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    link = LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5))
    lb_config = make_lb_config(lb)
    if topo_name == "fattree":
        topo = fattree(
            sim,
            k=k,
            link=link,
            switch_config=env.switch_config,
            seeds=seeds,
            cnp_enabled=env.cnp_enabled,
            lb=lb_config,
        )
    else:
        topo = jellyfish(
            sim,
            n_switches=n_switches,
            switch_degree=switch_degree,
            hosts_per_switch=hosts_per_switch,
            link=link,
            switch_config=env.switch_config,
            seeds=seeds,
            cnp_enabled=env.cnp_enabled,
            lb=lb_config,
        )
    env.post_install(topo)
    collector = FctCollector(topo)

    if workload == "permutation":
        flows = permutation_flows(
            [h.host_id for h in topo.hosts], perm_flow_bytes, seeds
        )
    else:
        flows = PoissonWorkload(
            n_hosts=len(topo.hosts),
            host_rate_gbps=link_rate_gbps,
            cdf=websearch_cdf(scale=scale),
            load=load,
            seeds=seeds,
        ).generate(n_flows)
    if obs is not None:
        obs.attach(sim, topo, collector=collector)

    total = len(flows)
    horizon = round(max_horizon_ms * MS)
    chunk = MS // 2
    with obs.guard(sim=sim, topo=topo) if obs is not None else nullcontext():
        launch_flows(topo, flows, env)
        t = 0
        while collector.completed() < total and t < horizon:
            t = min(t + chunk, horizon)
            sim.run(until=t)
            if obs is not None and obs.progress is not None:
                obs.progress.tick(
                    sim, completed=collector.completed(), total=total,
                    horizon_ps=horizon,
                )
            if sim.peek() is None:
                break
    return LbCell((topo_name, workload, lb, cc), collector, total, sim, topo=topo)


def sweep_specs(
    lbs: Sequence[str] = LBS,
    ccs: Sequence[str] = CCS,
    topos: Sequence[str] = TOPOS,
    workloads: Sequence[str] = WORKLOADS,
    seeds: Sequence[int] = (1,),
    **kwargs,
) -> List[RunSpec]:
    """Emit one :class:`~repro.exec.RunSpec` per matrix cell × seed.

    Spec keys are ``(topo, workload, lb, cc, seed)`` in deterministic
    nesting order (seed outermost), so serial and pooled executions reduce
    to the same sequence.
    """
    specs: List[RunSpec] = []
    for seed in seeds:
        for topo_name in topos:
            for workload in workloads:
                for lb in lbs:
                    for cc in ccs:
                        specs.append(
                            RunSpec(
                                fn="repro.experiments.lbmatrix:run_lb_cell_summary",
                                kwargs=dict(
                                    lb=lb,
                                    cc=cc,
                                    topo_name=topo_name,
                                    workload=workload,
                                    **kwargs,
                                ),
                                key=(topo_name, workload, lb, cc, seed),
                                seed=seed,
                            )
                        )
    return specs


def run_lbmatrix(
    lbs: Sequence[str] = LBS,
    ccs: Sequence[str] = CCS,
    topos: Sequence[str] = TOPOS,
    workloads: Sequence[str] = WORKLOADS,
    seed: int = 1,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    **kwargs,
) -> Dict[CellKey, LbCellSummary]:
    """The full (or any sliced) CC × LB × fabric × traffic sweep.

    Cells are independent runs, so they fan out over ``jobs`` worker
    processes; results reduce in matrix order either way, and the FCT
    fingerprints are byte-identical for any ``jobs`` (gated by
    ``tests/exec/test_parallel_determinism.py``).
    """
    specs = sweep_specs(
        lbs=lbs, ccs=ccs, topos=topos, workloads=workloads, seeds=(seed,), **kwargs
    )
    executor = executor or SweepExecutor(jobs=jobs)
    out: Dict[CellKey, LbCellSummary] = {}
    for result in executor.map(specs):
        out[result.value.key] = result.value
    return out


def format_matrix(cells: Dict[CellKey, object], column: str = "mean_fct_us") -> str:
    """One block per (topo, workload): LB rows × CC columns (cells may be
    :class:`LbCell` or :class:`LbCellSummary` — both expose the columns)."""
    lines = []
    groups: Dict[Tuple[str, str], Dict[Tuple[str, str], object]] = {}
    for (topo_name, workload, lb, cc), cell in cells.items():
        groups.setdefault((topo_name, workload), {})[(lb, cc)] = cell
    for (topo_name, workload), block in groups.items():
        ccs = sorted({cc for _, cc in block})
        lbs = sorted({lb for lb, _ in block})
        lines.append(f"\n{topo_name} / {workload} — {column}")
        lines.append(f"{'lb':>10} " + " ".join(f"{cc:>10}" for cc in ccs))
        for lb in lbs:
            row = []
            for cc in ccs:
                cell = block.get((lb, cc))
                v = getattr(cell, column) if cell else None
                row.append(f"{v:10.1f}" if v is not None else f"{'-':>10}")
            lines.append(f"{lb:>10} " + " ".join(row))
    return "\n".join(lines)


#: The reduced slice ``fncc-exp lbmatrix --quick`` (and CI) runs: the
#: pool path end to end — spawn, pickling, ordered reduce — in seconds.
QUICK_SLICE = dict(
    lbs=("ecmp", "spray"),
    ccs=("fncc",),
    topos=("fattree",),
    workloads=("permutation",),
)


def main(jobs: int = 1, seed: int = 1, quick: bool = False) -> None:
    slice_kw = QUICK_SLICE if quick else {}
    cells = run_lbmatrix(seed=seed, jobs=jobs, **slice_kw)
    print("CC × LB matrix (FCTs in µs; lower is better)")
    print(format_matrix(cells, "mean_fct_us"))
    print(format_matrix(cells, "p99_fct_us"))
    incomplete = {
        k: (c.completed, c.n_flows)
        for k, c in cells.items()
        if c.completed < c.n_flows
    }
    if incomplete:
        print("\ncells with stragglers (completed/total):")
        for k, (done, total) in incomplete.items():
            print(f"  {k}: {done}/{total}")
    perm = {
        k: c for k, c in cells.items() if k[0] == "fattree" and k[1] == "permutation"
    }
    if perm:
        print("\nfat-tree permutation, mean FCT vs ECMP (per CC):")
        for cc in sorted({k[3] for k in perm}):
            base = perm.get(("fattree", "permutation", "ecmp", cc))
            for lb in sorted({k[2] for k in perm} - {"ecmp"}):
                cell = perm.get(("fattree", "permutation", lb, cc))
                if base and cell:
                    gain = 100.0 * (base.mean_fct_us - cell.mean_fct_us) / base.mean_fct_us
                    print(f"  {cc:>6} {lb:>9}: {gain:+.1f}%")


if __name__ == "__main__":  # pragma: no cover
    main()
