"""The fault-profile × CC × LB robustness matrix (``fncc-exp faultmatrix``).

DESIGN.md §10: every cell runs the fat-tree permutation scenario with a
:class:`repro.faults.FaultPlan` armed against it — no faults, a hard
agg↔core link failure, a flap train, or a gray-loss window — crossed with
the CC schemes and load-balancing strategies.  The questions each column
answers:

* **Recovery** — with per-flow ECMP a downed core link blackholes the
  flows whose hash pinned them to it (the core's downward path into a pod
  is single-homed); they must degrade to the flow-failed terminal state,
  never hang.  Adaptive strategies (flowlet, conweave) reroute around the
  failure and finish.
* **Determinism** — identical seed + identical plan reproduce identical
  FCT fingerprints for every cell, serial or pooled (the plan is
  picklable; all draws come from the topology seed factory).

Every cell reports ``completed / failed / hung``; ``hung`` must be zero —
that is the graceful-degradation acceptance bar, asserted by
``tests/faults`` and checked in CI via ``--quick``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec import RunSpec, SweepExecutor
from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.experiments.lbmatrix import make_lb_config
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.traffic.generator import permutation_flows
from repro.transport.sender import TransportConfig
from repro.units import KB, MS, us

PROFILES = ("none", "linkdown", "flap", "grayloss", "switchfail")
LBS = ("ecmp", "flowlet", "conweave")
CCS = ("dcqcn", "hpcc", "fncc")

#: A cell key: (profile, lb, cc).
CellKey = Tuple[str, str, str]


def build_fault_profile(profile: str, topo, active_ps: int) -> FaultPlan:
    """Expand a profile name into a concrete :class:`FaultPlan` against a
    fat-tree: the victim is the first agg↔core uplink of pod 0 (the
    ConWeave-style asymmetry scenario).  ``active_ps`` is the expected
    busy period of the workload — fault timing scales with it (not the
    kill-horizon) so the fault always lands mid-transfer."""
    if profile == "none":
        return FaultPlan.noop()
    victim_agg = "agg_0_0"
    victim_core = next(
        n for n in topo.graph.neighbors(victim_agg) if n.startswith("core")
    )
    t10 = active_ps // 10
    plan = FaultPlan(f"profile-{profile}")
    if profile == "linkdown":
        # Hard failure at 10% of the horizon, never restored.
        plan.link_down(victim_agg, victim_core, at_ps=t10)
    elif profile == "flap":
        plan.link_flap(
            victim_agg,
            victim_core,
            start_ps=t10,
            flaps=3,
            down_ps=t10,
            up_ps=t10,
            jitter_ps=t10 // 4,
        )
    elif profile == "grayloss":
        # 2% unidirectional silent loss on the uplink for 40% of the run.
        plan.gray_loss(
            victim_agg, victim_core, start_ps=t10, end_ps=5 * t10, prob=0.02
        )
    elif profile == "switchfail":
        # Fail-stop the victim core: flows pinned through it partition and
        # must reach flow-failed.
        plan.switch_fail(victim_core, at_ps=t10)
    else:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    return plan


def count_failed(topo, completed_ids=()) -> int:
    """Flows that reached the flow-failed terminal state (senders with
    ``failed`` set — see repro.transport.sender) and did **not** complete.
    The exclusion matters: a sender can exhaust its RTO budget spuriously
    under extreme congestion while its retransmissions still land, so the
    receiver completes the flow anyway — that flow counts as completed."""
    done = frozenset(completed_ids)
    n = 0
    for host in topo.hosts:
        for qp in getattr(host, "senders", {}).values():
            if getattr(qp, "failed", False) and qp.flow.flow_id not in done:
                n += 1
    return n


def _completed_ids(collector: FctCollector) -> frozenset:
    return frozenset(r.flow.flow_id for r in collector.records)


class FaultCell:
    """One matrix cell's outcome, with the fault/recovery tallies."""

    def __init__(
        self,
        key: CellKey,
        collector: FctCollector,
        n_flows: int,
        failed: int,
        fault_counters: Dict[str, int],
        sim: Simulator,
        topo=None,
    ) -> None:
        self.key = key
        self.collector = collector
        self.n_flows = n_flows
        self.failed = failed
        self.fault_counters = fault_counters
        self.sim = sim
        self.topo = topo

    @property
    def completed(self) -> int:
        return self.collector.completed()

    @property
    def hung(self) -> int:
        """Flows neither completed nor failed at end of run — the
        graceful-degradation criterion demands zero."""
        return self.n_flows - self.completed - self.failed

    @property
    def mean_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.mean(fcts)) / us(1) if fcts else float("nan")

    @property
    def p99_fct_us(self) -> float:
        fcts = [r.fct_ps for r in self.collector.records]
        return float(np.percentile(fcts, 99)) / us(1) if fcts else float("nan")

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """(flow_id, fct_ps) pairs, sorted — the determinism witness."""
        return tuple(
            sorted((r.flow.flow_id, r.fct_ps) for r in self.collector.records)
        )


class FaultCellSummary:
    """Portable :class:`FaultCell` (what sweep workers return)."""

    def __init__(
        self,
        key: CellKey,
        seed: int,
        n_flows: int,
        completed: int,
        failed: int,
        hung: int,
        mean_fct_us: float,
        p99_fct_us: float,
        fingerprint: Tuple[Tuple[int, int], ...],
        fault_counters: Dict[str, int],
        events_dispatched: int,
    ) -> None:
        self.key = key
        self.seed = seed
        self.n_flows = n_flows
        self.completed = completed
        self.failed = failed
        self.hung = hung
        self.mean_fct_us = mean_fct_us
        self.p99_fct_us = p99_fct_us
        self._fingerprint = fingerprint
        self.fault_counters = fault_counters
        self.events_dispatched = events_dispatched

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        return self._fingerprint


def summarize_fault_cell(cell: FaultCell, seed: int) -> FaultCellSummary:
    return FaultCellSummary(
        key=cell.key,
        seed=seed,
        n_flows=cell.n_flows,
        completed=cell.completed,
        failed=cell.failed,
        hung=cell.hung,
        mean_fct_us=cell.mean_fct_us,
        p99_fct_us=cell.p99_fct_us,
        fingerprint=cell.fct_fingerprint(),
        fault_counters=cell.fault_counters,
        events_dispatched=cell.sim.events_dispatched,
    )


def run_fault_cell_summary(seed: int = 1, **kwargs) -> FaultCellSummary:
    """Sweep-spec target (module-level, data-only arguments): one cell as
    a portable summary, byte-identical in-process or in a spawn worker."""
    return summarize_fault_cell(run_fault_cell(seed=seed, **kwargs), seed)


def run_fault_cell(
    profile: str,
    lb: str = "ecmp",
    cc: str = "fncc",
    seed: int = 1,
    k: int = 4,
    link_rate_gbps: float = 100.0,
    perm_flow_bytes: int = 300 * KB,
    max_horizon_ms: float = 20.0,
    retx_timeout_us: int = 300,
    retx_max_timeouts: int = 7,
    **cc_params,
) -> FaultCell:
    """Run one (profile, lb, cc) cell: fat-tree permutation traffic with
    the profile's fault plan armed and transport hardening on (RTO with
    capped exponential backoff; ``retx_max_timeouts`` → flow-failed)."""
    horizon = round(max_horizon_ms * MS)
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    transport = TransportConfig(
        retx_timeout_ps=us(retx_timeout_us),
        retx_backoff_cap=3,
        retx_max_timeouts=retx_max_timeouts,
    )
    topo = fattree(
        sim,
        k=k,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
        transport_config=transport,
        lb=make_lb_config(lb),
    )
    env.post_install(topo)
    collector = FctCollector(topo)
    # Expected busy period: ~3x the per-flow serialization time (the
    # permutation is full-bisection, so congestion stretches ideal FCT by
    # a small factor) — faults anchored here hit live traffic.
    active_ps = round(perm_flow_bytes * 8000 / link_rate_gbps) * 3
    plan = build_fault_profile(profile, topo, active_ps)
    injector = FaultInjector(plan).arm(sim, topo, seeds=seeds)

    flows = permutation_flows([h.host_id for h in topo.hosts], perm_flow_bytes, seeds)
    launch_flows(topo, flows, env)
    total = len(flows)
    chunk = MS // 2
    t = 0
    while (
        collector.completed() + count_failed(topo, _completed_ids(collector)) < total
        and t < horizon
    ):
        t = min(t + chunk, horizon)
        sim.run(until=t)
        if sim.peek() is None:
            break
    return FaultCell(
        (profile, lb, cc),
        collector,
        total,
        count_failed(topo, _completed_ids(collector)),
        dict(injector.counters),
        sim,
        topo=topo,
    )


def sweep_specs(
    profiles: Sequence[str] = PROFILES,
    lbs: Sequence[str] = LBS,
    ccs: Sequence[str] = CCS,
    seeds: Sequence[int] = (1,),
    **kwargs,
) -> List[RunSpec]:
    """One :class:`~repro.exec.RunSpec` per (profile, lb, cc) × seed, in
    deterministic nesting order so serial and pooled runs reduce alike."""
    specs: List[RunSpec] = []
    for seed in seeds:
        for profile in profiles:
            for lb in lbs:
                for cc in ccs:
                    specs.append(
                        RunSpec(
                            fn="repro.experiments.faultmatrix:run_fault_cell_summary",
                            kwargs=dict(profile=profile, lb=lb, cc=cc, **kwargs),
                            key=(profile, lb, cc, seed),
                            seed=seed,
                        )
                    )
    return specs


def run_faultmatrix(
    profiles: Sequence[str] = PROFILES,
    lbs: Sequence[str] = LBS,
    ccs: Sequence[str] = CCS,
    seed: int = 1,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    **kwargs,
) -> Dict[CellKey, FaultCellSummary]:
    """The fault matrix, fanned out over ``jobs`` workers; fingerprints
    are byte-identical for any ``jobs`` (plans are picklable and all
    draws are seed-derived)."""
    specs = sweep_specs(profiles=profiles, lbs=lbs, ccs=ccs, seeds=(seed,), **kwargs)
    executor = executor or SweepExecutor(jobs=jobs)
    out: Dict[CellKey, FaultCellSummary] = {}
    for result in executor.map(specs):
        out[result.value.key] = result.value
    return out


def format_matrix(cells: Dict[CellKey, object]) -> str:
    lines = [
        f"{'profile':>11} {'lb':>9} {'cc':>6} {'done':>5} {'fail':>5} "
        f"{'hung':>5} {'mean_us':>9} {'p99_us':>9}"
    ]
    for key in sorted(cells):
        c = cells[key]
        profile, lb, cc = c.key
        lines.append(
            f"{profile:>11} {lb:>9} {cc:>6} {c.completed:>5} {c.failed:>5} "
            f"{c.hung:>5} {c.mean_fct_us:>9.1f} {c.p99_fct_us:>9.1f}"
        )
    return "\n".join(lines)


#: The reduced slice CI runs (``fncc-exp faultmatrix --quick``): the
#: zero-perturbation anchor plus one hard-failure cell.
QUICK_SLICE = dict(
    profiles=("none", "linkdown"),
    lbs=("ecmp",),
    ccs=("fncc",),
)


def main(jobs: int = 1, seed: int = 1, quick: bool = False) -> None:
    slice_kw = QUICK_SLICE if quick else {}
    cells = run_faultmatrix(seed=seed, jobs=jobs, **slice_kw)
    print("fault profile × LB × CC (done/fail/hung; FCTs in µs)")
    print(format_matrix(cells))
    hung = {k: c.hung for k, c in cells.items() if c.hung}
    if hung:
        print("\nFAIL: cells with hung flows (graceful degradation broken):")
        for k, n in hung.items():
            print(f"  {k}: {n} hung")
        raise SystemExit(1)
    print("\nall cells resolved every flow (completed or flow-failed)")


if __name__ == "__main__":  # pragma: no cover
    main()
