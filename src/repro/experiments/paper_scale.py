"""Paper-scale cross-validation via the flow-level simulator.

Packet-level Python cannot reach the §5.5 configuration (k=8, 128 hosts,
thousands of WebSearch flows at full size) in reasonable time, but the
max-min flow-level model (:mod:`repro.analysis.flowsim`) can.  This
experiment runs the *same* workload at k=4-packet scale and k=8-flow scale
and reports both, demonstrating that the scaled packet experiments and the
full-scale fluid model agree on the workload shape (which size bins hurt,
roughly how big the tail is) — the justification for DESIGN.md's scaling
substitution.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.flowsim import from_topology
from repro.metrics.fct import SIZE_BINS_WEBSEARCH, SlowdownTable
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.fattree import fattree
from repro.traffic.distributions import websearch_cdf
from repro.traffic.generator import PoissonWorkload


def run_flow_level(
    k: int = 8,
    n_flows: int = 2000,
    load: float = 0.5,
    scale: float = 1.0,
    seed: int = 1,
) -> SlowdownTable:
    """WebSearch at ``load`` on a k-ary fat-tree, flow-level model."""
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    topo = fattree(sim, k=k, seeds=seeds)
    fls, path_fn = from_topology(topo)
    flows = PoissonWorkload(
        n_hosts=len(topo.hosts),
        host_rate_gbps=100.0,
        cdf=websearch_cdf(scale=scale),
        load=load,
        seeds=seeds,
    ).generate(n_flows)
    result = fls.run(flows, path_fn)
    bins = [round(b * scale) for b in SIZE_BINS_WEBSEARCH]
    return SlowdownTable.from_records(result.records, bins)


def run_paper_scale(seed: int = 1, jobs: int = 1) -> Dict[str, SlowdownTable]:
    """Both scales are independent runs; :class:`SlowdownTable` is already
    portable, so they fan directly over the sweep executor."""
    from repro.exec import RunSpec, SweepExecutor

    specs = [
        RunSpec(
            fn="repro.experiments.paper_scale:run_flow_level",
            kwargs=dict(k=8, n_flows=2000, scale=1.0),
            key="flow-level k=8 full-size (2000 flows)",
            seed=seed,
        ),
        RunSpec(
            fn="repro.experiments.paper_scale:run_flow_level",
            kwargs=dict(k=4, n_flows=2000, scale=0.1),
            key="flow-level k=4 scaled x0.1 (2000 flows)",
            seed=seed,
        ),
    ]
    return {r.key: r.value for r in SweepExecutor(jobs=jobs).map(specs)}


def main(jobs: int = 1, seed: int = 1) -> None:
    tables = run_paper_scale(seed=seed, jobs=jobs)
    print("Paper-scale cross-validation (max-min flow-level model)")
    for name, table in tables.items():
        counts = table.row_counts()
        pops = [b for b in table.bins if counts[b] > 0]
        p95s = [table.stat(b, "p95") for b in pops]
        print(f"\n{name}:")
        print(f"  flows binned: {sum(counts.values())}, overall p95 "
              f"{table.aggregate('p95'):.2f}, overall avg {table.aggregate('average'):.2f}")
        print("  p95 by bin: " + " ".join(f"{v:.1f}" for v in p95s))
    t_full = tables["flow-level k=8 full-size (2000 flows)"]
    t_scaled = tables["flow-level k=4 scaled x0.1 (2000 flows)"]
    corr = shape_correlation(t_full, t_scaled)
    print(f"\nrank correlation of per-bin p95 between the two scales: {corr:.2f}")


def shape_correlation(a: SlowdownTable, b: SlowdownTable) -> float:
    """Spearman rank correlation of per-bin p95 slowdowns between two
    tables (bins compared positionally)."""
    from scipy.stats import spearmanr

    xs, ys = [], []
    for ba, bb in zip(a.bins, b.bins):
        sa, sb = a.stat(ba, "p95"), b.stat(bb, "p95")
        if sa is not None and sb is not None:
            xs.append(sa)
            ys.append(sb)
    if len(xs) < 3:
        return float("nan")
    rho = spearmanr(xs, ys).statistic
    return float(rho)


if __name__ == "__main__":  # pragma: no cover
    main()
