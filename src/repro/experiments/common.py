"""Shared experiment plumbing.

:func:`build_cc_env` maps an algorithm name to everything the fabric needs:
the switch INT mode, ECN marking (DCQCN), CNP generation at receivers, the
per-flow CC factory, and any switch-resident machinery (RoCC's PI
controllers).  :func:`run_microbench` runs the dumbbell/parking-lot
scenarios shared by Figs. 1, 3, 9 and 13.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.cc import install_rocc, make_cc_factory
from repro.cc.registry import CcFactory
from repro.metrics.monitors import (
    QueueSampler,
    RateSampler,
    UtilizationSampler,
    pause_frame_count,
)
from repro.net.port import EcnConfig
from repro.net.switch import IntMode, SwitchConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.topo.dumbbell import dumbbell
from repro.traffic.generator import staggered_elephants
from repro.transport.flow import Flow
from repro.units import KB, MB, us

#: DCQCN ECN thresholds at 100 Gb/s (HPCC paper's simulation settings);
#: scaled linearly with the link rate.
ECN_KMIN_100G = 100 * KB
ECN_KMAX_100G = 400 * KB
ECN_PMAX = 0.2

WINDOW_BASED = {"hpcc", "fncc", "swift"}


class CcEnv:
    """Everything needed to instantiate one CC scheme on a fabric."""

    def __init__(
        self,
        name: str,
        switch_config: SwitchConfig,
        cc_factory: CcFactory,
        cnp_enabled: bool,
        post_install: Optional[Callable[[Topology], None]] = None,
    ) -> None:
        self.name = name
        self.switch_config = switch_config
        self.cc_factory = cc_factory
        self.cnp_enabled = cnp_enabled
        self.post_install = post_install or (lambda topo: None)


def build_cc_env(
    cc: str,
    link_rate_gbps: float = 100.0,
    pfc_xoff: int = 500 * KB,
    pfc_enabled: bool = True,
    buffer_bytes: int = 32 * MB,
    **cc_params,
) -> CcEnv:
    """Algorithm name -> fabric + endpoint configuration."""
    name = cc.lower()
    int_mode = IntMode.NONE
    ecn: Optional[EcnConfig] = None
    cnp = False
    post: Optional[Callable[[Topology], None]] = None

    if name == "hpcc":
        int_mode = IntMode.HPCC
    elif name == "fncc":
        int_mode = IntMode.FNCC
    elif name == "dcqcn":
        scale = link_rate_gbps / 100.0
        ecn = EcnConfig(
            kmin=round(ECN_KMIN_100G * scale),
            kmax=round(ECN_KMAX_100G * scale),
            pmax=ECN_PMAX,
        )
        cnp = True
    elif name == "rocc":

        def post(topo: Topology) -> None:
            install_rocc(topo.switches)

    elif name in ("timely", "swift"):
        pass
    else:
        raise ValueError(f"unknown CC scheme {cc!r}")

    switch_config = SwitchConfig(
        buffer_bytes=buffer_bytes,
        pfc_enabled=pfc_enabled,
        pfc_xoff=pfc_xoff,
        int_mode=int_mode,
        ecn=ecn,
    )
    return CcEnv(name, switch_config, make_cc_factory(name, **cc_params), cnp, post)


def launch_flows(topo: Topology, flows: Sequence[Flow], env: CcEnv) -> Dict[int, object]:
    """Register receivers and schedule senders; returns flow_id -> SenderQP."""
    qps: Dict[int, object] = {}
    for flow in flows:
        topo.hosts[flow.dst].register_receiver(flow)
    for flow in flows:
        src_host = topo.hosts[flow.src]
        cc = env.cc_factory(flow, src_host)
        base_rtt = topo.base_rtt_ps(flow.src, flow.dst)
        qps[flow.flow_id] = src_host.start_flow(flow, cc, base_rtt)
    return qps


def portstats_fingerprint(topo: Topology) -> tuple:
    """Every port counter of every node as one sorted, hashable tuple —
    the PortStats half of the zero-perturbation witness (DESIGN.md §10):
    two runs are byte-identical at the wire iff their FCT fingerprints
    *and* these counters match."""
    rows = []
    for node in list(getattr(topo, "hosts", ())) + list(getattr(topo, "switches", ())):
        for port in node.ports:
            s = port.stats
            rows.append(
                (
                    node.name,
                    port.index,
                    s.tx_packets,
                    s.tx_bytes,
                    s.rx_packets,
                    s.rx_bytes,
                    s.drops,
                    s.ecn_marked,
                    s.pause_sent,
                    s.pause_received,
                    s.resume_sent,
                    s.resume_received,
                    s.max_qlen,
                    port.train_frames,
                )
            )
    return tuple(sorted(rows))


class MicrobenchResult:
    """Output of :func:`run_microbench`: the series the paper plots."""

    def __init__(
        self,
        cc: str,
        link_rate_gbps: float,
        queue: "TimeSeries",
        rates: Dict[int, "TimeSeries"],
        utilization: "TimeSeries",
        pause_frames: int,
        topo: Topology,
        sim: Simulator,
    ) -> None:
        self.cc = cc
        self.link_rate_gbps = link_rate_gbps
        self.queue = queue
        self.rates = rates
        self.utilization = utilization
        self.pause_frames = pause_frames
        self.topo = topo
        self.sim = sim

    @property
    def peak_queue_bytes(self) -> float:
        return self.queue.max()

    def summary(self) -> str:
        lines = [
            f"cc={self.cc} rate={self.link_rate_gbps}G",
            f"  peak queue      : {self.peak_queue_bytes / KB:8.1f} KB",
            f"  pause frames    : {self.pause_frames}",
            f"  mean utilization: {self.utilization.mean():.3f}",
        ]
        return "\n".join(lines)


class MicrobenchSummary:
    """A portable :class:`MicrobenchResult`: the plotted series plus pause
    and event counters, no topology or simulator attached — what sweep
    workers return for Fig. 9-style runs."""

    def __init__(
        self,
        cc: str,
        link_rate_gbps: float,
        queue: "TimeSeries",
        rates: Dict[int, "TimeSeries"],
        utilization: "TimeSeries",
        pause_frames: int,
        events_dispatched: int,
        seed: int,
    ) -> None:
        self.cc = cc
        self.link_rate_gbps = link_rate_gbps
        self.queue = queue
        self.rates = rates
        self.utilization = utilization
        self.pause_frames = pause_frames
        self.events_dispatched = events_dispatched
        self.seed = seed

    @property
    def peak_queue_bytes(self) -> float:
        return self.queue.max()

    def fingerprint(self) -> tuple:
        """Every sampled series plus the pause/event counters — the
        byte-identity witness for serial-vs-parallel comparisons."""
        return (
            self.pause_frames,
            self.events_dispatched,
            tuple(self.queue.times),
            tuple(self.queue.values),
            tuple(
                (fid, tuple(s.times), tuple(s.values))
                for fid, s in sorted(self.rates.items())
            ),
            tuple(self.utilization.times),
            tuple(self.utilization.values),
        )


def summarize_microbench(result: "MicrobenchResult", seed: int) -> MicrobenchSummary:
    return MicrobenchSummary(
        cc=result.cc,
        link_rate_gbps=result.link_rate_gbps,
        queue=result.queue,
        rates=result.rates,
        utilization=result.utilization,
        pause_frames=result.pause_frames,
        events_dispatched=result.sim.events_dispatched,
        seed=seed,
    )


def run_microbench_summary(cc: str, seed: int = 1, **kwargs) -> MicrobenchSummary:
    """Sweep-spec target: one microbench run as a portable summary."""
    return summarize_microbench(run_microbench(cc, seed=seed, **kwargs), seed)


def quick_dumbbell(
    cc: str = "fncc", link_rate_gbps: float = 100.0, **kw
) -> "MicrobenchResult":
    """One-call demo: two staggered elephants on the Fig. 10 dumbbell."""
    return run_microbench(cc, link_rate_gbps=link_rate_gbps, **kw)


def run_microbench(
    cc: str,
    link_rate_gbps: float = 100.0,
    n_senders: int = 2,
    n_switches: int = 3,
    flow_size_bytes: int = 20 * MB,
    stagger_us: float = 300.0,
    duration_us: float = 700.0,
    sample_us: float = 1.0,
    seed: int = 1,
    pfc_xoff: int = 500 * KB,
    topo_builder: Optional[Callable[..., Topology]] = None,
    monitor_switch: int = 0,
    monitor_port: Optional[int] = None,
    lb=None,
    **cc_params,
) -> MicrobenchResult:
    """The Figs. 1/3/9 micro-benchmark: staggered elephants on a dumbbell.

    flow0 starts at t=0 at line rate; flow1 joins at ``stagger_us`` (300 µs
    in the paper); the monitored egress queue is switch0's port toward
    switch1 (override with ``monitor_switch``/``monitor_port``).

    ``lb`` (a strategy name or :class:`repro.lb.LbConfig`) is forwarded to
    the builder; custom ``topo_builder`` callables must accept the kwarg.
    """
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env = build_cc_env(cc, link_rate_gbps=link_rate_gbps, pfc_xoff=pfc_xoff, **cc_params)
    link = LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5))
    builder = topo_builder or dumbbell
    builder_kw = {}
    if lb is not None:
        # Only forwarded when requested, so pre-LB custom builders without
        # the kwarg keep working; install_lb normalizes names/configs.
        builder_kw["lb"] = lb
    topo = builder(
        sim,
        n_senders=n_senders,
        n_switches=n_switches,
        link=link,
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
        **builder_kw,
    )
    env.post_install(topo)

    receiver = topo.hosts[-1]
    flows = staggered_elephants(
        sender_ids=[h.host_id for h in topo.hosts[:n_senders]],
        receiver_id=receiver.host_id,
        size_bytes=flow_size_bytes,
        stagger_ps=us(stagger_us),
    )
    qps = launch_flows(topo, flows, env)

    # Congestion point: switch0's egress toward the next chain element.
    sw = topo.switches[monitor_switch]
    if monitor_port is None:
        nxt = (
            topo.switches[monitor_switch + 1].name
            if monitor_switch + 1 < len(topo.switches)
            else receiver.name
        )
        monitor_port = topo.graph.edges[sw.name, nxt]["ports"][sw.name]
    port = sw.ports[monitor_port]
    qmon = QueueSampler(sim, port, interval_ps=us(sample_us))
    umon = UtilizationSampler(sim, port, interval_ps=us(5 * sample_us))
    rmons = {fid: RateSampler(sim, qp, interval_ps=us(sample_us)) for fid, qp in qps.items()}

    sim.run(until=us(duration_us))

    return MicrobenchResult(
        cc=cc,
        link_rate_gbps=link_rate_gbps,
        queue=qmon.series,
        rates={fid: mon.series for fid, mon in rmons.items()},
        utilization=umon.series,
        pause_frames=pause_frame_count(topo.switches),
        topo=topo,
        sim=sim,
    )
