"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* FNCC behaves as it does:

* ``beta_sweep`` — LHCS drain factor beta (paper: "slightly smaller than
  one, e.g. 0.9").  Smaller beta drains faster but sacrifices utilization.
* ``alpha_sweep`` — LHCS trigger threshold alpha (paper: 1.05).  Too low
  over-triggers; too high never fires.
* ``ack_coalescing_sweep`` — cumulative-ACK factor m (§3.2.3 supports one
  ACK per m packets): coarser ACKs slow notification for every scheme.
* ``lhcs_contribution`` — FNCC with vs without LHCS on last-hop congestion
  (Fig. 13c/d decomposition).
* ``int_staleness_sweep`` — All_INT_Table refresh period (§4.1 "updated
  periodically"): stale telemetry converges toward HPCC-like sluggishness.

Every sweep point is an independent run, so each sweep takes ``jobs=N``
and fans points over the :mod:`repro.exec` process pool; the per-point
functions (``beta_point`` etc.) are module-level and return plain floats
— the picklable spec/reduce shape DESIGN.md §5 describes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.exec import RunSpec, run_sweep
from repro.experiments.fig13_congestion_location import run_location
from repro.units import KB, MB, us


# -- per-point spec targets (module-level, portable return values) ----------


def beta_point(beta: float, duration_us: float = 600.0) -> Tuple[float, float]:
    """One beta setting -> (peak queue KB, mean utilization) on last-hop
    congestion."""
    r = run_location("fncc", "last", duration_us=duration_us, beta=beta)
    return (
        r.peak_queue_bytes / KB,
        r.utilization.mean_after(us(100)),
    )


def alpha_point(alpha: float, duration_us: float = 600.0) -> float:
    """One alpha setting -> standing queue (KB) in the post-join transient
    window [305, 450] us (the raw peak includes the pre-notification
    burst)."""
    r = run_location("fncc", "last", duration_us=duration_us, alpha=alpha)
    return r.queue.max_between(us(305), us(450)) / KB


def _elephant_dumbbell_peak_queue_kb(
    duration_us: float,
    switch_config=None,
    transport_config=None,
) -> float:
    """Shared ablation scaffold: two 20 MB staggered elephants on the
    FNCC 100G dumbbell; returns the peak queue (KB) at the congested
    egress.  ``switch_config``/``transport_config`` override the FNCC
    defaults (the one knob each ablation point varies)."""
    from repro.experiments.common import build_cc_env, launch_flows
    from repro.metrics.monitors import QueueSampler
    from repro.sim.engine import Simulator
    from repro.sim.rng import SeedSequenceFactory
    from repro.topo.base import LinkSpec
    from repro.topo.dumbbell import dumbbell
    from repro.traffic.generator import staggered_elephants

    sim = Simulator()
    env = build_cc_env("fncc")
    topo_kw = {}
    if transport_config is not None:
        topo_kw["transport_config"] = transport_config
    topo = dumbbell(
        sim,
        n_senders=2,
        link=LinkSpec(100.0, us(1.5)),
        switch_config=switch_config if switch_config is not None else env.switch_config,
        seeds=SeedSequenceFactory(1),
        **topo_kw,
    )
    flows = staggered_elephants(
        [h.host_id for h in topo.hosts[:2]],
        topo.hosts[-1].host_id,
        20 * MB,
        us(300),
    )
    launch_flows(topo, flows, env)
    sw = topo.switches[0]
    port_idx = topo.graph.edges[sw.name, topo.switches[1].name]["ports"][sw.name]
    qmon = QueueSampler(sim, sw.ports[port_idx], us(1))
    sim.run(until=us(duration_us))
    return qmon.series.max() / KB


def ack_point(m: int, duration_us: float = 600.0) -> float:
    """One ACK-per-m-packets setting -> peak queue KB (dumbbell, FNCC)."""
    from repro.transport.sender import TransportConfig

    return _elephant_dumbbell_peak_queue_kb(
        duration_us, transport_config=TransportConfig(ack_every=m)
    )


def lhcs_point(variant: str, duration_us: float = 800.0) -> float:
    """One LHCS-contribution variant -> peak queue KB on last-hop
    congestion."""
    if variant == "hpcc":
        r = run_location("hpcc", "last", duration_us=duration_us)
    elif variant == "fncc_nolhcs":
        r = run_location("fncc", "last", duration_us=duration_us, lhcs_enabled=False)
    elif variant == "fncc_lhcs":
        r = run_location("fncc", "last", duration_us=duration_us)
    else:
        raise ValueError(f"unknown lhcs_contribution variant {variant!r}")
    return r.peak_queue_bytes / KB


def staleness_point(period_us: float, duration_us: float = 600.0) -> float:
    """One All_INT_Table refresh period -> peak queue KB.  0 = live
    readout."""
    from repro.net.switch import IntMode, SwitchConfig

    cfg = SwitchConfig(
        int_mode=IntMode.FNCC,
        int_table_refresh_ps=us(period_us) if period_us > 0 else 0,
    )
    return _elephant_dumbbell_peak_queue_kb(duration_us, switch_config=cfg)


# -- the sweeps (spec emission + ordered reduce) ----------------------------

_ABLATIONS = "repro.experiments.ablations"


def beta_sweep(
    betas: Sequence[float] = (0.7, 0.8, 0.9, 0.95),
    duration_us: float = 600.0,
    jobs: int = 1,
) -> Dict[float, Tuple[float, float]]:
    """beta -> (peak queue KB, mean utilization) on last-hop congestion."""
    specs = [
        RunSpec(f"{_ABLATIONS}:beta_point", dict(beta=b, duration_us=duration_us), key=b)
        for b in betas
    ]
    return dict(zip(betas, run_sweep(specs, jobs=jobs)))


def alpha_sweep(
    alphas: Sequence[float] = (1.01, 1.05, 1.5, 3.0),
    duration_us: float = 600.0,
    jobs: int = 1,
) -> Dict[float, float]:
    """alpha -> standing queue (KB) on last-hop congestion.

    A threshold too high to ever fire (u tops out near 1 + q_peak/BDP
    ~ 1.5 here) degenerates to FNCC-without-LHCS.
    """
    specs = [
        RunSpec(f"{_ABLATIONS}:alpha_point", dict(alpha=a, duration_us=duration_us), key=a)
        for a in alphas
    ]
    return dict(zip(alphas, run_sweep(specs, jobs=jobs)))


def ack_coalescing_sweep(
    ms_: Sequence[int] = (1, 2, 4, 8),
    duration_us: float = 600.0,
    jobs: int = 1,
) -> Dict[int, float]:
    """ACK-per-m-packets -> peak queue KB (dumbbell, FNCC)."""
    specs = [
        RunSpec(f"{_ABLATIONS}:ack_point", dict(m=m, duration_us=duration_us), key=m)
        for m in ms_
    ]
    return dict(zip(ms_, run_sweep(specs, jobs=jobs)))


def lhcs_contribution(duration_us: float = 800.0, jobs: int = 1) -> Dict[str, float]:
    """Peak queue (KB) on last-hop congestion: HPCC vs FNCC +- LHCS."""
    variants = ("hpcc", "fncc_nolhcs", "fncc_lhcs")
    specs = [
        RunSpec(f"{_ABLATIONS}:lhcs_point", dict(variant=v, duration_us=duration_us), key=v)
        for v in variants
    ]
    return dict(zip(variants, run_sweep(specs, jobs=jobs)))


def int_staleness_sweep(
    periods_us: Sequence[float] = (0.0, 1.0, 5.0, 20.0),
    duration_us: float = 600.0,
    jobs: int = 1,
) -> Dict[float, float]:
    """All_INT_Table refresh period -> peak queue KB.  0 = live readout."""
    specs = [
        RunSpec(
            f"{_ABLATIONS}:staleness_point",
            dict(period_us=p, duration_us=duration_us),
            key=p,
        )
        for p in periods_us
    ]
    return dict(zip(periods_us, run_sweep(specs, jobs=jobs)))


def main(jobs: int = 1) -> None:
    print("LHCS contribution (last-hop peak queue, KB):")
    for k, v in lhcs_contribution(jobs=jobs).items():
        print(f"  {k:>12}: {v:8.1f}")
    print("beta sweep (peakQ KB, util):")
    for b, (q, u) in beta_sweep(jobs=jobs).items():
        print(f"  beta={b:4.2f}: {q:8.1f} KB  util={u:.3f}")
    print("alpha sweep (peakQ KB):")
    for a, q in alpha_sweep(jobs=jobs).items():
        print(f"  alpha={a:4.2f}: {q:8.1f} KB")
    print("ACK coalescing sweep (peakQ KB):")
    for m, q in ack_coalescing_sweep(jobs=jobs).items():
        print(f"  m={m}: {q:8.1f} KB")
    print("INT staleness sweep (peakQ KB):")
    for p, q in int_staleness_sweep(jobs=jobs).items():
        print(f"  refresh={p:4.1f}us: {q:8.1f} KB")


if __name__ == "__main__":  # pragma: no cover
    main()
