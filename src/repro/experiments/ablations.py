"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these probe *why* FNCC behaves as it does:

* ``beta_sweep`` — LHCS drain factor beta (paper: "slightly smaller than
  one, e.g. 0.9").  Smaller beta drains faster but sacrifices utilization.
* ``alpha_sweep`` — LHCS trigger threshold alpha (paper: 1.05).  Too low
  over-triggers; too high never fires.
* ``ack_coalescing_sweep`` — cumulative-ACK factor m (§3.2.3 supports one
  ACK per m packets): coarser ACKs slow notification for every scheme.
* ``lhcs_contribution`` — FNCC with vs without LHCS on last-hop congestion
  (Fig. 13c/d decomposition).
* ``int_staleness_sweep`` — All_INT_Table refresh period (§4.1 "updated
  periodically"): stale telemetry converges toward HPCC-like sluggishness.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import run_microbench
from repro.experiments.fig13_congestion_location import run_location
from repro.units import KB, MB, us


def beta_sweep(
    betas: Sequence[float] = (0.7, 0.8, 0.9, 0.95), duration_us: float = 600.0
) -> Dict[float, Tuple[float, float]]:
    """beta -> (peak queue KB, mean utilization) on last-hop congestion."""
    out = {}
    for beta in betas:
        r = run_location("fncc", "last", duration_us=duration_us, beta=beta)
        out[beta] = (
            r.peak_queue_bytes / KB,
            r.utilization.mean_after(us(100)),
        )
    return out


def alpha_sweep(
    alphas: Sequence[float] = (1.01, 1.05, 1.5, 3.0), duration_us: float = 600.0
) -> Dict[float, float]:
    """alpha -> standing queue (KB) on last-hop congestion.

    The raw peak includes the pre-notification burst, so the sweep reports
    the post-join transient window [305, 450] us instead.  A
    threshold too high to ever fire (u tops out near 1 + q_peak/BDP ~ 1.5
    here) degenerates to FNCC-without-LHCS.
    """
    out = {}
    for a in alphas:
        r = run_location("fncc", "last", duration_us=duration_us, alpha=a)
        out[a] = r.queue.max_between(us(305), us(450)) / KB
    return out


def ack_coalescing_sweep(
    ms_: Sequence[int] = (1, 2, 4, 8), duration_us: float = 600.0
) -> Dict[int, float]:
    """ACK-per-m-packets -> peak queue KB (dumbbell, FNCC)."""
    out = {}
    for m in ms_:
        from repro.experiments.common import build_cc_env, launch_flows
        from repro.metrics.monitors import QueueSampler
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell
        from repro.traffic.generator import staggered_elephants
        from repro.transport.sender import TransportConfig

        sim = Simulator()
        env = build_cc_env("fncc")
        topo = dumbbell(
            sim,
            n_senders=2,
            link=LinkSpec(100.0, us(1.5)),
            switch_config=env.switch_config,
            transport_config=TransportConfig(ack_every=m),
            seeds=SeedSequenceFactory(1),
        )
        flows = staggered_elephants(
            [h.host_id for h in topo.hosts[:2]],
            topo.hosts[-1].host_id,
            20 * MB,
            us(300),
        )
        launch_flows(topo, flows, env)
        sw = topo.switches[0]
        port_idx = topo.graph.edges[sw.name, topo.switches[1].name]["ports"][sw.name]
        qmon = QueueSampler(sim, sw.ports[port_idx], us(1))
        sim.run(until=us(duration_us))
        out[m] = qmon.series.max() / KB
    return out


def lhcs_contribution(duration_us: float = 800.0) -> Dict[str, float]:
    """Peak queue (KB) on last-hop congestion: HPCC vs FNCC +- LHCS."""
    return {
        "hpcc": run_location("hpcc", "last", duration_us=duration_us).peak_queue_bytes / KB,
        "fncc_nolhcs": run_location(
            "fncc", "last", duration_us=duration_us, lhcs_enabled=False
        ).peak_queue_bytes / KB,
        "fncc_lhcs": run_location("fncc", "last", duration_us=duration_us).peak_queue_bytes / KB,
    }


def int_staleness_sweep(
    periods_us: Sequence[float] = (0.0, 1.0, 5.0, 20.0), duration_us: float = 600.0
) -> Dict[float, float]:
    """All_INT_Table refresh period -> peak queue KB.  0 = live readout."""
    from repro.experiments.common import build_cc_env, launch_flows
    from repro.metrics.monitors import QueueSampler
    from repro.net.switch import SwitchConfig, IntMode
    from repro.sim.engine import Simulator
    from repro.sim.rng import SeedSequenceFactory
    from repro.topo.base import LinkSpec
    from repro.topo.dumbbell import dumbbell
    from repro.traffic.generator import staggered_elephants

    out = {}
    for period in periods_us:
        sim = Simulator()
        env = build_cc_env("fncc")
        cfg = SwitchConfig(
            int_mode=IntMode.FNCC,
            int_table_refresh_ps=us(period) if period > 0 else 0,
        )
        topo = dumbbell(
            sim,
            n_senders=2,
            link=LinkSpec(100.0, us(1.5)),
            switch_config=cfg,
            seeds=SeedSequenceFactory(1),
        )
        flows = staggered_elephants(
            [h.host_id for h in topo.hosts[:2]],
            topo.hosts[-1].host_id,
            20 * MB,
            us(300),
        )
        launch_flows(topo, flows, env)
        sw = topo.switches[0]
        port_idx = topo.graph.edges[sw.name, topo.switches[1].name]["ports"][sw.name]
        qmon = QueueSampler(sim, sw.ports[port_idx], us(1))
        sim.run(until=us(duration_us))
        out[period] = qmon.series.max() / KB
    return out


def main() -> None:
    print("LHCS contribution (last-hop peak queue, KB):")
    for k, v in lhcs_contribution().items():
        print(f"  {k:>12}: {v:8.1f}")
    print("beta sweep (peakQ KB, util):")
    for b, (q, u) in beta_sweep().items():
        print(f"  beta={b:4.2f}: {q:8.1f} KB  util={u:.3f}")
    print("alpha sweep (peakQ KB):")
    for a, q in alpha_sweep().items():
        print(f"  alpha={a:4.2f}: {q:8.1f} KB")
    print("ACK coalescing sweep (peakQ KB):")
    for m, q in ack_coalescing_sweep().items():
        print(f"  m={m}: {q:8.1f} KB")
    print("INT staleness sweep (peakQ KB):")
    for p, q in int_staleness_sweep().items():
        print(f"  refresh={p:4.1f}us: {q:8.1f} KB")


if __name__ == "__main__":  # pragma: no cover
    main()
