"""CLI entry point: ``fncc-exp <figure> [options]`` regenerates one paper
figure's data; ``--list`` shows the catalogue."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments.common import quick_dumbbell  # noqa: F401 (re-export)


def _experiments() -> Dict[str, Callable[[], None]]:
    # Imported lazily so `import repro` stays fast.
    from repro.experiments import (
        ablations,
        fig1_hw_trends,
        fig1_queue_motivation,
        fig3_pause_frames,
        fig9_microbench,
        fig13_congestion_location,
        fig13_fairness,
        fig14_websearch,
        fig15_hadoop,
        headline,
        lbmatrix,
        paper_scale,
        related_work,
        theory,
    )

    return {
        "fig1a": fig1_hw_trends.main,
        "fig1": fig1_queue_motivation.main,
        "fig3": fig3_pause_frames.main,
        "fig9": fig9_microbench.main,
        "fig13": fig13_congestion_location.main,
        "fig13e": fig13_fairness.main,
        "fig14": fig14_websearch.main,
        "fig15": fig15_hadoop.main,
        "headline": headline.main,
        "lbmatrix": lbmatrix.main,
        "ablations": ablations.main,
        "theory": theory.main,
        "related-work": related_work.main,
        "paper-scale": paper_scale.main,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fncc-exp",
        description="Regenerate the FNCC paper's figures on the simulator.",
    )
    parser.add_argument("experiment", nargs="?", help="figure id (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    table = _experiments()
    if args.list or not args.experiment:
        for name in table:
            print(name)
        return 0
    fn = table.get(args.experiment)
    if fn is None:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2
    fn()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
