"""CLI entry point: ``fncc-exp <figure> [options]`` regenerates one paper
figure's data; ``--list`` shows the catalogue (sweep-enabled experiments
are marked — those accept ``--jobs N`` process-pool fan-out and ``--seed``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict

from repro.experiments.common import quick_dumbbell  # noqa: F401 (re-export)


def _experiments() -> Dict[str, Callable[..., None]]:
    # Imported lazily so `import repro` stays fast.
    from repro.experiments import (
        ablations,
        fig1_hw_trends,
        fig1_queue_motivation,
        fig3_pause_frames,
        fig9_microbench,
        fig13_congestion_location,
        fig13_fairness,
        fig14_websearch,
        fig15_hadoop,
        faultmatrix,
        headline,
        lbmatrix,
        paper_scale,
        related_work,
        theory,
    )

    return {
        "fig1a": fig1_hw_trends.main,
        "fig1": fig1_queue_motivation.main,
        "fig3": fig3_pause_frames.main,
        "fig9": fig9_microbench.main,
        "fig13": fig13_congestion_location.main,
        "fig13e": fig13_fairness.main,
        "fig14": fig14_websearch.main,
        "fig15": fig15_hadoop.main,
        "headline": headline.main,
        "lbmatrix": lbmatrix.main,
        "faultmatrix": faultmatrix.main,
        "ablations": ablations.main,
        "theory": theory.main,
        "related-work": related_work.main,
        "paper-scale": paper_scale.main,
    }


def _accepted_options(fn: Callable[..., None]) -> set:
    """Which of the per-experiment options this main() accepts.  An
    experiment is 'sweep-enabled' iff its main takes ``jobs`` — the
    signature is the registry, so a new sweep-enabled experiment shows up
    in ``--list`` without touching this file."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return set()
    return {"jobs", "seed", "quick", "backend", "trace", "progress"} & set(params)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fncc-exp",
        description="Regenerate the FNCC paper's figures on the simulator.",
    )
    parser.add_argument("experiment", nargs="?", help="figure id (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-enabled experiments (see --list); "
        "1 = in-process, results are identical for any value",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed passthrough (default: the experiment's own default)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced slice for experiments that support it (lbmatrix)",
    )
    parser.add_argument(
        "--backend",
        choices=("packet", "flow", "hybrid"),
        default=None,
        help="simulation backend for experiments that support it (fig14/"
        "fig15): packet = discrete-event ground truth, flow = max-min "
        "fluid model, hybrid = packet/flow co-simulation (DESIGN.md §6)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto) "
        "of the run to PATH, for experiments that support it; includes the "
        "metrics-registry snapshot under otherData.registry",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print wall-clock heartbeats (sim-time, events/s, flows, ETA) "
        "to stderr during long runs, for experiments that support it",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    table = _experiments()
    if args.list or not args.experiment:
        for name, fn in table.items():
            opts = _accepted_options(fn)
            marker = ""
            if "jobs" in opts:
                flags = "/".join(
                    f"--{o}"
                    for o in ("jobs", "seed", "quick", "backend", "trace", "progress")
                    if o in opts
                )
                marker = f"[sweep: {flags}]"
            print(f"{name:<14}{marker}")
        return 0
    fn = table.get(args.experiment)
    if fn is None:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2
    opts = _accepted_options(fn)
    kwargs = {}
    if "jobs" in opts:
        kwargs["jobs"] = args.jobs
    elif args.jobs != 1:
        print(
            f"note: {args.experiment} is not sweep-enabled; ignoring --jobs",
            file=sys.stderr,
        )
    if args.seed is not None:
        if "seed" in opts:
            kwargs["seed"] = args.seed
        else:
            print(
                f"note: {args.experiment} does not take --seed; ignoring",
                file=sys.stderr,
            )
    if args.quick:
        if "quick" in opts:
            kwargs["quick"] = True
        else:
            print(
                f"note: {args.experiment} has no --quick slice; ignoring",
                file=sys.stderr,
            )
    if args.backend is not None:
        if "backend" in opts:
            kwargs["backend"] = args.backend
        else:
            print(
                f"note: {args.experiment} does not take --backend; ignoring",
                file=sys.stderr,
            )
    if args.trace is not None:
        if "trace" in opts:
            kwargs["trace"] = args.trace
        else:
            print(
                f"note: {args.experiment} does not take --trace; ignoring",
                file=sys.stderr,
            )
    if args.progress:
        if "progress" in opts:
            kwargs["progress"] = True
        else:
            print(
                f"note: {args.experiment} does not take --progress; ignoring",
                file=sys.stderr,
            )
    fn(**kwargs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
