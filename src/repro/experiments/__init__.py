"""Experiment harness: one module per data figure of the paper.

Each module exposes a ``run_*`` function returning a structured result and
a ``main()`` that prints the paper-style rows.  ``python -m
repro.experiments.runner --list`` enumerates them; DESIGN.md carries the
figure-to-module index and EXPERIMENTS.md the paper-vs-measured record.
"""

from repro.experiments.common import (
    CcEnv,
    build_cc_env,
    launch_flows,
    MicrobenchResult,
    run_microbench,
    quick_dumbbell,
)

__all__ = [
    "CcEnv",
    "build_cc_env",
    "launch_flows",
    "MicrobenchResult",
    "run_microbench",
    "quick_dumbbell",
]
