"""Fig. 13e — fairness over multiple flows.

Four senders share a dumbbell bottleneck.  A new long-lived flow joins
every epoch, then flows exit in sequence, producing the staircase
100 -> 50 -> 33 -> 25 -> 33 -> 50 -> 100 Gb/s.  The paper uses 100 ms
epochs; the default here is 1 ms (~80 RTTs — ample convergence time, see
DESIGN.md's scaling note), with the original value one argument away.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.metrics.monitors import RateSampler
from repro.metrics.series import TimeSeries
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.dumbbell import dumbbell
from repro.transport.flow import Flow
from repro.units import GB, ms, us


class FairnessResult:
    def __init__(
        self,
        cc: str,
        link_rate_gbps: float,
        epoch_ps: int,
        n_flows: int,
        rates: Dict[int, TimeSeries],
        sim: Simulator,
    ) -> None:
        self.cc = cc
        self.link_rate_gbps = link_rate_gbps
        self.epoch_ps = epoch_ps
        self.n_flows = n_flows
        self.rates = rates
        self.sim = sim

    def active_flows_at(self, t_ps: int) -> List[int]:
        n, e = self.n_flows, self.epoch_ps
        joins = {i: i * e for i in range(n)}
        leaves = {i: (n + i) * e for i in range(n)}
        return [i for i in range(n) if joins[i] <= t_ps < leaves[i]]

    def fair_share_at(self, t_ps: int) -> float:
        active = self.active_flows_at(t_ps)
        return self.link_rate_gbps / len(active) if active else 0.0

    def jain_index_at(self, t_ps: int) -> float:
        """Jain's fairness index over the flows active at ``t_ps``."""
        active = self.active_flows_at(t_ps)
        if not active:
            return 1.0
        xs = np.array([self.rates[i].value_at(t_ps) for i in active])
        if xs.sum() == 0:
            return 1.0
        return float(xs.sum() ** 2 / (len(xs) * (xs**2).sum()))

    def epoch_probe_times(self, settle_fraction: float = 0.9) -> List[int]:
        """One probe per epoch, late in the epoch (post-convergence)."""
        total_epochs = 2 * self.n_flows
        return [
            round((k + settle_fraction) * self.epoch_ps)
            for k in range(total_epochs)
            if self.active_flows_at(round((k + settle_fraction) * self.epoch_ps))
        ]


def run_fairness(
    cc: str = "fncc",
    n_flows: int = 4,
    epoch_us: float = 1000.0,
    link_rate_gbps: float = 100.0,
    seed: int = 1,
    sample_us: float = 10.0,
    **cc_params,
) -> FairnessResult:
    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    topo = dumbbell(
        sim,
        n_senders=n_flows,
        n_switches=3,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
    )
    env.post_install(topo)
    epoch_ps = us(epoch_us)
    receiver = topo.hosts[-1]
    # Long-lived flows: big enough never to finish; exits are scheduled aborts.
    flows = [
        Flow(i, topo.hosts[i].host_id, receiver.host_id, 10 * GB, start_ps=i * epoch_ps)
        for i in range(n_flows)
    ]
    qps = launch_flows(topo, flows, env)

    def leave(fid: int) -> None:
        qps[fid].abort()
        receiver.deactivate_receiver(fid)

    for i in range(n_flows):
        leave_at = (n_flows + i) * epoch_ps
        sim.schedule(leave_at, lambda _arg, fid=i: leave(fid))
    rmons = {i: RateSampler(sim, qps[i], interval_ps=us(sample_us)) for i in range(n_flows)}
    sim.run(until=2 * n_flows * epoch_ps)
    return FairnessResult(
        cc, link_rate_gbps, epoch_ps, n_flows, {i: m.series for i, m in rmons.items()}, sim
    )


def main() -> None:
    res = run_fairness("fncc")
    print("Fig 13e — FNCC fairness staircase (rate per flow, Gb/s)")
    print(
        f"{'t(ms)':>7} {'active':>7} {'fair':>6} {'jain':>6} "
        + " ".join(f"{'f' + str(i):>6}" for i in range(res.n_flows))
    )
    for t in res.epoch_probe_times():
        active = res.active_flows_at(t)
        vals = " ".join(f"{res.rates[i].value_at(t):6.1f}" for i in range(res.n_flows))
        print(
            f"{t / ms(1):7.2f} {len(active):>7} {res.fair_share_at(t):6.1f} "
            f"{res.jain_index_at(t):6.3f} {vals}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
