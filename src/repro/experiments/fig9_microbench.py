"""Fig. 9 — the full micro-benchmark: queue length (a/c/e), per-flow rates
(b/d/f) and utilization (g/h) for RoCC, DCQCN, HPCC and FNCC at
100/200/400 Gb/s.

Headline observations reproduced:

* FNCC is the first to slow down after flow1 joins at 300 µs (paper:
  FNCC 300 µs < HPCC 330 µs < DCQCN 346 µs < RoCC 370 µs).
* FNCC's congestion-point queue stays the shallowest.
* FNCC converges to the fair rate fastest and keeps utilization highest.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.exec import RunSpec, SweepExecutor
from repro.experiments.common import MicrobenchResult, run_microbench
from repro.units import KB, to_us, us

RATES_GBPS = (100.0, 200.0, 400.0)
CCS = ("fncc", "hpcc", "dcqcn", "rocc")

#: ``response_time_us``/``convergence_time_us`` only touch the series and
#: the link rate, so they accept either :class:`MicrobenchResult` or the
#: portable :class:`~repro.experiments.common.MicrobenchSummary`.


def response_time_us(
    result: MicrobenchResult, join_us: float = 300.0, frac: float = 0.75
) -> Optional[float]:
    """When flow0 first drops below ``frac`` of line rate after flow1 joins
    — the Fig. 9b 'first to slow down' metric."""
    threshold = frac * result.link_rate_gbps
    t = result.rates[0].first_time_below(threshold, after_ps=us(join_us))
    return to_us(t) if t >= 0 else None


def convergence_time_us(
    result: MicrobenchResult,
    join_us: float = 300.0,
    tolerance: float = 0.15,
    hold_samples: int = 20,
) -> Optional[float]:
    """When both flows first stay within ``tolerance`` of the fair share
    (line/2) for ``hold_samples`` consecutive samples."""
    fair = result.link_rate_gbps / 2.0
    lo, hi = fair * (1 - tolerance), fair * (1 + tolerance)
    series = [result.rates[fid] for fid in sorted(result.rates)]
    times = series[0].times
    run_len = 0
    for i, t in enumerate(times):
        if t < us(join_us):
            continue
        ok = all(
            lo <= s.values[i] <= hi for s in series if i < len(s.values)
        )
        run_len = run_len + 1 if ok else 0
        if run_len >= hold_samples:
            return to_us(times[i - hold_samples + 1])
    return None


def run_fig9(
    rates: Sequence[float] = RATES_GBPS,
    ccs: Sequence[str] = CCS,
    duration_us: float = 800.0,
    seed: int = 1,
    jobs: int = 1,
) -> Dict[float, Dict[str, MicrobenchResult]]:
    """The rate × CC grid.  ``jobs=1`` runs in-process and returns rich
    :class:`MicrobenchResult`; ``jobs>1`` fans the independent cells over
    a process pool and returns portable summaries with the same series
    surface (byte-identical samples — the per-cell simulation does not
    know how it was scheduled)."""
    if jobs == 1:
        return {
            rate: {
                cc: run_microbench(
                    cc, link_rate_gbps=rate, duration_us=duration_us, seed=seed
                )
                for cc in ccs
            }
            for rate in rates
        }
    specs = [
        RunSpec(
            fn="repro.experiments.common:run_microbench_summary",
            kwargs=dict(cc=cc, link_rate_gbps=rate, duration_us=duration_us),
            key=(rate, cc),
            seed=seed,
        )
        for rate in rates
        for cc in ccs
    ]
    out: Dict[float, Dict[str, object]] = {rate: {} for rate in rates}
    for result in SweepExecutor(jobs=jobs).map(specs):
        rate, cc = result.key
        out[rate][cc] = result.value
    return out


def main(jobs: int = 1, seed: int = 1) -> None:
    results = run_fig9(seed=seed, jobs=jobs)
    for rate, per_cc in results.items():
        print(f"\nFig 9 @ {rate:.0f}Gbps")
        print(
            f"{'cc':>7} {'peakQ(KB)':>10} {'respond(us)':>12} "
            f"{'converge(us)':>13} {'util':>6} {'pauses':>7}"
        )
        for cc, r in per_cc.items():
            resp = response_time_us(r)
            conv = convergence_time_us(r)
            print(
                f"{cc:>7} {r.peak_queue_bytes / KB:10.1f} "
                f"{resp if resp is not None else float('nan'):12.1f} "
                f"{conv if conv is not None else float('nan'):13.1f} "
                f"{r.utilization.mean_after(us(100)):6.3f} {r.pause_frames:7d}"
            )


if __name__ == "__main__":  # pragma: no cover
    main()
