"""Figs. 1b-d — queue length at the congestion point when two elephants
collide, at 100/200/400 Gb/s, for FNCC vs HPCC vs DCQCN.

The paper's claim: HPCC and DCQCN queue visibly deeper than FNCC at every
rate, and the gap grows with rate.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import MicrobenchResult, run_microbench
from repro.units import KB

RATES_GBPS = (100.0, 200.0, 400.0)
CCS = ("fncc", "hpcc", "dcqcn")


def run_fig1_queue(
    rates: Sequence[float] = RATES_GBPS,
    ccs: Sequence[str] = CCS,
    duration_us: float = 600.0,
    seed: int = 1,
) -> Dict[float, Dict[str, MicrobenchResult]]:
    """All (rate, cc) cells of Figs. 1b-d."""
    return {
        rate: {
            cc: run_microbench(
                cc, link_rate_gbps=rate, duration_us=duration_us, seed=seed
            )
            for cc in ccs
        }
        for rate in rates
    }


def peak_queues_kb(results: Dict[float, Dict[str, MicrobenchResult]]) -> Dict[float, Dict[str, float]]:
    return {
        rate: {cc: r.peak_queue_bytes / KB for cc, r in per_cc.items()}
        for rate, per_cc in results.items()
    }


def main() -> None:
    results = run_fig1_queue()
    print("Fig 1b-d — peak queue length at the congestion point (KB)")
    print(f"{'rate':>8} " + " ".join(f"{cc:>9}" for cc in CCS))
    for rate, per_cc in results.items():
        cells = " ".join(f"{per_cc[cc].peak_queue_bytes / KB:9.1f}" for cc in CCS)
        print(f"{rate:6.0f}G  {cells}")


if __name__ == "__main__":  # pragma: no cover
    main()
