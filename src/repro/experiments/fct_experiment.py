"""The §5.5 large-scale experiment: FCT slowdown on a fat-tree under
Poisson traffic from the WebSearch / FB_Hadoop distributions at 50% load.

Scaling (DESIGN.md): the paper uses k=8 (128 servers) and minutes of
traffic on a C++ simulator.  Pure Python defaults to k=4 (16 servers),
a few hundred flows, and a flow-size ``scale`` < 1; FCT *slowdown* is
normalized so the comparative shape survives.  Full-scale parameters are
plain arguments (``k=8, scale=1.0, n_flows=...``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import RunSpec, SweepExecutor

from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.metrics.fct import (
    SIZE_BINS_HADOOP,
    SIZE_BINS_WEBSEARCH,
    FctCollector,
    SlowdownTable,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.distributions import fb_hadoop_cdf, websearch_cdf
from repro.traffic.generator import PoissonWorkload
from repro.units import MS, us

WORKLOADS = {
    "websearch": (websearch_cdf, SIZE_BINS_WEBSEARCH),
    "hadoop": (fb_hadoop_cdf, SIZE_BINS_HADOOP),
}


class FctResult:
    """Everything Figs. 14/15 need: the collector and the binned table."""

    def __init__(
        self,
        cc: str,
        workload: str,
        collector: FctCollector,
        bins: Sequence[int],
        n_flows: int,
        sim: Simulator,
        topo=None,
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.collector = collector
        self.bins = list(bins)
        self.n_flows = n_flows
        self.sim = sim
        # The live fabric (perf harness reads per-port tx counters off it
        # for the frame_hops metric); None for legacy callers.
        self.topo = topo

    @property
    def table(self) -> SlowdownTable:
        return self.collector.table(self.bins)

    def completed(self) -> int:
        return self.collector.completed()

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """(flow_id, fct_ps) pairs, sorted — the determinism witness."""
        return tuple(
            sorted((r.flow.flow_id, r.fct_ps) for r in self.collector.records)
        )


class FctSummary:
    """A portable :class:`FctResult`: the binned table, counts and the FCT
    fingerprint computed eagerly in the worker, no simulator attached.
    Exposes the same surface the figure renderers use (``.table``,
    ``.bins``, ``.completed()``)."""

    def __init__(
        self,
        cc: str,
        workload: str,
        table: SlowdownTable,
        bins: Sequence[int],
        n_flows: int,
        completed: int,
        fingerprint: Tuple[Tuple[int, int], ...],
        events_dispatched: int,
        seed: int,
        frame_hops: int = 0,
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.table = table
        self.bins = list(bins)
        self.n_flows = n_flows
        self._completed = completed
        self._fingerprint = fingerprint
        self.events_dispatched = events_dispatched
        self.seed = seed
        # Frames delivered across any link (in-worker sum of per-port tx
        # counters) — the perf harness's simulated-work unit.
        self.frame_hops = frame_hops

    def completed(self) -> int:
        return self._completed

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        return self._fingerprint


def summarize_fct_result(result: FctResult, seed: int) -> FctSummary:
    from repro.metrics.monitors import topo_frame_hops

    topo = result.topo
    return FctSummary(
        cc=result.cc,
        workload=result.workload,
        table=result.table,
        bins=result.bins,
        n_flows=result.n_flows,
        completed=result.completed(),
        fingerprint=result.fct_fingerprint(),
        events_dispatched=result.sim.events_dispatched,
        seed=seed,
        frame_hops=topo_frame_hops(topo) if topo is not None else 0,
    )


def run_fct_summary(cc: str, seed: int = 1, **kwargs) -> FctSummary:
    """Sweep-spec target: one (CC, workload) cell as a portable summary."""
    return summarize_fct_result(run_fct_experiment(cc, seed=seed, **kwargs), seed)


def run_fct_experiment(
    cc: str,
    workload: str = "websearch",
    k: int = 4,
    load: float = 0.5,
    n_flows: int = 200,
    scale: float = 0.1,
    link_rate_gbps: float = 100.0,
    seed: int = 1,
    max_horizon_ms: float = 50.0,
    bins: Optional[Sequence[int]] = None,
    lb=None,
    **cc_params,
) -> FctResult:
    """Run one (CC, workload) cell of Figs. 14/15.

    ``lb`` selects the load-balancing strategy (name or
    :class:`repro.lb.LbConfig`); None keeps the symmetric-ECMP baseline.

    Runs until every generated flow completes or ``max_horizon_ms`` elapses
    (stragglers under a misbehaving CC should not hang the harness; the
    completion count is part of the result).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {sorted(WORKLOADS)}")
    cdf_fn, default_bins = WORKLOADS[workload]
    cdf: PiecewiseCdf = cdf_fn(scale=scale)
    bins = list(bins) if bins is not None else [round(b * scale) for b in default_bins]

    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    topo = fattree(
        sim,
        k=k,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
        lb=lb,
    )
    env.post_install(topo)
    collector = FctCollector(topo)

    flows = PoissonWorkload(
        n_hosts=len(topo.hosts),
        host_rate_gbps=link_rate_gbps,
        cdf=cdf,
        load=load,
        seeds=seeds,
    ).generate(n_flows)
    launch_flows(topo, flows, env)

    horizon = round(max_horizon_ms * MS)
    chunk = MS // 2
    t = 0
    while collector.completed() < n_flows and t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        if sim.peek() is None:
            break
    return FctResult(cc, workload, collector, bins, n_flows, sim, topo=topo)


def compare_ccs(
    ccs: Sequence[str] = ("dcqcn", "hpcc", "fncc"),
    workload: str = "websearch",
    **kwargs,
) -> Dict[str, FctResult]:
    """One Figs. 14/15 panel family: the same workload under each CC.

    In-process and rich (live collectors/simulators) — monitors and perf
    harnesses use this.  Figure runners go through :func:`compare_ccs_sweep`
    for the pool path.
    """
    return {cc: run_fct_experiment(cc, workload=workload, **kwargs) for cc in ccs}


def compare_ccs_sweep(
    ccs: Sequence[str] = ("dcqcn", "hpcc", "fncc"),
    workload: str = "websearch",
    seed: int = 1,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    **kwargs,
) -> Dict[str, FctSummary]:
    """Pool-capable :func:`compare_ccs`: one spec per CC, portable
    summaries back, reduced in CC order regardless of completion order."""
    specs = [
        RunSpec(
            fn="repro.experiments.fct_experiment:run_fct_summary",
            kwargs=dict(cc=cc, workload=workload, **kwargs),
            key=(workload, cc, seed),
            seed=seed,
        )
        for cc in ccs
    ]
    executor = executor or SweepExecutor(jobs=jobs)
    return {r.value.cc: r.value for r in executor.map(specs)}


def format_panel(
    results: Dict[str, FctResult], column: str, title: str
) -> str:
    """Render one panel (avg / median / p95 / p99) as the paper's rows:
    size bins across, one line per CC."""
    ccs = list(results)
    bins = results[ccs[0]].bins
    lines = [title]
    header = f"{'cc':>8} " + " ".join(f"{_short_size(b):>8}" for b in bins)
    lines.append(header)
    for cc in ccs:
        table = results[cc].table
        cells = []
        for b in bins:
            s = table.stat(b, column)
            cells.append(f"{s:8.2f}" if s is not None else f"{'-':>8}")
        lines.append(f"{cc:>8} " + " ".join(cells))
    return "\n".join(lines)


def _short_size(nbytes: int) -> str:
    if nbytes >= 1_000_000:
        return f"{nbytes / 1_000_000:g}M"
    if nbytes >= 1_000:
        return f"{nbytes / 1_000:g}K"
    return f"{nbytes}B"
