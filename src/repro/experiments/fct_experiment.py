"""The §5.5 large-scale experiment: FCT slowdown on a fat-tree under
Poisson traffic from the WebSearch / FB_Hadoop distributions at 50% load.

Scaling (DESIGN.md): the paper uses k=8 (128 servers) and minutes of
traffic on a C++ simulator.  Pure Python defaults to k=4 (16 servers),
a few hundred flows, and a flow-size ``scale`` < 1; FCT *slowdown* is
normalized so the comparative shape survives.  Full-scale parameters are
plain arguments (``k=8, scale=1.0, n_flows=...``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.metrics.fct import (
    SIZE_BINS_HADOOP,
    SIZE_BINS_WEBSEARCH,
    FctCollector,
    SlowdownTable,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.distributions import fb_hadoop_cdf, websearch_cdf
from repro.traffic.generator import PoissonWorkload
from repro.units import MS, us

WORKLOADS = {
    "websearch": (websearch_cdf, SIZE_BINS_WEBSEARCH),
    "hadoop": (fb_hadoop_cdf, SIZE_BINS_HADOOP),
}


class FctResult:
    """Everything Figs. 14/15 need: the collector and the binned table."""

    def __init__(
        self,
        cc: str,
        workload: str,
        collector: FctCollector,
        bins: Sequence[int],
        n_flows: int,
        sim: Simulator,
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.collector = collector
        self.bins = list(bins)
        self.n_flows = n_flows
        self.sim = sim

    @property
    def table(self) -> SlowdownTable:
        return self.collector.table(self.bins)

    def completed(self) -> int:
        return self.collector.completed()


def run_fct_experiment(
    cc: str,
    workload: str = "websearch",
    k: int = 4,
    load: float = 0.5,
    n_flows: int = 200,
    scale: float = 0.1,
    link_rate_gbps: float = 100.0,
    seed: int = 1,
    max_horizon_ms: float = 50.0,
    bins: Optional[Sequence[int]] = None,
    lb=None,
    **cc_params,
) -> FctResult:
    """Run one (CC, workload) cell of Figs. 14/15.

    ``lb`` selects the load-balancing strategy (name or
    :class:`repro.lb.LbConfig`); None keeps the symmetric-ECMP baseline.

    Runs until every generated flow completes or ``max_horizon_ms`` elapses
    (stragglers under a misbehaving CC should not hang the harness; the
    completion count is part of the result).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {sorted(WORKLOADS)}")
    cdf_fn, default_bins = WORKLOADS[workload]
    cdf: PiecewiseCdf = cdf_fn(scale=scale)
    bins = list(bins) if bins is not None else [round(b * scale) for b in default_bins]

    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    topo = fattree(
        sim,
        k=k,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
        lb=lb,
    )
    env.post_install(topo)
    collector = FctCollector(topo)

    flows = PoissonWorkload(
        n_hosts=len(topo.hosts),
        host_rate_gbps=link_rate_gbps,
        cdf=cdf,
        load=load,
        seeds=seeds,
    ).generate(n_flows)
    launch_flows(topo, flows, env)

    horizon = round(max_horizon_ms * MS)
    chunk = MS // 2
    t = 0
    while collector.completed() < n_flows and t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        if sim.peek() is None:
            break
    return FctResult(cc, workload, collector, bins, n_flows, sim)


def compare_ccs(
    ccs: Sequence[str] = ("dcqcn", "hpcc", "fncc"),
    workload: str = "websearch",
    **kwargs,
) -> Dict[str, FctResult]:
    """One Figs. 14/15 panel family: the same workload under each CC."""
    return {cc: run_fct_experiment(cc, workload=workload, **kwargs) for cc in ccs}


def format_panel(
    results: Dict[str, FctResult], column: str, title: str
) -> str:
    """Render one panel (avg / median / p95 / p99) as the paper's rows:
    size bins across, one line per CC."""
    ccs = list(results)
    bins = results[ccs[0]].bins
    lines = [title]
    header = f"{'cc':>8} " + " ".join(f"{_short_size(b):>8}" for b in bins)
    lines.append(header)
    for cc in ccs:
        table = results[cc].table
        cells = []
        for b in bins:
            s = table.stat(b, column)
            cells.append(f"{s:8.2f}" if s is not None else f"{'-':>8}")
        lines.append(f"{cc:>8} " + " ".join(cells))
    return "\n".join(lines)


def _short_size(nbytes: int) -> str:
    if nbytes >= 1_000_000:
        return f"{nbytes / 1_000_000:g}M"
    if nbytes >= 1_000:
        return f"{nbytes / 1_000:g}K"
    return f"{nbytes}B"
