"""The §5.5 large-scale experiment: FCT slowdown on a fat-tree under
Poisson traffic from the WebSearch / FB_Hadoop distributions at 50% load.

Scaling (DESIGN.md): the paper uses k=8 (128 servers) and minutes of
traffic on a C++ simulator.  Pure Python defaults to k=4 (16 servers),
a few hundred flows, and a flow-size ``scale`` < 1; FCT *slowdown* is
normalized so the comparative shape survives.  Full-scale parameters are
plain arguments (``k=8, scale=1.0, n_flows=...``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import RunSpec, SweepExecutor

from repro.experiments.common import CcEnv, build_cc_env, launch_flows
from repro.metrics.fct import (
    SIZE_BINS_HADOOP,
    SIZE_BINS_WEBSEARCH,
    FctCollector,
    SlowdownTable,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec
from repro.topo.fattree import fattree
from repro.traffic.cdf import PiecewiseCdf
from repro.traffic.distributions import fb_hadoop_cdf, websearch_cdf
from repro.traffic.generator import PoissonWorkload
from repro.units import MS, us

WORKLOADS = {
    "websearch": (websearch_cdf, SIZE_BINS_WEBSEARCH),
    "hadoop": (fb_hadoop_cdf, SIZE_BINS_HADOOP),
}


class FctResult:
    """Everything Figs. 14/15 need: the collector and the binned table."""

    def __init__(
        self,
        cc: str,
        workload: str,
        collector: FctCollector,
        bins: Sequence[int],
        n_flows: int,
        sim: Simulator,
        topo=None,
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.collector = collector
        self.bins = list(bins)
        self.n_flows = n_flows
        self.sim = sim
        # The live fabric (perf harness reads per-port tx counters off it
        # for the frame_hops metric); None for legacy callers.
        self.topo = topo

    @property
    def table(self) -> SlowdownTable:
        return self.collector.table(self.bins)

    def completed(self) -> int:
        return self.collector.completed()

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """(flow_id, fct_ps) pairs, sorted — the determinism witness."""
        return tuple(
            sorted((r.flow.flow_id, r.fct_ps) for r in self.collector.records)
        )


class FctSummary:
    """A portable :class:`FctResult`: the binned table, counts and the FCT
    fingerprint computed eagerly in the worker, no simulator attached.
    Exposes the same surface the figure renderers use (``.table``,
    ``.bins``, ``.completed()``)."""

    def __init__(
        self,
        cc: str,
        workload: str,
        table: SlowdownTable,
        bins: Sequence[int],
        n_flows: int,
        completed: int,
        fingerprint: Tuple[Tuple[int, int], ...],
        events_dispatched: int,
        seed: int,
        frame_hops: int = 0,
        backend: str = "packet",
        obs_snapshot: Optional[dict] = None,
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.table = table
        self.bins = list(bins)
        self.n_flows = n_flows
        self._completed = completed
        self._fingerprint = fingerprint
        self.events_dispatched = events_dispatched
        self.seed = seed
        # Frames delivered across any link (in-worker sum of per-port tx
        # counters) — the perf harness's simulated-work unit.
        self.frame_hops = frame_hops
        # Which simulation backend produced this summary
        # ("packet" | "flow" | "hybrid") — provenance for bench history.
        self.backend = backend
        # Metrics-registry snapshot taken in the worker (plain dict, so it
        # pickles home); merged across workers by
        # :func:`repro.obs.merge_snapshots`.  None when obs was off.
        self.obs_snapshot = obs_snapshot

    def completed(self) -> int:
        return self._completed

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        return self._fingerprint


def summarize_fct_result(
    result: FctResult, seed: int, backend: str = "packet", obs=None
) -> FctSummary:
    from repro.metrics.monitors import topo_frame_hops

    topo = result.topo
    return FctSummary(
        cc=result.cc,
        workload=result.workload,
        table=result.table,
        bins=result.bins,
        n_flows=result.n_flows,
        completed=result.completed(),
        fingerprint=result.fct_fingerprint(),
        events_dispatched=result.sim.events_dispatched if result.sim else 0,
        seed=seed,
        frame_hops=topo_frame_hops(topo) if topo is not None else 0,
        backend=backend,
        obs_snapshot=obs.snapshot() if obs is not None else None,
    )


def run_fct_summary(
    cc: str,
    seed: int = 1,
    backend: str = "packet",
    obs=None,
    obs_snapshot: bool = False,
    **kwargs,
) -> FctSummary:
    """Sweep-spec target: one (CC, workload) cell as a portable summary.

    ``backend`` selects the simulation tier: ``"packet"`` (discrete-event,
    the default), ``"flow"`` (pure max-min fluid) or ``"hybrid"``
    (packet-level only across congested links, DESIGN.md §6).

    ``obs`` is a live :class:`repro.obs.RunObservability` bundle (in-
    process callers only — it is not picklable); ``obs_snapshot=True`` is
    the pool-safe form, building a registry-only bundle *inside* the
    worker so the snapshot rides home on the summary and the reduce step
    can merge snapshots across workers.
    """
    if obs is None and obs_snapshot:
        from repro.obs import MetricsRegistry, RunObservability

        obs = RunObservability(registry=MetricsRegistry())
    if backend == "packet":
        return summarize_fct_result(
            run_fct_experiment(cc, seed=seed, obs=obs, **kwargs), seed, obs=obs
        )
    # Deferred import: repro.hybrid.backend imports this module.
    from repro.hybrid.backend import run_fct_hybrid

    if backend == "flow":
        result = run_fct_hybrid(cc, seed=seed, threshold=None, obs=obs, **kwargs)
    elif backend == "hybrid":
        result = run_fct_hybrid(cc, seed=seed, obs=obs, **kwargs)
    else:
        raise ValueError(
            f"backend must be one of ('packet', 'flow', 'hybrid'), got {backend!r}"
        )
    return summarize_fct_result(result, seed, backend=backend, obs=obs)


class FctFabric:
    """One fully-built (CC, workload) cell, flows generated but *not*
    launched: the shared substrate of the packet experiment and the hybrid
    backend's packet phases (which launch only the demoted subset on it)."""

    __slots__ = ("sim", "topo", "env", "collector", "flows", "bins", "cdf")

    def __init__(self, sim, topo, env, collector, flows, bins, cdf) -> None:
        self.sim = sim
        self.topo = topo
        self.env = env
        self.collector = collector
        self.flows = flows
        self.bins = bins
        self.cdf = cdf


def build_fct_fabric(
    cc: str,
    workload: str = "websearch",
    k: int = 4,
    load: float = 0.5,
    n_flows: int = 200,
    scale: float = 0.1,
    link_rate_gbps: float = 100.0,
    seed: int = 1,
    bins: Optional[Sequence[int]] = None,
    lb=None,
    **cc_params,
) -> FctFabric:
    """Build the §5.5 fabric + workload for one cell; deterministic in
    ``seed`` (every RNG stream is name-derived, so two fabrics built with
    the same arguments generate byte-identical flow lists and routing)."""
    if workload not in WORKLOADS:
        raise ValueError(f"workload must be one of {sorted(WORKLOADS)}")
    cdf_fn, default_bins = WORKLOADS[workload]
    cdf: PiecewiseCdf = cdf_fn(scale=scale)
    bins = list(bins) if bins is not None else [round(b * scale) for b in default_bins]

    sim = Simulator()
    seeds = SeedSequenceFactory(seed)
    env: CcEnv = build_cc_env(cc, link_rate_gbps=link_rate_gbps, **cc_params)
    topo = fattree(
        sim,
        k=k,
        link=LinkSpec(rate_gbps=link_rate_gbps, prop_delay_ps=us(1.5)),
        switch_config=env.switch_config,
        seeds=seeds,
        cnp_enabled=env.cnp_enabled,
        lb=lb,
    )
    env.post_install(topo)
    collector = FctCollector(topo)

    flows = PoissonWorkload(
        n_hosts=len(topo.hosts),
        host_rate_gbps=link_rate_gbps,
        cdf=cdf,
        load=load,
        seeds=seeds,
    ).generate(n_flows)
    return FctFabric(sim, topo, env, collector, flows, bins, cdf)


def drive_fct(
    sim: Simulator,
    collector: FctCollector,
    n_flows: int,
    max_horizon_ms: float,
    progress=None,
) -> None:
    """Chunked drive loop: run until every launched flow completes or the
    horizon elapses (stragglers under a misbehaving CC should not hang the
    harness; the completion count is part of the result).

    ``progress`` (a :class:`repro.obs.ProgressReporter`) heartbeats once
    per chunk, wall-clock rate-limited; the first chunk is forced so even
    a short run prints at least one line.
    """
    horizon = round(max_horizon_ms * MS)
    chunk = MS // 2
    t = 0
    first = True
    while collector.completed() < n_flows and t < horizon:
        t = min(t + chunk, horizon)
        sim.run(until=t)
        if progress is not None:
            progress.tick(
                sim,
                completed=collector.completed(),
                total=n_flows,
                horizon_ps=horizon,
                force=first,
            )
            first = False
        if sim.peek() is None:
            break
    if progress is not None:
        progress.finish(sim, completed=collector.completed(), total=n_flows)


def run_fct_experiment(
    cc: str,
    workload: str = "websearch",
    max_horizon_ms: float = 50.0,
    obs=None,
    faults=None,
    **kwargs,
) -> FctResult:
    """Run one (CC, workload) cell of Figs. 14/15.

    ``lb`` selects the load-balancing strategy (name or
    :class:`repro.lb.LbConfig`); None keeps the symmetric-ECMP baseline.
    ``obs`` attaches a :class:`repro.obs.RunObservability` bundle to the
    cell (registry snapshot, trace hooks, flight guard, progress) —
    registry/tracer observability is byte-identical and train-safe
    (``tests/obs`` pins it).  ``faults`` arms a
    :class:`repro.faults.FaultPlan` against the freshly built fabric
    before any flow launches; None (and the no-op plan) is provably
    zero-perturbation (``tools/bench.py --ab-faults``).  See
    :func:`build_fct_fabric` for the remaining knobs.
    """
    fab = build_fct_fabric(cc, workload=workload, **kwargs)
    if faults is not None:
        from repro.faults import FaultInjector

        FaultInjector(faults).arm(
            fab.sim,
            fab.topo,
            seeds=fab.topo.seeds,
            registry=getattr(obs, "registry", None),
            tracer=getattr(obs, "tracer", None),
        )
    if obs is None:
        launch_flows(fab.topo, fab.flows, fab.env)
        drive_fct(fab.sim, fab.collector, len(fab.flows), max_horizon_ms)
    else:
        obs.attach(fab.sim, fab.topo, collector=fab.collector)
        with obs.guard(sim=fab.sim, topo=fab.topo):
            launch_flows(fab.topo, fab.flows, fab.env)
            drive_fct(
                fab.sim,
                fab.collector,
                len(fab.flows),
                max_horizon_ms,
                progress=obs.progress,
            )
    return FctResult(
        cc, workload, fab.collector, fab.bins, len(fab.flows), fab.sim, topo=fab.topo
    )


def compare_ccs(
    ccs: Sequence[str] = ("dcqcn", "hpcc", "fncc"),
    workload: str = "websearch",
    **kwargs,
) -> Dict[str, FctResult]:
    """One Figs. 14/15 panel family: the same workload under each CC.

    In-process and rich (live collectors/simulators) — monitors and perf
    harnesses use this.  Figure runners go through :func:`compare_ccs_sweep`
    for the pool path.
    """
    return {cc: run_fct_experiment(cc, workload=workload, **kwargs) for cc in ccs}


def compare_ccs_sweep(
    ccs: Sequence[str] = ("dcqcn", "hpcc", "fncc"),
    workload: str = "websearch",
    seed: int = 1,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    **kwargs,
) -> Dict[str, FctSummary]:
    """Pool-capable :func:`compare_ccs`: one spec per CC, portable
    summaries back, reduced in CC order regardless of completion order."""
    specs = [
        RunSpec(
            fn="repro.experiments.fct_experiment:run_fct_summary",
            kwargs=dict(cc=cc, workload=workload, **kwargs),
            key=(workload, cc, seed),
            seed=seed,
        )
        for cc in ccs
    ]
    executor = executor or SweepExecutor(jobs=jobs)
    return {r.value.cc: r.value for r in executor.map(specs)}


def format_panel(
    results: Dict[str, FctResult], column: str, title: str
) -> str:
    """Render one panel (avg / median / p95 / p99) as the paper's rows:
    size bins across, one line per CC."""
    ccs = list(results)
    bins = results[ccs[0]].bins
    lines = [title]
    header = f"{'cc':>8} " + " ".join(f"{_short_size(b):>8}" for b in bins)
    lines.append(header)
    for cc in ccs:
        table = results[cc].table
        cells = []
        for b in bins:
            s = table.stat(b, column)
            cells.append(f"{s:8.2f}" if s is not None else f"{'-':>8}")
        lines.append(f"{cc:>8} " + " ".join(cells))
    return "\n".join(lines)


def _short_size(nbytes: int) -> str:
    if nbytes >= 1_000_000:
        return f"{nbytes / 1_000_000:g}M"
    if nbytes >= 1_000:
        return f"{nbytes / 1_000:g}K"
    return f"{nbytes}B"
