"""Fig. 1a — NVIDIA Spectrum switch trends: buffer size is not keeping up
with capacity, so the burst-absorption time (buffer/capacity) keeps
shrinking.  A static dataset, reproduced for completeness."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traffic.distributions import NVIDIA_SWITCH_TRENDS, buffer_per_capacity_us


def run_fig1a() -> List[Tuple[str, float, float, float]]:
    """Rows of (generation, capacity Tb/s, buffer MB, absorption µs),
    ordered by capacity."""
    rows = []
    for name, d in NVIDIA_SWITCH_TRENDS.items():
        rows.append(
            (
                name,
                d["capacity_tbps"],
                d["buffer_mb"],
                buffer_per_capacity_us(d["capacity_tbps"], d["buffer_mb"]),
            )
        )
    rows.sort(key=lambda r: r[1])
    return rows


def absorption_is_shrinking(rows=None) -> bool:
    """The figure's point: burst-absorption time trends down as capacity
    grows.  (The real data is not strictly monotonic — Spectrum-2 briefly
    improved — so the claim is a negative trend: least-squares slope of
    absorption time over capacity is negative, and the newest generation is
    well below the oldest.)"""
    rows = rows or run_fig1a()
    caps = [r[1] for r in rows]
    times = [r[3] for r in rows]
    n = len(rows)
    mean_c = sum(caps) / n
    mean_t = sum(times) / n
    slope_num = sum((c - mean_c) * (t - mean_t) for c, t in zip(caps, times))
    return slope_num < 0 and times[-1] < times[0]


def main() -> None:
    rows = run_fig1a()
    print("Fig 1a — buffer/capacity trend (NVIDIA Spectrum)")
    print(f"{'generation':>22} {'Tb/s':>6} {'buf MB':>7} {'us':>7}")
    for name, cap, buf, t in rows:
        print(f"{name:>22} {cap:6.1f} {buf:7.1f} {t:7.2f}")
    print(f"monotonically shrinking: {absorption_is_shrinking(rows)}")


if __name__ == "__main__":  # pragma: no cover
    main()
