"""Fig. 3 — PFC pause frames at the congestion point at 200 and 400 Gb/s.

The paper: DCQCN and HPCC trigger more pause frames than FNCC at both
rates (FNCC's shallow queues stay under the 500 KB PFC threshold).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import run_microbench
from repro.units import KB

RATES_GBPS = (200.0, 400.0)
CCS = ("dcqcn", "hpcc", "fncc")


def run_fig3(
    rates: Sequence[float] = RATES_GBPS,
    ccs: Sequence[str] = CCS,
    pfc_xoff: int = 500 * KB,
    duration_us: float = 600.0,
    seed: int = 1,
) -> Dict[float, Dict[str, int]]:
    """Pause-frame counts per (rate, cc)."""
    out: Dict[float, Dict[str, int]] = {}
    for rate in rates:
        out[rate] = {}
        for cc in ccs:
            r = run_microbench(
                cc,
                link_rate_gbps=rate,
                pfc_xoff=pfc_xoff,
                duration_us=duration_us,
                seed=seed,
            )
            out[rate][cc] = r.pause_frames
    return out


def main() -> None:
    counts = run_fig3()
    print("Fig 3 — pause frames at the congestion point")
    print(f"{'rate':>8} " + " ".join(f"{cc:>7}" for cc in CCS))
    for rate, per_cc in counts.items():
        print(f"{rate:6.0f}G  " + " ".join(f"{per_cc[cc]:7d}" for cc in CCS))


if __name__ == "__main__":  # pragma: no cover
    main()
