"""The abstract's headline numbers, derived from the Fig. 14/15 runs:

* "FNCC reduces flow completion time by 27.4% and 88.9% compared to HPCC
  and DCQCN" — 95th-percentile slowdown, flows < 100 KB, FB_Hadoop.
* "for flows larger than 1 MB, FNCC can reduce congestion by up to 12.4%
  compared to HPCC and 42.8% compared to DCQCN" — median slowdown,
  WebSearch.
* "FNCC triggers minimal pause frames and maintains high utilization even
  at 400Gbps" — from the Fig. 3 / Fig. 9 micro-benchmarks.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import run_microbench
from repro.experiments.fig14_websearch import long_flow_median_reduction, run_fig14
from repro.experiments.fig15_hadoop import run_fig15, short_flow_p95_reduction
from repro.units import us


def run_headline(seed: int = 1, n_flows: int = 200, jobs: int = 1) -> Dict[str, object]:
    websearch = run_fig14(n_flows=n_flows, seed=seed, jobs=jobs)
    hadoop = run_fig15(n_flows=max(n_flows, 300), seed=seed, jobs=jobs)
    micro400 = {
        cc: run_microbench(cc, link_rate_gbps=400.0, duration_us=600.0, seed=seed)
        for cc in ("fncc", "hpcc", "dcqcn")
    }
    return {
        "hadoop_p95_reduction": short_flow_p95_reduction(hadoop),
        "websearch_median_reduction": long_flow_median_reduction(
            websearch, round(1_000_000 * 0.1)
        ),
        "pause_frames_400g": {cc: r.pause_frames for cc, r in micro400.items()},
        "utilization_400g": {
            cc: r.utilization.mean_after(us(100)) for cc, r in micro400.items()
        },
    }


def main(jobs: int = 1, seed: int = 1) -> None:
    res = run_headline(seed=seed, jobs=jobs)
    print("Headline claims (paper -> measured)")
    hp = res["hadoop_p95_reduction"]
    print(
        f"  Hadoop <100KB p95 FCT reduction: paper 27.4% vs HPCC / 88.9% vs DCQCN"
        f" -> measured {hp.get('hpcc', float('nan')):.1f}% / {hp.get('dcqcn', float('nan')):.1f}%"
    )
    ws = res["websearch_median_reduction"]
    print(
        f"  WebSearch >1MB median reduction: paper 12.4% vs HPCC / 42.8% vs DCQCN"
        f" -> measured {ws.get('hpcc', float('nan')):.1f}% / {ws.get('dcqcn', float('nan')):.1f}%"
    )
    print(f"  pause frames @400G: {res['pause_frames_400g']}")
    print(
        "  utilization @400G: "
        + ", ".join(f"{cc}={u:.3f}" for cc, u in res["utilization_400g"].items())
    )


if __name__ == "__main__":  # pragma: no cover
    main()
