"""Related-work shoot-out (§6): all six CC schemes on the same
micro-benchmark, including the Timely/Swift extensions the paper discusses
but does not plot."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import MicrobenchResult, run_microbench
from repro.experiments.fig9_microbench import response_time_us
from repro.units import KB, us

ALL_CCS = ("fncc", "hpcc", "dcqcn", "rocc", "timely", "swift")


def run_related_work(
    ccs: Sequence[str] = ALL_CCS,
    link_rate_gbps: float = 100.0,
    duration_us: float = 700.0,
    seed: int = 1,
) -> Dict[str, MicrobenchResult]:
    return {
        cc: run_microbench(
            cc, link_rate_gbps=link_rate_gbps, duration_us=duration_us, seed=seed
        )
        for cc in ccs
    }


def main() -> None:
    results = run_related_work()
    print("Related-work comparison — two elephants, 100 Gb/s dumbbell")
    print(f"{'cc':>7} {'peakQ(KB)':>10} {'respond(us)':>12} {'util':>6} {'pauses':>7}")
    for cc, r in results.items():
        resp = response_time_us(r)
        print(
            f"{cc:>7} {r.peak_queue_bytes / KB:10.1f} "
            f"{resp if resp is not None else -1:12.1f} "
            f"{r.utilization.mean_after(us(100)):6.3f} {r.pause_frames:7d}"
        )
    try:
        from repro.viz import compare_series

        print("\nqueue-length sparklines (shared scale, KB):")
        print(
            compare_series(
                {cc: r.queue for cc, r in results.items()},
                y_scale=1 / KB,
                unit="KB",
            )
        )
    except Exception:  # pragma: no cover - viz is cosmetic
        pass


if __name__ == "__main__":  # pragma: no cover
    main()
