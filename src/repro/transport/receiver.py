"""The receiver context — ACK Generation Point (§3.2.3) and DCQCN NP.

One :class:`ReceiverQP` exists per inbound flow.  It generates cumulative
ACKs (per packet, or one per ``m`` packets — the paper's cumulative-ACK
scheme), echoes the INT stack for HPCC, writes the concurrent-flow count
``N`` for FNCC, and runs DCQCN's notification-point CNP pacing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.packet import ACK, CNP, Packet
from repro.net.switch import INT_RECORD_BYTES
from repro.units import ACK_SIZE, CNP_SIZE, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.transport.flow import Flow

#: DCQCN NP: at most one CNP per flow per this interval (Zhu et al., §4).
DEFAULT_CNP_INTERVAL_PS = us(50)


class ReceiverQP:
    """Per-flow receive state at the destination host."""

    __slots__ = (
        "host",
        "flow",
        "rcv_nxt",
        "ack_every",
        "_unacked_pkts",
        "completed",
        "finish_ps",
        "cnp_enabled",
        "cnp_interval_ps",
        "_last_cnp_ps",
        "_pool",
        "_nic",
        "data_packets",
        "dup_acks_sent",
    )

    def __init__(
        self,
        host: "Host",
        flow: "Flow",
        ack_every: int = 1,
        cnp_enabled: bool = False,
        cnp_interval_ps: int = DEFAULT_CNP_INTERVAL_PS,
    ) -> None:
        self.host = host
        self._pool = host.pkt_pool
        self._nic = None  # bound lazily: hosts may be wired after flow setup
        self.flow = flow
        self.rcv_nxt = 0
        self.ack_every = ack_every
        self._unacked_pkts = 0
        self.completed = False
        self.finish_ps: Optional[int] = None
        self.cnp_enabled = cnp_enabled
        self.cnp_interval_ps = cnp_interval_ps
        self._last_cnp_ps = -(1 << 62)
        self.data_packets = 0
        self.dup_acks_sent = 0

    def on_data(self, pkt: Packet) -> None:
        """Consume one DATA frame.  This is the frame's terminal sink: after
        the ACK (which may alias ``pkt.int_records``) is built, the packet
        shell is recycled into the host's pool."""
        self.data_packets += 1
        if self.cnp_enabled and pkt.ecn:
            self._maybe_send_cnp()
        if pkt.seq != self.rcv_nxt:
            # Out of order (possible only after a drop): duplicate cumulative
            # ACK so go-back-N recovery can kick in.
            self.dup_acks_sent += 1
            self._send_ack(pkt, force=True)
            self._pool.release(pkt)
            return
        self.rcv_nxt += pkt.payload
        done = pkt.last
        if done and not self.completed:
            self.completed = True
            self.finish_ps = self.host.sim.now
            self.host.on_flow_received(self)
        self._unacked_pkts += 1
        if done or self._unacked_pkts >= self.ack_every:
            self._send_ack(pkt)
        self._pool.release(pkt)

    # -- ACK construction ----------------------------------------------------------
    def _send_ack(self, data_pkt: Packet, force: bool = False) -> None:
        if not force:
            self._unacked_pkts = 0
        flow = self.flow
        # Positional acquire (kind, flow_id, src, dst, seq, size, payload,
        # priority); src/dst reversed — the ACK travels back to the sender.
        ack = self._pool.acquire(
            ACK,
            flow.flow_id,
            flow.dst,
            flow.src,
            self.rcv_nxt,
            ACK_SIZE,
            0,
            flow.priority,
        )
        ack.last = self.completed
        ack.ecn_echo = data_pkt.ecn
        ack.echo_sent_ts = data_pkt.sent_ts
        # HPCC: the receiver copies the request path's INT stack into the ACK.
        if data_pkt.int_records:
            ack.int_records = data_pkt.int_records
            ack.size += INT_RECORD_BYTES * len(data_pkt.int_records)
        # FNCC §3.2.3: N = number of concurrent inbound flows (QP connections).
        # (active_inbound_flows() inlined: never less than 1 when ACKing.)
        n = self.host._active_inbound
        ack.n_flows = n if n > 1 else 1
        nic = self._nic
        if nic is None:
            nic = self._nic = self.host.ports[0]
        nic.enqueue(ack)  # Host.transmit, inlined

    # -- DCQCN notification point -----------------------------------------------------
    def _maybe_send_cnp(self) -> None:
        now = self.host.sim.now
        if now - self._last_cnp_ps < self.cnp_interval_ps:
            return
        self._last_cnp_ps = now
        cnp = self.host.pkt_pool.acquire(
            CNP,
            flow_id=self.flow.flow_id,
            src=self.flow.dst,
            dst=self.flow.src,
            size=CNP_SIZE,
            priority=self.flow.priority,
        )
        self.host.transmit(cnp)
