"""The receiver context — ACK Generation Point (§3.2.3) and DCQCN NP.

One :class:`ReceiverQP` exists per inbound flow.  It generates cumulative
ACKs (per packet, or one per ``m`` packets — the paper's cumulative-ACK
scheme), echoes the INT stack for HPCC, writes the concurrent-flow count
``N`` for FNCC, and runs DCQCN's notification-point CNP pacing.

Reorder tolerance
-----------------
With a reordering load balancer installed (spray / flowlet / ConWeave-lite,
see :mod:`repro.lb`), packets of one flow may arrive out of order without
any loss having occurred.  When ``TransportConfig.reorder_window_bytes`` is
nonzero the QP absorbs such arrivals in a bounded out-of-order buffer and
delivers to the QP strictly in order:

* An arrival beyond ``rcv_nxt`` but inside the window is buffered
  *silently* — no duplicate ACK, because the hole is expected to fill from
  another path, and spurious dup-ACK storms would double ACK-path load
  under spray.  The cumulative ACK covering the buffered bytes goes out
  when the hole fills and the buffer drains.
* An arrival past the window (or when the buffer holds
  ``reorder_max_pkts`` frames) is dropped with a duplicate cumulative ACK —
  exactly the signal the strict in-order path has always produced, so
  go-back-N recovery semantics are unchanged.
* Stale arrivals (``seq < rcv_nxt``: retransmissions after a timeout
  rewind) produce the classic duplicate ACK, window or not.
* CNP generation keys on the *arrival* of a CE-marked frame, before any
  buffering — congestion feedback timeliness does not depend on delivery
  order.

ConWeave-lite epochs: a packet flagged ``lb_tail`` is the last frame of a
rerouted epoch's old path.  When a tail for epoch ``e`` is *delivered in
order* while the buffer still holds frames, and the frame just past the
remaining hole belongs to epoch ``e+1`` (same FIFO path as the hole's
bytes), the hole cannot be in-flight reordering — the QP emits one
duplicate ACK as a loss hint (``tail_loss_hints``).  A newer epoch past
the hole leaves open the possibility of an intermediate epoch draining a
slower path, so no hint fires (double reroutes never cause spurious
retransmission).  Because ``install_lb`` arms the sender's
``dupack_rewind`` alongside the reorder window, that single duplicate ACK
triggers go-back-N immediately instead of waiting for a timeout.  A lost
tail marker degrades gracefully: delivery is seq-driven, so the buffer
drains normally once the hole fills by retransmission; the marker only
accelerates loss detection.

Ownership (DESIGN.md §hot-path): a buffered frame is owned by the reorder
buffer from arrival to in-order delivery; it is recycled into the host's
pool only after the ACK that may alias its ``int_records`` is built.

Frame trains (DESIGN.md §2.2): hosts are *train-opaque* — the port layer's
fused delivery pipeline never fuses into a host, so a train arriving at
the last hop unrolls to per-frame ``on_data`` calls automatically.  Every
ACK, CNP and reorder decision therefore observes exactly the per-frame
arrival sequence whether trains are on or off; nothing in this module
needs to split anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.net.packet import ACK, CNP, Packet
from repro.net.switch import INT_RECORD_BYTES
from repro.units import ACK_SIZE, CNP_SIZE, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.transport.flow import Flow

#: DCQCN NP: at most one CNP per flow per this interval (Zhu et al., §4).
DEFAULT_CNP_INTERVAL_PS = us(50)


class ReceiverQP:
    """Per-flow receive state at the destination host."""

    __slots__ = (
        "host",
        "flow",
        "rcv_nxt",
        "ack_every",
        "_unacked_pkts",
        "completed",
        "finish_ps",
        "cnp_enabled",
        "cnp_interval_ps",
        "_last_cnp_ps",
        "_pool",
        "_nic",
        "data_packets",
        "dup_acks_sent",
        "reorder_window_bytes",
        "reorder_max_pkts",
        "_ooo",
        "_ooo_bytes",
        "ooo_buffered",
        "ooo_delivered",
        "ooo_overflows",
        "ooo_duplicates",
        "reroute_tails",
        "tail_loss_hints",
        "max_epoch_seen",
        "_last_tail_tag",
    )

    def __init__(
        self,
        host: "Host",
        flow: "Flow",
        ack_every: int = 1,
        cnp_enabled: bool = False,
        cnp_interval_ps: int = DEFAULT_CNP_INTERVAL_PS,
        reorder_window_bytes: int = 0,
        reorder_max_pkts: int = 512,
    ) -> None:
        self.host = host
        self._pool = host.pkt_pool
        self._nic = None  # bound lazily: hosts may be wired after flow setup
        self.flow = flow
        self.rcv_nxt = 0
        self.ack_every = ack_every
        self._unacked_pkts = 0
        self.completed = False
        self.finish_ps: Optional[int] = None
        self.cnp_enabled = cnp_enabled
        self.cnp_interval_ps = cnp_interval_ps
        self._last_cnp_ps = -(1 << 62)
        self.data_packets = 0
        self.dup_acks_sent = 0
        # Out-of-order buffer (reorder-tolerant receive; 0 = strict order).
        # The window check bounds occupancy by construction (every buffered
        # seq lies in [rcv_nxt, rcv_nxt + window)); _ooo_bytes is the
        # occupancy gauge monitors and leak tests read, not a limiter.
        self.reorder_window_bytes = reorder_window_bytes
        self.reorder_max_pkts = reorder_max_pkts
        self._ooo: Dict[int, Packet] = {}
        self._ooo_bytes = 0
        self.ooo_buffered = 0
        self.ooo_delivered = 0
        self.ooo_overflows = 0
        self.ooo_duplicates = 0
        self.reroute_tails = 0
        self.tail_loss_hints = 0
        self.max_epoch_seen = -1
        self._last_tail_tag = -1  # epoch of the last in-order tail marker

    def on_data(self, pkt: Packet) -> None:
        """Consume one DATA frame.  In-order frames (and buffered frames
        becoming in-order) are delivered to the QP; the QP is each frame's
        terminal sink — after the ACK (which may alias ``pkt.int_records``)
        is built, the packet shell is recycled into the host's pool."""
        self.data_packets += 1
        if self.cnp_enabled and pkt.ecn:
            self._maybe_send_cnp()
        if pkt.lb_tag > self.max_epoch_seen:
            self.max_epoch_seen = pkt.lb_tag
        if pkt.seq != self.rcv_nxt:
            if self.reorder_window_bytes == 0:
                # Strict in-order mode (possible only after a drop):
                # duplicate cumulative ACK so go-back-N can kick in.
                self.dup_acks_sent += 1
                self._send_ack(pkt, force=True)
                self._pool.release(pkt)
                return
            self._on_out_of_order(pkt)
            return
        tails_before = self.reroute_tails
        self._deliver(pkt)
        if self._ooo:
            self._drain()
            if self._ooo and self.reroute_tails > tails_before:
                # A rerouted epoch's tail (epoch e) drained in order, yet a
                # hole still holds buffered frames back.  Loss is provable
                # only when the frame just past the hole belongs to epoch
                # e+1: the hole's bytes then rode the *same* (FIFO) path as
                # that frame, so they cannot still be in flight.  A newer
                # epoch past the hole means an intermediate epoch may
                # simply be draining a slower path — no hint then (a
                # double reroute must not trigger spurious go-back-N).
                nxt = self._ooo[min(self._ooo)]
                if nxt.lb_tag == self._last_tail_tag + 1:
                    self.tail_loss_hints += 1
                    self.dup_acks_sent += 1
                    self._send_ack(None, force=True, nack=True)

    # -- reorder buffer ------------------------------------------------------------
    def _on_out_of_order(self, pkt: Packet) -> None:
        seq = pkt.seq
        rcv_nxt = self.rcv_nxt
        if seq < rcv_nxt:
            # Stale (timeout-rewound retransmission): classic dup ACK,
            # NACK-flagged so an armed sender treats it as a retransmit
            # request even when ACK coalescing hides the duplicate seq.
            self.dup_acks_sent += 1
            self._send_ack(pkt, force=True, nack=True)
            self._pool.release(pkt)
            if self._ooo:
                # A rewind is replaying old bytes; any buffered copies the
                # replay already overtook are dead — purge here (the rare
                # recovery path) so the buffer cannot pin released frames.
                self._purge_stale()
            return
        ooo = self._ooo
        if seq in ooo:
            # Same frame arrived twice (retransmitted overlap); the first
            # copy stays authoritative.
            self.ooo_duplicates += 1
            self._pool.release(pkt)
            return
        if (
            seq + pkt.payload > rcv_nxt + self.reorder_window_bytes
            or len(ooo) >= self.reorder_max_pkts
        ):
            # Window overflow: the frame is dropped, so request go-back-N
            # with a NACK-flagged duplicate cumulative ACK.
            self.ooo_overflows += 1
            self.dup_acks_sent += 1
            self._send_ack(pkt, force=True, nack=True)
            self._pool.release(pkt)
            return
        ooo[seq] = pkt
        self._ooo_bytes += pkt.payload
        self.ooo_buffered += 1

    def _drain(self) -> None:
        """Deliver buffered frames that have become in-order.  Delivery is
        an exact-seq pop: arrivals and retransmissions segment on the same
        payload grid, so a buffered frame is always popped, never skipped
        (stale copies are purged on the stale-arrival path instead — this
        loop stays O(1) per delivered frame)."""
        ooo = self._ooo
        while True:
            pkt = ooo.pop(self.rcv_nxt, None)
            if pkt is None:
                break
            self._ooo_bytes -= pkt.payload
            self.ooo_delivered += 1
            self._deliver(pkt)

    def _purge_stale(self) -> None:
        """Drop buffered copies a rewind's replay has overtaken."""
        ooo = self._ooo
        stale = [s for s in ooo if s < self.rcv_nxt]
        for s in stale:
            dead = ooo.pop(s)
            self._ooo_bytes -= dead.payload
            self.ooo_duplicates += 1
            self._pool.release(dead)

    def _deliver(self, pkt: Packet) -> None:
        """In-order delivery to the QP (the original on_data body)."""
        self.rcv_nxt += pkt.payload
        done = pkt.last
        if done and not self.completed:
            self.completed = True
            self.finish_ps = self.host.sim.now
            self.host.on_flow_received(self)
        self._unacked_pkts += 1
        if done or self._unacked_pkts >= self.ack_every:
            self._send_ack(pkt)
        if pkt.lb_tail:
            self.reroute_tails += 1
            self._last_tail_tag = pkt.lb_tag
        self._pool.release(pkt)

    # -- ACK construction ----------------------------------------------------------
    def _send_ack(
        self, data_pkt: Optional[Packet], force: bool = False, nack: bool = False
    ) -> None:
        """``data_pkt=None`` builds a gratuitous cumulative ACK with no echo
        fields (the tail-drained loss hint); ``nack`` flags the ACK as an
        explicit retransmit request for the sender's fast rewind."""
        if not force:
            self._unacked_pkts = 0
        flow = self.flow
        # Positional acquire (kind, flow_id, src, dst, seq, size, payload,
        # priority); src/dst reversed — the ACK travels back to the sender.
        ack = self._pool.acquire(
            ACK,
            flow.flow_id,
            flow.dst,
            flow.src,
            self.rcv_nxt,
            ACK_SIZE,
            0,
            flow.priority,
        )
        ack.last = self.completed
        if nack:
            ack.lb_tail = True  # ACK-side meaning: NACK (see packet.py)
        if data_pkt is not None:
            ack.ecn_echo = data_pkt.ecn
            ack.echo_sent_ts = data_pkt.sent_ts
            # HPCC: the receiver copies the request path's INT stack into
            # the ACK.
            if data_pkt.int_records:
                ack.int_records = data_pkt.int_records
                ack.size += INT_RECORD_BYTES * len(data_pkt.int_records)
        # FNCC §3.2.3: N = number of concurrent inbound flows (QP connections).
        # (active_inbound_flows() inlined: never less than 1 when ACKing.)
        n = self.host._active_inbound
        ack.n_flows = n if n > 1 else 1
        nic = self._nic
        if nic is None:
            nic = self._nic = self.host.ports[0]
        nic.enqueue(ack)  # Host.transmit, inlined

    # -- DCQCN notification point -----------------------------------------------------
    def _maybe_send_cnp(self) -> None:
        now = self.host.sim.now
        if now - self._last_cnp_ps < self.cnp_interval_ps:
            return
        self._last_cnp_ps = now
        cnp = self.host.pkt_pool.acquire(
            CNP,
            flow_id=self.flow.flow_id,
            src=self.flow.dst,
            dst=self.flow.src,
            size=CNP_SIZE,
            priority=self.flow.priority,
        )
        self.host.transmit(cnp)
