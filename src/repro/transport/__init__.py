"""RDMA-style reliable transport (QPs) on top of the lossless fabric.

* :mod:`repro.transport.flow` — flow descriptors and lifecycle records.
* :mod:`repro.transport.sender` — window-limited, paced sender QP
  (Reaction Point).  Congestion control is pluggable via
  :class:`repro.cc.base.CongestionControl`.
* :mod:`repro.transport.receiver` — per-flow receiver context: cumulative
  ACK generation (per-packet or every *m* packets), INT echo (HPCC mode),
  the FNCC ``N`` field, and DCQCN's CNP notification point.
"""

from repro.transport.flow import Flow, FlowRecord
from repro.transport.sender import SenderQP, TransportConfig
from repro.transport.receiver import ReceiverQP

__all__ = ["Flow", "FlowRecord", "SenderQP", "TransportConfig", "ReceiverQP"]
