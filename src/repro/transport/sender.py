"""The sender QP — the Reaction Point (RP) of the paper.

The QP packetizes the message into MTU-sized frames, paces them at the CC
module's rate ``R = W/T`` and (for window-based CCs) caps in-flight bytes at
``W``.  Reliability is go-back-N: out-of-order arrivals trigger duplicate
cumulative ACKs, and a retransmission timeout rolls ``snd_nxt`` back to
``snd_una``.  On a PFC-lossless fabric the timeout should never fire; tests
exercise it by disabling PFC and shrinking switch buffers.

With a reorder-tolerant receiver (``TransportConfig.reorder_window_bytes``)
duplicate ACKs become *rare and meaningful* — the receiver absorbs ordinary
multipath reordering silently — so ``dupack_rewind`` additionally arms a
fast go-back-N rewind on consecutive duplicate ACKs, rate-limited to one
per base RTT.  ``repro.lb.install_lb`` enables it alongside the reorder
window; the strict-order default keeps timeout-only recovery.

Frame trains (DESIGN.md §2.2): a window burst paced at a steady rate puts
back-to-back same-flow frames on the wire — exactly the trains the port
layer's fused delivery pipeline rides downstream.  The sender contributes
the formation side only (the pacing-gap memo keeps burst emission cheap
without moving a single timestamp); delivery and ACK processing stay
strictly per-frame, so ACK clocking, CC window updates and retransmission
semantics are untouched by the trains toggle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import DATA, Packet
from repro.sim.timer import Timer
from repro.units import DEFAULT_MTU

if TYPE_CHECKING:  # pragma: no cover
    from repro.cc.base import CongestionControl
    from repro.net.host import Host
    from repro.transport.flow import Flow

#: Ethernet + IPv4 + UDP + IB BTH + iCRC + FCS overhead per frame.
HEADER_BYTES = 48

#: Jitterless exponential RTO backoff: the effective timeout doubles per
#: consecutive timeout, capped at ``initial << RETX_BACKOFF_CAP`` (64x).
#: No randomized jitter — deterministic replay is the repo's contract;
#: per-flow start offsets already desynchronize retransmissions.
RETX_BACKOFF_CAP = 6
#: Consecutive-timeout budget before a flow degrades to the flow-failed
#: terminal state; 0 = retransmit forever (the seed's behavior).
RETX_MAX_TIMEOUTS = 0


class TransportConfig:
    """Knobs shared by every QP on a host."""

    __slots__ = (
        "mtu",
        "header_bytes",
        "ack_every",
        "retx_timeout_ps",
        "retx_backoff_cap",
        "retx_max_timeouts",
        "window_limited",
        "reorder_window_bytes",
        "reorder_max_pkts",
        "dupack_rewind",
    )

    def __init__(
        self,
        mtu: int = DEFAULT_MTU,
        header_bytes: int = HEADER_BYTES,
        ack_every: int = 1,
        retx_timeout_ps: int = 0,  # 0 = disabled (lossless fabric default)
        retx_backoff_cap: int = RETX_BACKOFF_CAP,
        retx_max_timeouts: int = RETX_MAX_TIMEOUTS,
        window_limited: bool = True,
        reorder_window_bytes: int = 0,  # 0 = strict in-order (dup-ACK on OOO)
        reorder_max_pkts: int = 512,
        dupack_rewind: int = 0,  # 0 = disabled (timeout-only recovery)
    ) -> None:
        if mtu <= header_bytes:
            raise ValueError("MTU must exceed header size")
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if reorder_window_bytes < 0 or reorder_max_pkts < 1:
            raise ValueError("invalid reorder window")
        if dupack_rewind < 0:
            raise ValueError("dupack_rewind must be >= 0")
        if retx_backoff_cap < 0 or retx_max_timeouts < 0:
            raise ValueError("retx backoff/max-timeouts must be >= 0")
        self.mtu = mtu
        self.header_bytes = header_bytes
        self.ack_every = ack_every
        self.retx_timeout_ps = retx_timeout_ps
        # Graceful degradation (DESIGN.md §10): exponential, jitterless
        # backoff of consecutive timeouts, and an optional budget after
        # which the flow reaches the flow-failed terminal state instead of
        # retransmitting into a partition forever.
        self.retx_backoff_cap = retx_backoff_cap
        self.retx_max_timeouts = retx_max_timeouts
        self.window_limited = window_limited
        # Receiver-side out-of-order tolerance: how far past the next
        # expected byte arrivals may be buffered before being dropped with a
        # duplicate ACK.  Reordering LB strategies (spray/flowlet/conweave)
        # require a nonzero window; repro.lb.install_lb enables it.
        self.reorder_window_bytes = reorder_window_bytes
        self.reorder_max_pkts = reorder_max_pkts
        # Sender-side fast recovery: after this many consecutive duplicate
        # cumulative ACKs, go-back-N rewinds without waiting for the retx
        # timeout (rate-limited to one rewind per base RTT).  Under a
        # reorder-tolerant receiver dup ACKs are emitted only for genuine
        # anomalies (window overflow, tail-drained loss hints, stale
        # retransmissions), so install_lb arms this at 1; the strict-order
        # default keeps the seed's timeout-only behavior.
        self.dupack_rewind = dupack_rewind

    @property
    def max_payload(self) -> int:
        return self.mtu - self.header_bytes


class SenderQP:
    """One flow's sending state machine."""

    __slots__ = (
        "sim",
        "host",
        "flow",
        "cc",
        "config",
        "base_rtt_ps",
        "line_rate_gbps",
        "window",
        "rate_gbps",
        "snd_nxt",
        "snd_una",
        "next_tx_ps",
        "finished",
        "_pace_ev",
        "_retx_timer",
        "_pace_armed_for",
        "_window_limited",
        "_max_payload",
        "_header_bytes",
        "_flow_size",
        "_retx_ps",
        "_gap_rate",
        "_gap_size",
        "_gap",
        "_pool",
        "_nic",
        "on_complete",
        "acks_received",
        "timeouts",
        "srtt_ps",
        "_consec_timeouts",
        "failed",
        "start_ps",
        "_dupacks",
        "_dupack_rewind",
        "_last_rewind_ps",
        "fast_rewinds",
    )

    def __init__(
        self,
        host: "Host",
        flow: "Flow",
        cc: "CongestionControl",
        config: TransportConfig,
        base_rtt_ps: int,
        line_rate_gbps: float,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.flow = flow
        self.cc = cc
        self.config = config
        self.base_rtt_ps = base_rtt_ps
        self.line_rate_gbps = line_rate_gbps
        # CC-owned control variables; CC modules mutate these.
        self.window: float = float(flow.size_bytes)
        self.rate_gbps: float = line_rate_gbps
        self.snd_nxt = 0
        self.snd_una = 0
        self.next_tx_ps = 0
        self.finished = False
        # Hot-path caches of per-flow constants (one attribute load instead
        # of a config chain per frame).
        self._window_limited = config.window_limited
        self._max_payload = config.max_payload
        self._header_bytes = config.header_bytes
        self._flow_size = flow.size_bytes
        self._retx_ps = config.retx_timeout_ps
        # Pacing-gap memo: the CC rate changes at ACK granularity while
        # frames are emitted at wire granularity, so the (rate, size) pair
        # repeats for every frame of a burst — the wire trains the port
        # layer fuses downstream.  A hit returns the identical rounded gap.
        self._gap_rate = -1.0
        self._gap_size = -1
        self._gap = 0
        # Pacing uses a raw engine event (one per emitted frame in steady
        # state) instead of the Timer wrapper; _pace_armed_for carries the
        # deadline the live event is armed for, None when disarmed.
        self._pace_ev = None
        self._pool = host.pkt_pool
        self._nic = None  # bound lazily: hosts may be wired after flow setup
        self._retx_timer = Timer(self.sim, self._retx_fire, host.lane)
        self._pace_armed_for: Optional[int] = None
        self.on_complete: Optional[Callable[["SenderQP"], None]] = None
        self.acks_received = 0
        self.timeouts = 0
        # Smoothed RTT (EWMA, gain 1/8) from ACK-echoed send timestamps;
        # 0 until the first sample.  Drives retransmission-timer re-arms.
        self.srtt_ps = 0
        self._consec_timeouts = 0
        # Flow-failed terminal state: retx_max_timeouts exhausted.  A
        # failed flow is also ``finished`` (teardown/sinks run once); the
        # flag distinguishes degradation from completion.
        self.failed = False
        self.start_ps = flow.start_ps
        # Duplicate-ACK fast rewind (see TransportConfig.dupack_rewind).
        self._dupacks = 0
        self._dupack_rewind = config.dupack_rewind
        self._last_rewind_ps = -(1 << 62)
        self.fast_rewinds = 0

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Called by the host at the flow's start time."""
        self.cc.on_flow_start(self)
        if self.config.retx_timeout_ps > 0:
            self._retx_timer.start(self.config.retx_timeout_ps)
        self._maybe_send()

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def remaining(self) -> int:
        return self.flow.size_bytes - self.snd_nxt

    # -- transmit path ---------------------------------------------------------------
    def _maybe_send(self) -> None:
        """Emit as many frames as pacing + window currently allow."""
        if self.finished:
            return
        flow_size = self._flow_size
        window_limited = self._window_limited
        while self.snd_nxt < flow_size:
            if window_limited and self.snd_nxt - self.snd_una >= self.window:
                ev = self._pace_ev
                if ev is not None:
                    # fncc-lint: allow[H301] Event.cancel() inlined on a live handle this QP owns; per-ACK pacing path
                    ev.alive = False
                    self._pace_ev = None
                self._pace_armed_for = None
                return  # ACK-clocked: on_ack re-enters
            now = self.sim.now
            next_tx = self.next_tx_ps
            if next_tx > now:
                if self._pace_armed_for != next_tx:
                    ev = self._pace_ev
                    if ev is not None:
                        # fncc-lint: allow[H301] Event.cancel() inlined on a live handle this QP owns; re-arm path
                        ev.alive = False
                    self._pace_ev = self.sim.schedule(
                        next_tx - now, self._pace_fire, None, self.host.lane
                    )
                    self._pace_armed_for = next_tx
                return
            self._emit()

    def _emit(self) -> None:
        flow = self.flow
        snd_nxt = self.snd_nxt
        remaining = self._flow_size - snd_nxt
        max_payload = self._max_payload
        payload = max_payload if remaining > max_payload else remaining
        size = payload + self._header_bytes
        # Positional acquire (kind, flow_id, src, dst, seq, size, payload,
        # priority): keyword passing costs real time at this call rate.
        pkt = self._pool.acquire(
            DATA,
            flow.flow_id,
            flow.src,
            flow.dst,
            snd_nxt,
            size,
            payload,
            flow.priority,
        )
        now = self.sim.now
        pkt.sent_ts = now
        pkt.last = payload >= remaining
        self.snd_nxt = snd_nxt + payload
        # Pace at R: the inter-frame gap is the frame's wire time at R.
        rate = self.rate_gbps
        if rate > 0:
            if rate == self._gap_rate and size == self._gap_size:
                gap = self._gap  # burst fast path: same rate, same size
            else:
                # Inline serialization_ps: same expression, same rounding.
                gap = round(size * 8000 / rate)
                self._gap_rate = rate
                self._gap_size = size
                self._gap = gap
        else:  # fully throttled; retry in one base RTT
            gap = self.base_rtt_ps
        next_tx = self.next_tx_ps
        self.next_tx_ps = (next_tx if next_tx > now else now) + gap
        nic = self._nic
        if nic is None:
            nic = self._nic = self.host.ports[0]
        nic.enqueue(pkt)  # Host.transmit, inlined

    def _pace_fire(self, _arg) -> None:
        self._pace_ev = None
        self._pace_armed_for = None
        self._maybe_send()

    # -- receive path ---------------------------------------------------------------
    def on_ack(self, ack: Packet) -> None:
        """Process a cumulative ACK.  The sender host is the ACK's terminal
        sink: once the CC module has consumed it, the frame is recycled
        (CC modules may retain ``ack.int_records`` — the list survives; the
        packet shell does not)."""
        if self.finished:
            self._pool.release(ack)
            return
        self.acks_received += 1
        seq = ack.seq
        advanced = seq > self.snd_una
        if advanced:
            self.snd_una = seq
            self._dupacks = 0
            if self._retx_ps > 0:
                # Track the current RTT from the echoed send timestamp
                # (<= 0: gratuitous ACK, no sample — same convention as
                # Timely/Swift) and re-arm from it: max(initial RTO,
                # 2*srtt), so a congested path widens the timer instead
                # of firing spurious go-back-N rewinds at the
                # connection-initial RTO.  Progress resets the backoff.
                ts = ack.echo_sent_ts
                if ts > 0:
                    sample = self.sim.now - ts
                    srtt = self.srtt_ps
                    self.srtt_ps = sample if srtt == 0 else (7 * srtt + sample) >> 3
                self._consec_timeouts = 0
                self._retx_timer.start(self._rto())
            if self._dupack_rewind and seq > self.snd_nxt:
                # A rewind retransmitted a hole whose following bytes were
                # already buffered at the receiver: the cumulative ACK has
                # jumped past snd_nxt.  Snap forward — re-sending acked
                # bytes would only draw stale-frame dup ACKs.
                self.snd_nxt = seq
        if self._dupack_rewind and self.snd_nxt > self.snd_una:
            # Fast recovery.  A NACK-flagged ACK (receiver saw a genuine
            # hole: overflow drop, stale frame, tail-drained loss hint) is
            # an explicit retransmit request — it counts even when ACK
            # coalescing made its seq advance snd_una.  A plain duplicate
            # cumulative ACK counts via the classic seq == snd_una test.
            if ack.lb_tail:
                self._dupacks = self._dupack_rewind
            elif not advanced and seq == self.snd_una:
                self._dupacks += 1
            if self._dupacks >= self._dupack_rewind:
                # Go-back-N without waiting for the timeout, at most once
                # per base RTT (one rewind's worth of retransmissions can
                # itself echo stale-frame NACKs).
                now = self.sim.now
                if now - self._last_rewind_ps >= self.base_rtt_ps:
                    self._last_rewind_ps = now
                    self.fast_rewinds += 1
                    self.snd_nxt = self.snd_una
                    self.next_tx_ps = now
                self._dupacks = 0
        self.cc.on_ack(self, ack)
        self._pool.release(ack)
        if self.snd_una >= self._flow_size:
            self._finish()
            return
        self._maybe_send()

    def on_cnp(self) -> None:
        if not self.finished:
            self.cc.on_cnp(self)

    def _rto(self) -> int:
        """Effective retransmission timeout: the larger of the configured
        initial RTO and twice the smoothed RTT, left-shifted once per
        consecutive timeout up to ``retx_backoff_cap`` (jitterless
        exponential backoff — deterministic replay)."""
        rto = self._retx_ps
        est = self.srtt_ps << 1
        if est > rto:
            rto = est
        n = self._consec_timeouts
        cap = self.config.retx_backoff_cap
        return rto << (n if n < cap else cap)

    def _retx_fire(self, _arg) -> None:
        if self.finished:
            return
        self.timeouts += 1
        self._consec_timeouts += 1
        limit = self.config.retx_max_timeouts
        if limit and self._consec_timeouts >= limit:
            # Graceful degradation: the path is (for this flow) a
            # partition.  Reach the flow-failed terminal state instead of
            # backing off forever — experiments then count the flow as
            # resolved (failed), never hung.
            self._fail()
            return
        # Go-back-N: rewind to the last cumulatively acknowledged byte.
        self.snd_nxt = self.snd_una
        self.next_tx_ps = self.sim.now
        self.cc.on_timeout(self)
        self._retx_timer.start(self._rto())
        self._maybe_send()

    def _fail(self) -> None:
        self.failed = True
        self._finish()

    def abort(self) -> None:
        """Stop sending immediately (used by long-lived-flow experiments
        like Fig. 13e where flows exit on a schedule rather than by size)."""
        if not self.finished:
            self._finish()

    def _finish(self) -> None:
        self.finished = True
        ev = self._pace_ev
        if ev is not None:
            # fncc-lint: allow[H301] Event.cancel() inlined on a live handle this QP owns; flow teardown
            ev.alive = False
            self._pace_ev = None
        self._retx_timer.cancel()
        self.cc.on_flow_finish(self)
        if self.on_complete is not None:
            self.on_complete(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SenderQP flow={self.flow.flow_id} una={self.snd_una} "
            f"nxt={self.snd_nxt}/{self.flow.size_bytes} W={self.window:.0f} "
            f"R={self.rate_gbps:.1f}G>"
        )
