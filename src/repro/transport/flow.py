"""Flow descriptors and completion records."""

from __future__ import annotations

from typing import Optional


class Flow:
    """An application message: ``size_bytes`` of payload from ``src`` to
    ``dst`` host, starting at ``start_ps``.

    Matches the paper's workload model (RC RDMA Write messages, §3.1
    Observation 3).
    """

    __slots__ = ("flow_id", "src", "dst", "size_bytes", "start_ps", "priority")

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size_bytes: int,
        start_ps: int = 0,
        priority: int = 0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if src == dst:
            raise ValueError("flow endpoints must differ")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_ps = start_ps
        self.priority = priority

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow({self.flow_id}, {self.src}->{self.dst}, "
            f"{self.size_bytes}B @ {self.start_ps}ps)"
        )


class FlowRecord:
    """Completion record produced when the receiver sees the last in-order
    byte.  ``fct_ps`` is last-byte-delivered minus flow start."""

    __slots__ = ("flow", "fct_ps", "finish_ps", "ideal_fct_ps")

    def __init__(self, flow: Flow, finish_ps: int) -> None:
        self.flow = flow
        self.finish_ps = finish_ps
        self.fct_ps = finish_ps - flow.start_ps
        self.ideal_fct_ps: Optional[int] = None

    @property
    def slowdown(self) -> float:
        """FCT normalized by the ideal single-flow FCT (§5.5)."""
        if not self.ideal_fct_ps:
            raise ValueError("ideal FCT not attached yet")
        return self.fct_ps / self.ideal_fct_ps
