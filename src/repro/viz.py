"""Terminal plots — render the paper's time-series figures as ASCII.

No plotting backend is available offline, so examples and experiment CLIs
draw queue/rate/utilization series as fixed-grid character plots and
sparklines.  Deliberately tiny: rows of '*' on a time/value grid plus axis
labels — enough to *see* Fig. 9's queue hump move between CC schemes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.series import TimeSeries

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode sparkline, resampled to ``width`` columns."""
    if not values:
        return ""
    vals = _resample(list(values), width)
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(vals)
    return "".join(_SPARK[int((v - lo) / span * (len(_SPARK) - 1))] for v in vals)


def ascii_plot(
    series: TimeSeries,
    width: int = 72,
    height: int = 12,
    title: str = "",
    y_label: str = "",
    y_scale: float = 1.0,
) -> str:
    """A character grid plot of one time series (times in ps on the x-axis,
    values scaled by ``y_scale`` on the y-axis)."""
    if len(series) == 0:
        return f"{title} (empty)"
    values = [v * y_scale for v in _resample(series.values, width)]
    lo = min(0.0, min(values))
    hi = max(values)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(values):
        row = int((v - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][x] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = hi if i == 0 else (lo if i == height - 1 else None)
        prefix = f"{label:10.1f} |" if label is not None else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    t0, t1 = series.times[0] / 1e6, series.times[-1] / 1e6
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 11 + f"{t0:<10.0f}{'time (us)':^{max(0, width - 20)}}{t1:>10.0f}")
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines)


def compare_series(
    named_series: dict,
    width: int = 60,
    y_scale: float = 1.0,
    unit: str = "",
) -> str:
    """One labelled sparkline per series, on a shared scale."""
    if not named_series:
        return ""
    all_vals: List[float] = []
    for s in named_series.values():
        all_vals.extend(v * y_scale for v in s.values)
    hi = max(all_vals) if all_vals else 1.0
    lines = []
    for name, s in named_series.items():
        vals = [v * y_scale for v in _resample(s.values, width)]
        if hi > 0:
            idx = [int(v / hi * (len(_SPARK) - 1)) for v in vals]
        else:
            idx = [0] * len(vals)
        spark = "".join(_SPARK[i] for i in idx)
        peak = max((v * y_scale for v in s.values), default=0.0)
        lines.append(f"{name:>8} {spark} peak={peak:.1f}{unit}")
    return "\n".join(lines)


def _resample(values: List[float], width: int) -> List[float]:
    """Max-pool down to ``width`` columns (peaks must stay visible)."""
    n = len(values)
    if n <= width:
        return list(values)
    out = []
    for col in range(width):
        a = col * n // width
        b = max(a + 1, (col + 1) * n // width)
        out.append(max(values[a:b]))
    return out
