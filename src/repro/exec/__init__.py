"""Process-pool sweep execution for independent simulation runs.

Every experiment sweep in this repo — the CC × LB matrix, the Fig. 14/15
CC comparisons, the ablation parameter sweeps, multi-seed replications —
is embarrassingly parallel: each run owns its own :class:`Simulator`,
topology, RNG streams (via per-run :class:`~repro.sim.rng.SeedSequenceFactory`)
and packet pool, and nothing crosses run boundaries.  This package turns
that property into wall-clock speedup on multi-core hardware:

* :class:`RunSpec` — a picklable description of one run (a module-level
  callable or ``"module:qualname"`` string, kwargs, an optional seed).
* :class:`RunResult` — the portable outcome (value, wall time, worker pid,
  or a captured worker traceback).
* :class:`SweepExecutor` — fans specs out over a spawn-safe process pool
  (``jobs=N``) and reduces results in **spec order** regardless of
  completion order; ``jobs=1`` executes in-process with zero pool
  overhead.  Serial and parallel executions of the same specs produce
  identical values (gated by ``tests/exec/``).

See DESIGN.md §5 (process model) for the picklability rules and why
simulator state never crosses a process boundary.
"""

from repro.exec.executor import SweepError, SweepExecutor, run_sweep
from repro.exec.spec import RunResult, RunSpec, resolve_callable

__all__ = [
    "RunSpec",
    "RunResult",
    "SweepExecutor",
    "SweepError",
    "run_sweep",
    "resolve_callable",
]
