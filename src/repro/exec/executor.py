"""The process-pool sweep executor.

``SweepExecutor(jobs=N).map(specs)`` runs every :class:`~repro.exec.spec.RunSpec`
and returns one :class:`~repro.exec.spec.RunResult` per spec **in spec
order**, regardless of which worker finished first — the reduce step is
deterministic by construction, so a sweep's output never depends on pool
scheduling.

Design points:

* ``jobs=1`` (the default) never touches ``multiprocessing``: specs run
  in-process, in order, with zero pool/pickling overhead.  This is the
  fallback every experiment uses when invoked without ``--jobs``.
* ``jobs>1`` uses :class:`concurrent.futures.ProcessPoolExecutor` on the
  **spawn** start method by default.  Spawn is the portable, thread-safe
  choice (fork would duplicate live simulator state and numpy internals);
  it also means workers import everything fresh, which is exactly the
  isolation the determinism guarantee relies on.  A dead worker raises
  ``BrokenProcessPool`` instead of hanging the pool.
* A spec that raises inside a worker surfaces the *original traceback*
  (captured as text in the worker, re-raised here as :class:`SweepError`)
  — not a bare ``RemoteTraceback`` or a hung pool.
* Specs and results are checked for picklability with clear attribution
  (which spec, which direction) before the stdlib machinery can produce
  its less helpful errors.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, List, Optional, Sequence

from repro.exec.spec import RunResult, RunSpec

#: Default start method.  "spawn" is safe everywhere; "fork" is available
#: for callers that want to trade safety for startup latency on POSIX.
DEFAULT_START_METHOD = "spawn"


class SweepError(RuntimeError):
    """A sweep spec failed (or could not be shipped to / from a worker).

    ``key``/``index`` locate the failing spec; ``worker_traceback`` holds
    the failure text — the formatted traceback captured in the worker, or
    the submission-side explanation for a spec that never reached one
    (e.g. an unpicklable spec).
    """

    def __init__(self, message: str, key: Any = None, index: int = -1,
                 worker_traceback: str = "") -> None:
        super().__init__(message)
        self.key = key
        self.index = index
        self.worker_traceback = worker_traceback


def _execute(index: int, spec: RunSpec) -> RunResult:
    """Run one spec, converting any exception into a portable traceback."""
    key = spec.key if spec.key is not None else index
    t0 = time.perf_counter()
    try:
        value = spec.run()
    except Exception:
        return RunResult(
            key=key,
            index=index,
            error=traceback.format_exc(),
            wall_s=time.perf_counter() - t0,
            pid=os.getpid(),
        )
    return RunResult(
        key=key,
        index=index,
        value=value,
        wall_s=time.perf_counter() - t0,
        pid=os.getpid(),
    )


def _pool_execute(index: int, spec: RunSpec) -> RunResult:
    """Worker-side entry: execute, then verify the value can travel home.

    The picklability probe runs *in the worker* so an unpicklable return
    value becomes a clean per-spec error instead of the pool's opaque
    ``MaybeEncodingError`` (which loses spec attribution).
    """
    result = _execute(index, spec)
    if result.ok:
        try:
            pickle.dumps(result.value)
        except Exception as exc:
            result = RunResult(
                key=result.key,
                index=index,
                error=(
                    f"run returned an unpicklable value "
                    f"({type(result.value).__name__}): {exc}\n"
                    "Sweep functions must return portable summaries, not "
                    "live simulator state (DESIGN.md §5)."
                ),
                wall_s=result.wall_s,
                pid=result.pid,
            )
    return result


class SweepExecutor:
    """Fan independent :class:`RunSpec` runs over a process pool.

    Parameters
    ----------
    jobs:
        Worker count.  ``1`` executes in-process (no pool, no pickling).
    start_method:
        ``multiprocessing`` start method for ``jobs>1`` (default
        ``"spawn"``; see module docstring).
    raise_on_error:
        When True (default), ``map`` raises :class:`SweepError` for the
        first failing spec **in spec order** (deterministic, not
        completion order).  When False, failed specs come back as
        ``RunResult``\\ s with ``.error`` set and ``.ok`` False.
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: str = DEFAULT_START_METHOD,
        raise_on_error: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have {mp.get_all_start_methods()})"
            )
        self.jobs = jobs
        self.start_method = start_method
        self.raise_on_error = raise_on_error

    # -- execution ---------------------------------------------------------

    def map(self, specs: Iterable[RunSpec]) -> List[RunResult]:
        """Run every spec; return results in spec order."""
        spec_list = list(specs)
        if not spec_list:
            return []
        if self.jobs == 1 or len(spec_list) == 1:
            results = [_execute(i, s) for i, s in enumerate(spec_list)]
        else:
            results = self._map_pool(spec_list)
        if self.raise_on_error:
            for r in results:
                if not r.ok:
                    raise SweepError(
                        f"sweep spec #{r.index} ({r.key!r}) failed "
                        f"(pid={r.pid}):\n{r.error}",
                        key=r.key,
                        index=r.index,
                        worker_traceback=r.error or "",
                    )
        return results

    def _map_pool(self, spec_list: Sequence[RunSpec]) -> List[RunResult]:
        # An unpicklable spec cannot reach a worker; it becomes a
        # submission-side error *result* (pid = this process), so
        # raise_on_error=False still returns every other spec's outcome
        # and raise_on_error=True reports it through the same spec-order
        # path as worker failures.
        results: List[Optional[RunResult]] = [None] * len(spec_list)
        submitted = []
        for i, spec in enumerate(spec_list):
            try:
                pickle.dumps(spec)
            except Exception as exc:
                results[i] = RunResult(
                    key=spec.key if spec.key is not None else i,
                    index=i,
                    error=(
                        f"spec is not picklable: {exc}\n"
                        "Use a module-level function or a 'module:qualname' "
                        "string and plain-data kwargs (DESIGN.md §5)."
                    ),
                    pid=os.getpid(),
                )
            else:
                submitted.append((i, spec))
        if submitted:
            ctx = mp.get_context(self.start_method)
            workers = min(self.jobs, len(submitted))
            # Futures are collected in submit order, so the reduce is in
            # spec order no matter how completions interleave.  A hard
            # worker death (os._exit, OOM-kill) surfaces as
            # BrokenProcessPool from .result() — the pool never hangs.
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                futures = [
                    (i, pool.submit(_pool_execute, i, spec))
                    for i, spec in submitted
                ]
                for i, future in futures:
                    results[i] = future.result()
        return results  # type: ignore[return-value]  # every slot is filled


def run_sweep(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    start_method: str = DEFAULT_START_METHOD,
) -> List[Any]:
    """Convenience wrapper: run specs, raise on the first failure (spec
    order), and return just the values — in spec order."""
    executor = SweepExecutor(jobs=jobs, start_method=start_method)
    return [r.value for r in executor.map(specs)]
