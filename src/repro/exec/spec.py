"""Picklable run descriptions (:class:`RunSpec`) and portable outcomes
(:class:`RunResult`) for the sweep executor.

Picklability rules (DESIGN.md §5): a spec must survive a round trip
through ``pickle`` because the pool ships it to a freshly *spawned*
interpreter.  That means:

* ``fn`` is either a **module-level** callable (pickled by reference) or a
  ``"module:qualname"`` string resolved inside the worker — never a
  lambda, closure, or bound method of a live simulation object.
* ``kwargs`` hold plain configuration values (numbers, strings, tuples),
  not live ``Simulator``/``Topology``/``Packet`` state.  The run builds
  its own world from the spec; per-run determinism comes from the seed.
* the *return value* of ``fn`` must be picklable too, so experiment
  sweeps return portable summary objects instead of live simulators.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

FnRef = Union[str, Callable[..., Any]]


def resolve_callable(ref: FnRef) -> Callable[..., Any]:
    """Resolve ``ref`` to a callable.

    Strings use the ``"package.module:qualname"`` convention (the entry
    point syntax), so a spec can name its function without pickling code
    objects at all — the worker imports the module and walks the
    attribute path.
    """
    if callable(ref):
        return ref
    if isinstance(ref, str):
        mod_name, sep, qualname = ref.partition(":")
        if not sep or not mod_name or not qualname:
            raise ValueError(
                f"callable reference {ref!r} must look like 'pkg.module:qualname'"
            )
        obj: Any = importlib.import_module(mod_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise TypeError(f"{ref!r} resolved to non-callable {obj!r}")
        return obj
    raise TypeError(f"fn must be a callable or 'module:qualname' string, got {ref!r}")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run, described by data only.

    ``seed`` is a convenience for multi-seed sweeps: when set, it is
    merged into ``kwargs`` as ``kwargs["seed"]`` at call time (an explicit
    ``kwargs["seed"]`` and a ``seed=`` field must not disagree).
    ``key`` identifies the run in results and error messages; it defaults
    to the spec's position in the sweep.
    """

    fn: FnRef
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Any = None
    seed: Optional[int] = None

    def call_kwargs(self) -> Dict[str, Any]:
        kw = dict(self.kwargs)
        if self.seed is not None:
            if "seed" in kw and kw["seed"] != self.seed:
                raise ValueError(
                    f"spec {self.key!r}: kwargs['seed']={kw['seed']!r} conflicts "
                    f"with RunSpec.seed={self.seed!r}"
                )
            kw["seed"] = self.seed
        return kw

    def run(self) -> Any:
        """Execute the run (in whatever process this is called from)."""
        return resolve_callable(self.fn)(**self.call_kwargs())


@dataclass
class RunResult:
    """Portable outcome of one :class:`RunSpec`.

    Exactly one of ``value`` / ``error`` is meaningful: ``error`` is the
    worker's formatted traceback text when the run raised.  ``index`` is
    the spec's position in the submitted sweep — results are always
    reduced back into this order, regardless of completion order.
    ``wall_s``/``pid`` are diagnostics (never part of determinism
    comparisons; fingerprints live in ``value``).
    """

    key: Any
    index: int
    value: Any = None
    wall_s: float = 0.0
    error: Optional[str] = None
    pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None
