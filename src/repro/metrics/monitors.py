"""Periodic samplers for the quantities the paper plots.

* :class:`QueueSampler` — egress queue length of one port (Figs. 1b-d, 9, 13).
* :class:`RateSampler` — a sender QP's pacing rate in Gb/s (Figs. 9b/d/f, 13d/e).
* :class:`UtilizationSampler` — bytes actually transmitted on a port per
  interval over capacity (Figs. 9g-h, 13a-c).
* :func:`pause_frame_count` — PAUSE frames emitted by a switch (Fig. 3).
* :func:`pfc_frame_totals` — fabric-wide PAUSE/RESUME tx-vs-rx ledger, for
  reconciling the Fig. 3 counts (every sent frame must be received by the
  peer once the run drains).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable

from repro.metrics.series import TimeSeries
from repro.sim.timer import Periodic
from repro.units import serialization_ps, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import Port
    from repro.net.switch import Switch
    from repro.sim.engine import Simulator
    from repro.transport.sender import SenderQP


class _PeriodicSampler:
    """Shared sampler lifecycle: one :class:`Periodic`, one
    :class:`TimeSeries`, context-manager semantics, and registration with
    the owning :class:`Simulator` so ``sim.stop_monitors()`` (called by
    the flight recorder when a run raises) disarms every pending tick —
    without it, a sampler built in a ``try`` body leaked its ``Periodic``
    into the heap forever.

    ``with QueueSampler(sim, port) as mon: ...`` stops on exit; ``stop``
    stays callable directly and is idempotent either way.
    """

    def __init__(self, sim: "Simulator", interval_ps: int, name: str,
                 first_offset: "int | None", lane: int = 0) -> None:
        self.series = TimeSeries(name)
        self._periodic = Periodic(sim, interval_ps, self._sample, lane)
        register = getattr(sim, "register_monitor", None)
        if register is not None:
            register(self)
        self._periodic.start(offset=first_offset)

    def _sample(self, now: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def stop(self) -> None:
        self._periodic.stop()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class QueueSampler(_PeriodicSampler):
    """Samples one egress queue's backlog (bytes) every ``interval_ps``."""

    def __init__(self, sim: "Simulator", port: "Port", interval_ps: int = us(1)) -> None:
        self.port = port
        super().__init__(
            sim, interval_ps, f"qlen:{port.node.name}.{port.index}",
            first_offset=0, lane=port.node.lane,
        )

    def _sample(self, now: int) -> None:
        self.series.append(now, float(self.port.qbytes_total))


class RateSampler(_PeriodicSampler):
    """Samples a sender QP's current pacing rate (Gb/s)."""

    def __init__(self, sim: "Simulator", qp: "SenderQP", interval_ps: int = us(1)) -> None:
        self.qp = qp
        super().__init__(
            sim, interval_ps, f"rate:flow{qp.flow.flow_id}",
            first_offset=0, lane=qp.host.lane,
        )

    def _sample(self, now: int) -> None:
        qp = self.qp
        if qp.finished or now < qp.start_ps:
            rate = 0.0
        else:
            rate = min(qp.rate_gbps, qp.line_rate_gbps)
        self.series.append(now, rate)


class UtilizationSampler(_PeriodicSampler):
    """Fraction of a port's capacity used per interval (achieved goodput of
    the link, the paper's 'utilization')."""

    def __init__(self, sim: "Simulator", port: "Port", interval_ps: int = us(5)) -> None:
        self.port = port
        self.interval_ps = interval_ps
        self._last_tx_bytes = port.tx_bytes
        # First tick at one full interval (no offset-0 sample): a delta
        # sampler has nothing to report at t=0.
        super().__init__(
            sim, interval_ps, f"util:{port.node.name}.{port.index}",
            first_offset=None, lane=port.node.lane,
        )

    def _sample(self, now: int) -> None:
        tx = self.port.tx_bytes
        delta = tx - self._last_tx_bytes
        self._last_tx_bytes = tx
        capacity_time = serialization_ps(delta, self.port.rate_gbps)
        self.series.append(now, min(1.0, capacity_time / self.interval_ps))


def pause_frame_count(switches: Iterable["Switch"]) -> int:
    """Total PAUSE frames emitted by the given switches (Fig. 3's metric)."""
    return sum(sw.total_pause_frames() for sw in switches)


def frame_hops(nodes: Iterable[object]) -> int:
    """Total frames delivered across any link by ``nodes``' ports (sum of
    per-port tx counters) — the engine-representation-independent unit of
    simulated work the perf harness records as ``frame_hops``.  Frames
    that rode the fused train path count individually here (the train
    machinery increments the same per-frame counters)."""
    total = 0
    for node in nodes:
        for port in node.ports:
            total += port.tx_packets
    return total


def topo_frame_hops(topo) -> int:
    """:func:`frame_hops` over every node of a topology-like object (all
    hosts and switches) — the one place the node-list expansion lives."""
    return frame_hops(list(getattr(topo, "hosts", ())) + list(getattr(topo, "switches", ())))


def pfc_frame_totals(nodes: Iterable[object]) -> Dict[str, int]:
    """Sum the four PFC frame counters over every port of ``nodes``
    (hosts and switches alike).

    On a drained fabric the ledger balances: ``pause_sent ==
    pause_received`` and ``resume_sent == resume_received`` (each control
    frame is delivered to exactly one peer port).  A mismatch on a
    finished run means frames were stranded on a wire or a counter went
    asymmetric — the bug the ``resume_received`` counter was added to
    catch."""
    totals = {
        "pause_sent": 0,
        "pause_received": 0,
        "resume_sent": 0,
        "resume_received": 0,
    }
    for node in nodes:
        for port in node.ports:
            stats = port.stats
            totals["pause_sent"] += stats.pause_sent
            totals["pause_received"] += stats.pause_received
            totals["resume_sent"] += stats.resume_sent
            totals["resume_received"] += stats.resume_received
    return totals
