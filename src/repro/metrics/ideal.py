"""Exact ideal (single-flow) FCT for slowdown normalization (§5.5).

"FCT slowdown means a flow's actual FCT normalized by its ideal FCT when
the network only has this flow."  We compute the ideal exactly for a
store-and-forward pipeline: frame ``i`` finishes crossing hop ``j`` at

    A(i, j) = max(A(i-1, j), A(i, j-1)) + ser_j(i)   [+ prop_j on arrival]

With constant full-frame serialization per hop this prefix-max recurrence
vectorizes per hop with ``np.maximum.accumulate`` (one O(K) pass per hop),
so even a 30 MB flow costs a few tens of microseconds to evaluate.  Results
are memoized per (size, path) — fat-tree workloads reuse few distinct path
shapes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.units import DEFAULT_MTU, serialization_ps
from repro.transport.sender import HEADER_BYTES


def _frame_sizes(size_bytes: int, mtu: int, header: int) -> Tuple[int, int, int]:
    """(number of frames, full frame wire size, last frame wire size)."""
    payload = mtu - header
    n_frames = (size_bytes + payload - 1) // payload
    last_payload = size_bytes - (n_frames - 1) * payload
    return n_frames, mtu, last_payload + header


@lru_cache(maxsize=65536)
def _ideal_cached(
    size_bytes: int,
    links: Tuple[Tuple[float, int], ...],
    mtu: int,
    header: int,
) -> int:
    n_frames, full_size, last_size = _frame_sizes(size_bytes, mtu, header)
    total_prop = sum(d for _, d in links)
    if n_frames == 1:
        return sum(serialization_ps(last_size, r) for r, _ in links) + total_prop

    # Finish times of each frame after the first hop (back-to-back at the
    # first link's rate).
    s0 = serialization_ps(full_size, links[0][0])
    finish = np.arange(1, n_frames + 1, dtype=np.float64) * s0
    finish[-1] += serialization_ps(last_size, links[0][0]) - s0
    for rate, _ in links[1:]:
        s = serialization_ps(full_size, rate)
        s_last = serialization_ps(last_size, rate)
        # A_j(i) = s_j * i + max_{m<=i}(A_{j-1}(m) - s_j * m) + s_j
        idx = np.arange(n_frames, dtype=np.float64)
        ser = np.full(n_frames, float(s))
        ser[-1] = float(s_last)
        shifted = finish - idx * s
        finish = idx * s + np.maximum.accumulate(shifted) + ser
    return int(round(finish[-1])) + total_prop


def ideal_fct_ps(
    size_bytes: int,
    links: Sequence[Tuple[float, int]],
    mtu: int = DEFAULT_MTU,
    header: int = HEADER_BYTES,
) -> int:
    """Ideal last-byte-delivery time of ``size_bytes`` over ``links``
    (each ``(rate_gbps, prop_delay_ps)``), measured from the moment the
    sender begins serializing the first frame.
    """
    if size_bytes <= 0:
        raise ValueError("flow size must be positive")
    if not links:
        raise ValueError("need at least one link")
    return _ideal_cached(size_bytes, tuple(links), mtu, header)
