"""FCT-slowdown collection and the size-binned percentile tables of
Figs. 14 and 15.

``SIZE_BINS_*`` are exactly the x-axis bins of the paper's figures (a flow
falls in the first bin whose upper bound is >= its size).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.ideal import ideal_fct_ps
from repro.transport.flow import FlowRecord
from repro.units import KB, MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.topo.base import Topology
    from repro.transport.receiver import ReceiverQP

#: Fig. 14 x-axis (WebSearch): 10KB ... 30MB.
SIZE_BINS_WEBSEARCH: List[int] = [
    10 * KB, 20 * KB, 30 * KB, 50 * KB, 80 * KB, 200 * KB,
    1 * MB, 2 * MB, 5 * MB, 10 * MB, 30 * MB,
]

#: Fig. 15 x-axis (FB_Hadoop): 75B ... 1MB.
SIZE_BINS_HADOOP: List[int] = [
    75, 250, 350, 1 * KB, 2 * KB, 6 * KB, 10 * KB, 15 * KB,
    23 * KB, 24 * KB, 25 * KB, 100 * KB, 1 * MB,
]

PERCENTILE_COLUMNS = ("average", "median", "p95", "p99")


class FctCollector:
    """Attach to every host; records a :class:`FlowRecord` (with exact ideal
    FCT from the topology's path data) on each flow completion."""

    def __init__(self, topo: "Topology") -> None:
        self.topo = topo
        self.records: List[FlowRecord] = []
        for host in topo.hosts:
            host.fct_sink = self._on_complete

    def _on_complete(self, rqp: "ReceiverQP") -> None:
        flow = rqp.flow
        rec = FlowRecord(flow, rqp.finish_ps)
        mtu = self.topo.transport_config.mtu
        header = self.topo.transport_config.header_bytes
        rec.ideal_fct_ps = ideal_fct_ps(
            flow.size_bytes,
            self.topo.path_links(flow.src, flow.dst),
            mtu=mtu,
            header=header,
        )
        self.records.append(rec)

    # -- summaries -----------------------------------------------------------------
    def slowdowns(self) -> np.ndarray:
        return np.array([r.slowdown for r in self.records], dtype=np.float64)

    def completed(self) -> int:
        return len(self.records)

    def table(self, bins: Sequence[int]) -> "SlowdownTable":
        return SlowdownTable.from_records(self.records, bins)


class SlowdownTable:
    """Per-size-bin slowdown statistics — one table == one Fig. 14/15 panel
    family (avg / median / 95th / 99th across the bins)."""

    def __init__(self, bins: Sequence[int]) -> None:
        self.bins = list(bins)
        self.by_bin: Dict[int, List[float]] = {b: [] for b in self.bins}
        self.overflow: List[float] = []

    @classmethod
    def from_records(
        cls, records: Sequence[FlowRecord], bins: Sequence[int]
    ) -> "SlowdownTable":
        table = cls(bins)
        for rec in records:
            table.add(rec.flow.size_bytes, rec.slowdown)
        return table

    def add(self, size_bytes: int, slowdown: float) -> None:
        for b in self.bins:
            if size_bytes <= b:
                self.by_bin[b].append(slowdown)
                return
        self.overflow.append(slowdown)

    def stat(self, bin_upper: int, column: str) -> Optional[float]:
        vals = self.by_bin.get(bin_upper)
        if not vals:
            return None
        arr = np.asarray(vals)
        if column == "average":
            return float(arr.mean())
        if column == "median":
            return float(np.percentile(arr, 50))
        if column == "p95":
            return float(np.percentile(arr, 95))
        if column == "p99":
            return float(np.percentile(arr, 99))
        raise ValueError(f"unknown column {column!r}")

    def aggregate(
        self, column: str, min_size: int = 0, max_size: int = 1 << 62
    ) -> Optional[float]:
        """A single statistic over all flows with min_size < size <= max_size
        (used for the paper's headline claims, e.g. 'flows shorter than
        100KB' or 'larger than 1MB')."""
        vals: List[float] = []
        prev = 0
        for b in self.bins:
            if prev >= min_size and b <= max_size:
                vals.extend(self.by_bin[b])
            prev = b
        if max_size >= 1 << 61:
            vals.extend(self.overflow)
        if not vals:
            return None
        arr = np.asarray(vals)
        if column == "average":
            return float(arr.mean())
        if column == "median":
            return float(np.percentile(arr, 50))
        if column == "p95":
            return float(np.percentile(arr, 95))
        if column == "p99":
            return float(np.percentile(arr, 99))
        raise ValueError(f"unknown column {column!r}")

    def row_counts(self) -> Dict[int, int]:
        return {b: len(v) for b, v in self.by_bin.items()}

    def format(self, title: str = "") -> str:
        """Render the table the way the paper's figure axes read."""
        lines = []
        if title:
            lines.append(title)
        header = f"{'size<=':>10} {'n':>6} " + " ".join(
            f"{c:>9}" for c in PERCENTILE_COLUMNS
        )
        lines.append(header)
        for b in self.bins:
            vals = self.by_bin[b]
            cells = []
            for c in PERCENTILE_COLUMNS:
                s = self.stat(b, c)
                cells.append(f"{s:9.2f}" if s is not None else f"{'-':>9}")
            lines.append(f"{_fmt_size(b):>10} {len(vals):>6} " + " ".join(cells))
        return "\n".join(lines)


def _fmt_size(nbytes: int) -> str:
    if nbytes >= MB:
        return f"{nbytes / MB:g}MB"
    if nbytes >= KB:
        return f"{nbytes / KB:g}KB"
    return f"{nbytes}B"


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic: the sup-norm distance
    between the empirical CDFs of ``a`` and ``b``.

    Used by the hybrid backend's validation gate (DESIGN.md §6) to compare
    whole slowdown *distributions*, which per-bin percentile checks can't:
    two backends may agree on every bin's p99 yet disagree on the shape in
    between.  Pure numpy, no scipy dependency."""
    xa = np.sort(np.asarray(a, dtype=np.float64))
    xb = np.sort(np.asarray(b, dtype=np.float64))
    if xa.size == 0 or xb.size == 0:
        raise ValueError("ks_distance needs non-empty samples")
    grid = np.concatenate([xa, xb])
    cdf_a = np.searchsorted(xa, grid, side="right") / xa.size
    cdf_b = np.searchsorted(xb, grid, side="right") / xb.size
    return float(np.abs(cdf_a - cdf_b).max())
