"""A small (time, value) series container with NumPy export."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class TimeSeries:
    """Append-only time series; values are floats, times are picoseconds."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def append(self, t_ps: int, value: float) -> None:
        self.times.append(t_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=np.int64), np.asarray(
            self.values, dtype=np.float64
        )

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def mean_after(self, t_ps: int) -> float:
        """Mean of samples at or after ``t_ps`` (skip warm-up transients)."""
        vals = [v for t, v in zip(self.times, self.values) if t >= t_ps]
        return float(np.mean(vals)) if vals else 0.0

    def max_after(self, t_ps: int) -> float:
        vals = [v for t, v in zip(self.times, self.values) if t >= t_ps]
        return max(vals) if vals else 0.0

    def max_between(self, t0_ps: int, t1_ps: int) -> float:
        """Largest sample in the window [t0, t1]."""
        vals = [v for t, v in zip(self.times, self.values) if t0_ps <= t <= t1_ps]
        return max(vals) if vals else 0.0

    def value_at(self, t_ps: int) -> float:
        """Last sample at or before ``t_ps`` (step interpolation)."""
        best = 0.0
        for t, v in zip(self.times, self.values):
            if t > t_ps:
                break
            best = v
        return best

    def first_time_below(self, threshold: float, after_ps: int = 0) -> int:
        """First sample time >= ``after_ps`` whose value is < ``threshold``;
        -1 if never."""
        for t, v in zip(self.times, self.values):
            if t >= after_ps and v < threshold:
                return t
        return -1

    def first_time_above(self, threshold: float, after_ps: int = 0) -> int:
        for t, v in zip(self.times, self.values):
            if t >= after_ps and v > threshold:
                return t
        return -1
