"""A small (time, value) series container with NumPy export.

Times are append-only and sorted (samplers only move forward), so every
windowed query locates its endpoints with ``bisect`` instead of the old
O(n) zip-scan, and reductions run over a cached NumPy view of the values
(rebuilt lazily when the length changes — append-only means a length
check is a complete staleness test).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

import numpy as np


class TimeSeries:
    """Append-only time series; values are floats, times are picoseconds."""

    __slots__ = ("name", "times", "values", "_cache")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []
        self._cache: Optional[np.ndarray] = None

    def append(self, t_ps: int, value: float) -> None:
        self.times.append(t_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def _vals(self) -> np.ndarray:
        """The cached float64 view of ``values`` (hot for repeated
        windowed queries during analysis; appends invalidate by length)."""
        cache = self._cache
        if cache is None or len(cache) != len(self.values):
            self._cache = cache = np.asarray(self.values, dtype=np.float64)
        return cache

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=np.int64), np.asarray(
            self.values, dtype=np.float64
        )

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def mean_after(self, t_ps: int) -> float:
        """Mean of samples at or after ``t_ps`` (skip warm-up transients)."""
        i = bisect_left(self.times, t_ps)
        if i >= len(self.values):
            return 0.0
        return float(self._vals()[i:].mean())

    def percentile(self, q: float, after_ps: int = 0) -> float:
        """The ``q``-th percentile (0-100, linear interpolation) of samples
        at or after ``after_ps`` — the slowdown-CDF building block."""
        i = bisect_left(self.times, after_ps) if after_ps else 0
        if i >= len(self.values):
            return 0.0
        return float(np.percentile(self._vals()[i:], q))

    def max_after(self, t_ps: int) -> float:
        i = bisect_left(self.times, t_ps)
        if i >= len(self.values):
            return 0.0
        return float(self._vals()[i:].max())

    def max_between(self, t0_ps: int, t1_ps: int) -> float:
        """Largest sample in the window [t0, t1]."""
        lo = bisect_left(self.times, t0_ps)
        hi = bisect_right(self.times, t1_ps)
        if lo >= hi:
            return 0.0
        return float(self._vals()[lo:hi].max())

    def value_at(self, t_ps: int) -> float:
        """Last sample at or before ``t_ps`` (step interpolation)."""
        i = bisect_right(self.times, t_ps)
        return self.values[i - 1] if i else 0.0

    def first_time_below(self, threshold: float, after_ps: int = 0) -> int:
        """First sample time >= ``after_ps`` whose value is < ``threshold``;
        -1 if never."""
        i = bisect_left(self.times, after_ps)
        hits = np.nonzero(self._vals()[i:] < threshold)[0]
        return self.times[i + int(hits[0])] if hits.size else -1

    def first_time_above(self, threshold: float, after_ps: int = 0) -> int:
        i = bisect_left(self.times, after_ps)
        hits = np.nonzero(self._vals()[i:] > threshold)[0]
        return self.times[i + int(hits[0])] if hits.size else -1
