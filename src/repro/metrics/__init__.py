"""Measurement layer: samplers for queue/rate/utilization time series,
pause-frame accounting, and FCT-slowdown collection.

Everything samples on coarse timers or completion events — never per
packet — so measurement does not distort the hot path (per the HPC guides'
"profile realistic runs" advice).  Post-processing (percentiles, binning)
is vectorized NumPy.
"""

from repro.metrics.series import TimeSeries
from repro.metrics.monitors import (
    QueueSampler,
    RateSampler,
    UtilizationSampler,
    pause_frame_count,
    pfc_frame_totals,
    frame_hops,
    topo_frame_hops,
)
from repro.metrics.ideal import ideal_fct_ps
from repro.metrics.fct import FctCollector, SlowdownTable, SIZE_BINS_WEBSEARCH, SIZE_BINS_HADOOP

__all__ = [
    "TimeSeries",
    "QueueSampler",
    "RateSampler",
    "UtilizationSampler",
    "pause_frame_count",
    "pfc_frame_totals",
    "frame_hops",
    "topo_frame_hops",
    "ideal_fct_ps",
    "FctCollector",
    "SlowdownTable",
    "SIZE_BINS_WEBSEARCH",
    "SIZE_BINS_HADOOP",
]
