"""PacketTap — non-invasive packet capture at a node.

Wraps a node's ``receive`` to record (time, packet) pairs matching a
filter.  The hot path pays nothing unless a tap is installed (the wrapper
exists only on tapped nodes).  This is the debugging/measurement tool the
test-suite's ad-hoc spies grew into.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import KIND_NAMES, Packet

Predicate = Callable[[Packet], bool]


class PacketTap:
    """Records packets arriving at one node.

    >>> tap = PacketTap(host, kind=ACK, flow_id=3)
    >>> ... run ...
    >>> tap.count, tap.packets[0]

    Tapping a *host* automatically parks its packet pool so captures stay
    immutable.  Tapping an intermediate switch does not stop the terminal
    hosts from recycling frames — for full-fidelity capture mid-path, build
    the topology with ``pool_packets=False``.
    """

    def __init__(
        self,
        node: Node,
        kind: Optional[int] = None,
        flow_id: Optional[int] = None,
        predicate: Optional[Predicate] = None,
        max_packets: int = 1_000_000,
    ) -> None:
        self.node = node
        self.kind = kind
        self.flow_id = flow_id
        self.predicate = predicate
        self.max_packets = max_packets
        self.records: List[Tuple[int, Packet]] = []
        self.dropped = 0  # records beyond max_packets
        self._orig = node.receive
        self._installed = True
        # Captured packets outlive their delivery callback, which is
        # incompatible with frame recycling: park the node's packet pool
        # (refcounted, restored when the last tap uninstalls).  See
        # PacketPool ownership rules.
        self._pool = getattr(node, "pkt_pool", None)
        if self._pool is not None:
            self._pool.pause_recycling()
        # Tapping a switch forces the frame-train fast path (DESIGN.md
        # §2.2) back to per-frame delivery through this node, so the spy
        # observes every frame individually: clear the train pass-through
        # gate for the tap's lifetime.  (Hosts need nothing — trains never
        # fuse into hosts.)  Ad-hoc spies that wrap a *switch's* receive
        # without going through PacketTap must do the same.
        self._gated_switch = hasattr(node, "_train_ok")
        if self._gated_switch:
            node._train_ok = False
        # Remember whether ``receive`` was already an instance attribute
        # (a nested tap / earlier spy): uninstall must delete our wrapper
        # rather than assign the bound original back, or the instance dict
        # would keep shadowing the class method forever (and keep the
        # train gate closed).
        self._had_instance_receive = "receive" in node.__dict__
        node.receive = self._spy  # type: ignore[method-assign]

    def _matches(self, pkt: Packet) -> bool:
        if self.kind is not None and pkt.kind != self.kind:
            return False
        if self.flow_id is not None and pkt.flow_id != self.flow_id:
            return False
        if self.predicate is not None and not self.predicate(pkt):
            return False
        return True

    def _spy(self, pkt: Packet, in_port: int) -> None:
        if self._matches(pkt):
            if len(self.records) < self.max_packets:
                self.records.append((self.node.sim.now, pkt))
            else:
                self.dropped += 1
        self._orig(pkt, in_port)

    def uninstall(self) -> None:
        """Restore the node's original receive method (and packet pool,
        and the train pass-through gate on switches)."""
        if self._installed:
            node = self.node
            if self._had_instance_receive:
                node.receive = self._orig  # type: ignore[method-assign]
            else:
                del node.receive  # pristine: the class method resurfaces
            if self._pool is not None:
                self._pool.resume_recycling()
            if self._gated_switch:
                # Recompute rather than restore a snapshot: the strategy
                # may have been reinstalled while the tap was up (a
                # snapshot would clobber the newer gate value), and with
                # nested taps the outermost uninstall re-derives the truth
                # (an inner wrapper still in __dict__ keeps the gate
                # closed).  Single definition: Switch._recompute_train_ok.
                node._recompute_train_ok()
            self._installed = False

    # -- conveniences -----------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def packets(self) -> List[Packet]:
        return [p for _, p in self.records]

    @property
    def times(self) -> List[int]:
        return [t for t, _ in self.records]

    def inter_arrival_ps(self) -> List[int]:
        ts = self.times
        return [b - a for a, b in zip(ts, ts[1:])]

    def summary(self) -> str:
        by_kind: dict = {}
        for _, p in self.records:
            by_kind[p.kind] = by_kind.get(p.kind, 0) + 1
        parts = ", ".join(
            f"{KIND_NAMES.get(k, k)}={n}" for k, n in sorted(by_kind.items())
        )
        return f"<PacketTap {self.node.name}: {self.count} pkts ({parts})>"
