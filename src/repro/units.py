"""Time, rate and size units used throughout the simulator.

The simulator clock is an integer number of **picoseconds**.  Integer time
makes event ordering exact and reproducible: a 1538-byte frame at 100 Gb/s
serializes in exactly 123_040 ps, with no floating-point drift across
millions of packets.  All public helpers below convert human units into the
integer picosecond domain (time) or the ``bytes``/``bits`` domain (size).

Rates are carried around as plain Gb/s floats in configuration objects and
converted to exact serialization times with :func:`serialization_ps`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time constants (picoseconds)
# ---------------------------------------------------------------------------
PS: int = 1
NS: int = 1_000
US: int = 1_000_000
MS: int = 1_000_000_000
SEC: int = 1_000_000_000_000

# ---------------------------------------------------------------------------
# Size constants (bytes)
# ---------------------------------------------------------------------------
KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000
KiB: int = 1024
MiB: int = 1024 * 1024

#: Default Ethernet MTU used by the paper (Section 5: "MTU is set to 1518").
DEFAULT_MTU: int = 1518
#: Minimal ACK frame size — RoCE ACKs are "a few dozen bytes" (Observation 3).
ACK_SIZE: int = 64
#: PFC PAUSE/RESUME MAC control frame size (IEEE 802.1Qbb).
PAUSE_FRAME_SIZE: int = 64
#: DCQCN Congestion Notification Packet size.
CNP_SIZE: int = 64


def ns(x: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return round(x * NS)


def us(x: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return round(x * US)


def ms(x: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return round(x * MS)


def sec(x: float) -> int:
    """Convert seconds to integer picoseconds."""
    return round(x * SEC)


def to_us(t_ps: int) -> float:
    """Convert integer picoseconds back to (float) microseconds."""
    return t_ps / US


def to_sec(t_ps: int) -> float:
    """Convert integer picoseconds back to (float) seconds."""
    return t_ps / SEC


def serialization_ps(nbytes: int, rate_gbps: float) -> int:
    """Exact wire time of ``nbytes`` at ``rate_gbps``.

    ``bits / (rate_gbps * 1e9) seconds == bits * 1000 / rate_gbps ps``.
    For the rates used in the paper (100/200/400 Gb/s) this is an exact
    integer for any byte count.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    return round(nbytes * 8 * 1000 / rate_gbps)


def gbps_to_bytes_per_ps(rate_gbps: float) -> float:
    """Convert Gb/s into bytes per picosecond (for pacing arithmetic)."""
    return rate_gbps * 1e9 / 8 / SEC * 1  # == rate_gbps / 8000.0


def bytes_per_ps_to_gbps(rate: float) -> float:
    """Inverse of :func:`gbps_to_bytes_per_ps`."""
    return rate * 8000.0


def bdp_bytes(rate_gbps: float, rtt_ps: int) -> int:
    """Bandwidth-delay product in bytes for a link rate and base RTT."""
    return int(rate_gbps / 8000.0 * rtt_ps)


def rate_of_window(window_bytes: float, rtt_ps: int) -> float:
    """The pacing rate R = W/T (Alg. 3 line 47) in Gb/s."""
    if rtt_ps <= 0:
        raise ValueError("rtt must be positive")
    return window_bytes / rtt_ps * 8000.0
