"""FNCC — Fast Notification Congestion Control (the paper's contribution).

FNCC's sender *is* HPCC's sender (same MeasureInFlight / ComputeWind, §3.2.2)
with two differences:

1. **ACK-path INT.**  Switches insert INT into ACKs on the return path
   (Alg. 1), so records reach the sender sub-RTT fresh.  Because the ACK
   collects records receiver-side first, the list arrives in *reverse*
   request order; :meth:`Fncc.order_records` restores request order so hop 0
   is the first switch, matching HPCC's indexing.

2. **Last-hop congestion speedup (LHCS, Alg. 2).**  Per ACK, find the hop
   with the largest utilization ``U_j``.  If it is the last hop and
   ``U_max > alpha`` (alpha slightly above 1, e.g. 1.05), jump the reference
   window straight to the fair share ``Wc = B * RTT * beta / N`` where ``N``
   is the concurrent-flow count the receiver wrote into the ACK and ``beta``
   (slightly below 1, e.g. 0.9) drains the built-up queue.

The switch-side behaviour (All_INT_Table, ACK stamping) lives in
:class:`repro.net.switch.Switch` with ``IntMode.FNCC``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cc.hpcc import Hpcc, HpccConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import INTRecord, Packet
    from repro.transport.sender import SenderQP


class FnccConfig(HpccConfig):
    """HPCC knobs plus the LHCS parameters of Alg. 2."""

    __slots__ = ("alpha", "beta", "lhcs_enabled")

    def __init__(
        self,
        alpha: float = 1.05,
        beta: float = 0.9,
        lhcs_enabled: bool = True,
        **hpcc_kwargs,
    ) -> None:
        super().__init__(**hpcc_kwargs)
        if alpha <= 1.0:
            raise ValueError(
                f"alpha must exceed 1 to avoid over-sensitivity (got {alpha})"
            )
        if not (0.0 < beta <= 1.0):
            raise ValueError(f"beta must be in (0,1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.lhcs_enabled = lhcs_enabled


class Fncc(Hpcc):
    name = "fncc"

    def __init__(self, config: Optional[FnccConfig] = None) -> None:
        super().__init__(config or FnccConfig())
        self.lhcs_activations = 0
        self.last_lhcs_target: float = 0.0

    # ACK-path INT arrives last-request-hop first; restore request order.
    def order_records(self, ack: "Packet") -> Optional[List["INTRecord"]]:
        recs = ack.int_records
        if recs is None:
            return None
        return recs[::-1]

    # Alg. 2 — RP's last-hop congestion speedup, invoked from ComputeWind.
    def _update_wc_hook(self, ack: "Packet", qp: "SenderQP") -> None:
        cfg: FnccConfig = self.config  # type: ignore[assignment]
        if not cfg.lhcs_enabled:
            return
        hop_u = self.hop_u
        if not hop_u:
            return
        u_max = 0.0
        hop = 0
        for j, u_j in enumerate(hop_u):
            if u_j > u_max:
                u_max = u_j
                hop = j
        if hop == len(hop_u) - 1 and u_max > cfg.alpha:
            n = max(1, ack.n_flows)
            # B is the last hop's bandwidth from its own INT record (Alg. 3
            # line 25 uses ack.L[0].B — the record the last-hop switch wrote).
            last_rec = self.prev_records[-1] if self.prev_records else None
            b_gbps = last_rec.bandwidth_gbps if last_rec else qp.line_rate_gbps
            target = (b_gbps / 8000.0) * self.t_ps * cfg.beta / n
            self.wc = self._clamp(target)
            self.last_lhcs_target = target
            self.lhcs_activations += 1
