"""HPCC — High Precision Congestion Control (Li et al., SIGCOMM'19).

A faithful implementation of Algorithm 3 of the FNCC paper, which restates
HPCC's sender:

* ``MeasureInFlight`` — per-hop utilization ``u_i = min(qlen)/(B*T) +
  txRate/B`` from consecutive INT records, max across hops, smoothed by an
  EWMA with weight ``tau/T``.
* ``ComputeWind`` — multiplicative adjustment toward ``eta`` plus a small
  additive-increase term ``W_AI``; at most ``maxStage`` consecutive AI-only
  steps before a multiplicative step is forced.
* Per-RTT reference window ``Wc``: the sender only commits ``Wc <- W`` when
  the ACK acknowledges the first packet sent under the current ``Wc``
  (tracked by ``lastUpdateSeq``), avoiding per-ACK overreaction.

INT records arrive in *request-path order* (hop 0 = first switch) because
HPCC switches stamp data packets and the receiver echoes the stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cc.base import CongestionControl
from repro.units import DEFAULT_MTU

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import INTRecord, Packet
    from repro.transport.sender import SenderQP


class HpccConfig:
    """HPCC knobs, defaults per the paper (eta=0.95, maxStage=5).

    ``wai_bytes`` defaults to ``bdp * (1 - eta) / wai_flows``: the HPCC
    paper's guidance that W_AI is the per-flow share of the spare bandwidth
    headroom for an expected degree of concurrency (``wai_flows``).
    """

    __slots__ = ("eta", "max_stage", "wai_bytes", "wai_flows", "min_window_bytes")

    def __init__(
        self,
        eta: float = 0.95,
        max_stage: int = 5,
        wai_bytes: Optional[float] = None,
        wai_flows: int = 8,
        min_window_bytes: float = float(DEFAULT_MTU),
    ) -> None:
        if not (0.0 < eta <= 1.0):
            raise ValueError(f"eta must be in (0,1], got {eta}")
        if max_stage < 1:
            raise ValueError("max_stage must be >= 1")
        if wai_flows < 1:
            raise ValueError("wai_flows must be >= 1")
        self.eta = eta
        self.max_stage = max_stage
        self.wai_bytes = wai_bytes
        self.wai_flows = wai_flows
        self.min_window_bytes = min_window_bytes


class Hpcc(CongestionControl):
    name = "hpcc"

    def __init__(self, config: Optional[HpccConfig] = None) -> None:
        self.config = config or HpccConfig()
        # Per-flow state (one CC instance per flow).
        self.wc: float = 0.0
        self.inc_stage: int = 0
        self.last_update_seq: int = 0
        self.prev_records: Optional[List["INTRecord"]] = None
        self.u_ewma: float = 0.0
        self.hop_u: List[float] = []
        self.t_ps: int = 0
        self.w_init: float = 0.0
        self.wai: float = 0.0

    # -- lifecycle --------------------------------------------------------------
    def on_flow_start(self, qp: "SenderQP") -> None:
        self.t_ps = qp.base_rtt_ps
        # W_init = B * T (bandwidth-delay product of the flow's own NIC).
        self.w_init = qp.line_rate_gbps / 8000.0 * self.t_ps
        cfg = self.config
        self.wai = (
            cfg.wai_bytes
            if cfg.wai_bytes is not None
            else self.w_init * (1.0 - cfg.eta) / cfg.wai_flows
        )
        self.wc = self.w_init
        self.u_ewma = 1.0  # assume the network is busy until told otherwise
        self.last_update_seq = 0
        self.set_window(qp, self.w_init, self.t_ps)

    # -- INT ordering hook (FNCC overrides: ACK-path order is reversed) -----------
    def order_records(self, ack: "Packet") -> Optional[List["INTRecord"]]:
        return ack.int_records

    # -- Alg. 3 ----------------------------------------------------------------------
    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        recs = self.order_records(ack)
        if not recs:
            return
        prev = self.prev_records
        if prev is None or len(prev) != len(recs):
            # First usable ACK: just seed the reference records.
            self.prev_records = recs
            return
        u = self._measure_inflight(recs, prev)
        update_wc = ack.seq > self.last_update_seq
        w = self._compute_wind(u, update_wc, ack, qp)
        if update_wc:
            self.last_update_seq = qp.snd_nxt
        w = self._clamp(w)
        self.set_window(qp, w, self.t_ps)
        self.prev_records = recs

    def _measure_inflight(
        self, recs: List["INTRecord"], prev: List["INTRecord"]
    ) -> float:
        """Alg. 3 lines 4-14: normalized in-flight bytes, EWMA-smoothed."""
        t_ps = self.t_ps
        u_max = 0.0
        tau = 0  # falls back to the observed ACK interval of hop 0
        prev_hop_u = self.hop_u
        n_prev_u = len(prev_hop_u)
        hop_u: List[float] = []
        self.hop_u = hop_u
        for i, (cur, old) in enumerate(zip(recs, prev)):
            dt = cur.ts - old.ts
            b_bytes_per_ps = cur.bandwidth_gbps / 8000.0
            if dt > 0:
                tx_rate = (cur.tx_bytes - old.tx_bytes) / dt  # bytes/ps
                if tau == 0:
                    tau = dt
                qlen = cur.qlen  # min(cur, old), inlined
                oq = old.qlen
                if oq < qlen:
                    qlen = oq
                u_i = qlen / (b_bytes_per_ps * t_ps) + tx_rate / b_bytes_per_ps
            elif i < n_prev_u:
                # Telemetry unchanged (e.g. a periodically refreshed
                # All_INT_Table between refreshes): carry the hop forward.
                u_i = prev_hop_u[i]
            else:
                u_i = cur.qlen / (b_bytes_per_ps * t_ps) + 1.0
            hop_u.append(u_i)
            if u_i > u_max:
                u_max = u_i
                if dt > 0:
                    tau = dt
        if tau == 0:
            tau = t_ps
        tau = min(tau, t_ps)
        self.u_ewma = (1.0 - tau / t_ps) * self.u_ewma + (tau / t_ps) * u_max
        return self.u_ewma

    def _compute_wind(
        self, u: float, update_wc: bool, ack: "Packet", qp: "SenderQP"
    ) -> float:
        """Alg. 3 lines 29-40 (FNCC inserts UpdateWc at the top, line 30)."""
        self._update_wc_hook(ack, qp)
        cfg = self.config
        if u >= cfg.eta or self.inc_stage >= cfg.max_stage:
            # Floor u: an idle path (u ~ 0) means "multiply up as far as
            # allowed"; the clamp to W_init bounds the result anyway.
            w = self.wc / (max(u, 0.01) / cfg.eta) + self.wai
            if update_wc:
                self.inc_stage = 0
                self.wc = self._clamp(w)
        else:
            w = self.wc + self.wai
            if update_wc:
                self.inc_stage += 1
                self.wc = self._clamp(w)
        return w

    def _update_wc_hook(self, ack: "Packet", qp: "SenderQP") -> None:
        """FNCC's last-hop congestion speedup plugs in here (Alg. 2)."""

    def _clamp(self, w: float) -> float:
        if w < self.config.min_window_bytes:
            return self.config.min_window_bytes
        if w > self.w_init:
            return self.w_init
        return w
