"""RoCC (Taheri et al., CoNEXT'20) — switch-driven fair-rate baseline.

The congestion point runs a proportional-integral controller per egress
port: every update interval it moves the advertised fair rate opposite to
the queue error ``q - q_ref`` and its derivative.  The rate is conveyed to
senders by stamping it into ACKs that traverse the congested port's reverse
path (the same input-port metadata FNCC uses), taking the minimum along the
path; the sender simply adopts the stamped rate.

Substitution note (DESIGN.md): Cisco's RoCC generates dedicated feedback
packets; stamping ACKs delivers the identical information on the identical
path with one fewer packet type.  The paper's qualitative result — RoCC
converges at millisecond scale and is "hard to converge at the microsecond
level" (Fig. 9) — comes from the PI gains and update cadence, which we keep
at their published magnitudes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.cc.base import UNLIMITED_WINDOW, CongestionControl
from repro.sim.timer import Periodic
from repro.units import KB, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch
    from repro.transport.sender import SenderQP


class RoccConfig:
    """PI controller parameters.

    ``kp``/``ki`` are in Gbps per byte of queue error.  With the defaults a
    500 KB standing queue pulls the fair rate down by ~10 Gb/s per update
    (every 100 µs), i.e. convergence over hundreds of microseconds to
    milliseconds, matching the paper's observation.
    """

    __slots__ = ("q_ref_bytes", "update_interval_ps", "kp", "ki", "min_rate_gbps", "recover_gbps")

    def __init__(
        self,
        q_ref_bytes: int = 25 * KB,
        update_interval_ps: int = us(100),
        kp: float = 2e-5,
        ki: float = 2e-6,
        min_rate_gbps: float = 0.5,
        recover_gbps: float = 2.0,
    ) -> None:
        if q_ref_bytes < 0:
            raise ValueError("q_ref must be non-negative")
        if update_interval_ps <= 0:
            raise ValueError("update interval must be positive")
        self.q_ref_bytes = q_ref_bytes
        self.update_interval_ps = update_interval_ps
        self.kp = kp
        self.ki = ki
        self.min_rate_gbps = min_rate_gbps
        self.recover_gbps = recover_gbps


class RoccPortController:
    """Per-egress-port PI loop living at the switch."""

    __slots__ = ("port", "config", "fair_rate_gbps", "_q_prev", "_periodic")

    def __init__(self, switch: "Switch", port_idx: int, config: RoccConfig) -> None:
        self.port = switch.ports[port_idx]
        self.config = config
        self.fair_rate_gbps = self.port.rate_gbps
        self._q_prev = 0
        self._periodic = Periodic(
            switch.sim, config.update_interval_ps, self._update, switch.lane
        )

    def start(self) -> None:
        self._periodic.start()

    def stop(self) -> None:
        self._periodic.stop()

    def _update(self, _now: int) -> None:
        cfg = self.config
        q = self.port.qbytes_total
        line = self.port.rate_gbps
        if q == 0 and self._q_prev == 0:
            # Idle port: recover toward line rate additively.
            self.fair_rate_gbps = min(line, self.fair_rate_gbps + cfg.recover_gbps)
        else:
            delta = -cfg.kp * (q - cfg.q_ref_bytes) - cfg.ki * (q - self._q_prev)
            self.fair_rate_gbps = min(line, max(cfg.min_rate_gbps, self.fair_rate_gbps + delta))
        self._q_prev = q


def install_rocc(
    switches: Iterable["Switch"], config: Optional[RoccConfig] = None
) -> List[RoccPortController]:
    """Attach and start a PI controller on every egress port of each switch."""
    config = config or RoccConfig()
    controllers: List[RoccPortController] = []
    for sw in switches:
        for idx in range(len(sw.ports)):
            ctrl = RoccPortController(sw, idx, config)
            sw.port_controllers[idx] = ctrl  # dense list, slot per port
            ctrl.start()
            controllers.append(ctrl)
    return controllers


class Rocc(CongestionControl):
    """Sender side: adopt the fair rate stamped into arriving ACKs."""

    name = "rocc"

    def __init__(self) -> None:
        self.last_advertised: Optional[float] = None

    def on_flow_start(self, qp: "SenderQP") -> None:
        qp.window = UNLIMITED_WINDOW
        qp.rate_gbps = qp.line_rate_gbps

    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        rate = ack.rocc_rate_gbps
        if rate is not None:
            self.last_advertised = rate
            qp.rate_gbps = min(qp.line_rate_gbps, rate)
