"""Name-based construction of CC factories.

Experiments select algorithms by name ("fncc", "hpcc", ...).  A factory is a
callable ``(flow, host) -> CongestionControl`` creating one fresh instance
per flow.  Parameter overrides are keyword arguments forwarded to the
algorithm's config class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.cc.fncc import Fncc, FnccConfig
from repro.cc.hpcc import Hpcc, HpccConfig
from repro.cc.rocc import Rocc
from repro.cc.swift import Swift, SwiftConfig
from repro.cc.timely import Timely, TimelyConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.cc.base import CongestionControl
    from repro.net.host import Host
    from repro.transport.flow import Flow

CcFactory = Callable[["Flow", "Host"], "CongestionControl"]

#: algorithm name -> (cc class, config class or None)
ALGORITHMS: Dict[str, Tuple[type, type]] = {
    "hpcc": (Hpcc, HpccConfig),
    "fncc": (Fncc, FnccConfig),
    "dcqcn": (Dcqcn, DcqcnConfig),
    "rocc": (Rocc, None),
    "timely": (Timely, TimelyConfig),
    "swift": (Swift, SwiftConfig),
}


def make_cc_factory(name: str, **params) -> CcFactory:
    """Build a per-flow CC factory for the named algorithm.

    >>> factory = make_cc_factory("fncc", beta=0.85)
    >>> cc = factory(flow, host)   # one instance per flow
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown CC algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    cls, cfg_cls = ALGORITHMS[key]
    if cfg_cls is None:
        if params:
            raise ValueError(f"{name} takes no parameters, got {sorted(params)}")

        def factory(flow, host):
            return cls()

    else:
        config = cfg_cls(**params)

        def factory(flow, host):
            return cls(config)

    return factory
