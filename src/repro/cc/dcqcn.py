"""DCQCN (Zhu et al., SIGCOMM'15) — the ECN/CNP baseline.

Switches RED-mark data packets (see :class:`repro.net.port.EcnConfig`); the
receiver's notification point sends at most one CNP per flow per 50 µs while
marks keep arriving; the sender's reaction point runs the classic rate state
machine:

* on CNP: ``Rt <- Rc``, ``Rc <- Rc * (1 - alpha/2)``,
  ``alpha <- (1-g)*alpha + g``, and the increase state machine resets.
* alpha decays by ``(1-g)`` every ``alpha_timer`` without CNPs.
* rate increases are driven by a timer and a byte counter running in
  parallel; each event does fast recovery (``Rc <- (Rt+Rc)/2``) until both
  counters pass ``F`` stages, then additive increase (``Rt += Rai``), then
  hyper increase (``Rt += Rhai``).

DCQCN is rate-only (no window), which is exactly why the paper's Figs. 1/3
show it queueing deeper and triggering more PFC pauses than window-limited
HPCC/FNCC.

Byte-counter note: the hardware counts transmitted bytes; we advance it on
acknowledged bytes (identical in steady state, documented substitution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.base import UNLIMITED_WINDOW, CongestionControl
from repro.sim.timer import Timer
from repro.units import MB, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.transport.sender import SenderQP


class DcqcnConfig:
    """Defaults follow the DCQCN paper's recommended values (the FNCC paper
    states DCQCN "parameters are assigned to the default values recommended
    in research [25, 31]"): g=1/256, 55 us timers, F=5, Rai=40 Mb/s,
    Rhai=400 Mb/s.  The small Rai/Rhai are what make DCQCN recover slowly
    at 100G+ rates — the sluggishness Figs. 9 and 14/15 exhibit."""

    __slots__ = (
        "g",
        "alpha_timer_ps",
        "inc_timer_ps",
        "byte_counter",
        "stage_threshold",
        "rai_gbps",
        "rhai_gbps",
        "min_rate_gbps",
    )

    def __init__(
        self,
        g: float = 1.0 / 256.0,
        alpha_timer_ps: int = us(55),
        inc_timer_ps: int = us(55),
        byte_counter: int = 10 * MB,
        stage_threshold: int = 5,
        rai_gbps: float = 0.04,
        rhai_gbps: float = 0.4,
        min_rate_gbps: float = 0.1,
    ) -> None:
        if not (0.0 < g < 1.0):
            raise ValueError("g must be in (0,1)")
        if stage_threshold < 1:
            raise ValueError("stage threshold must be >= 1")
        self.g = g
        self.alpha_timer_ps = alpha_timer_ps
        self.inc_timer_ps = inc_timer_ps
        self.byte_counter = byte_counter
        self.stage_threshold = stage_threshold
        self.rai_gbps = rai_gbps
        self.rhai_gbps = rhai_gbps
        self.min_rate_gbps = min_rate_gbps


class Dcqcn(CongestionControl):
    name = "dcqcn"

    def __init__(self, config: Optional[DcqcnConfig] = None) -> None:
        self.config = config or DcqcnConfig()
        self.rc: float = 0.0  # current rate (Gbps)
        self.rt: float = 0.0  # target rate
        self.alpha: float = 1.0
        self.time_stage = 0
        self.byte_stage = 0
        self._bytes_since_inc = 0
        self._last_una = 0
        self._alpha_timer: Optional[Timer] = None
        self._inc_timer: Optional[Timer] = None
        self._qp: Optional["SenderQP"] = None
        self.cnps_received = 0

    # -- lifecycle -----------------------------------------------------------------
    def on_flow_start(self, qp: "SenderQP") -> None:
        self._qp = qp
        self.rc = qp.line_rate_gbps
        self.rt = qp.line_rate_gbps
        self.alpha = 1.0
        qp.window = UNLIMITED_WINDOW
        qp.rate_gbps = self.rc
        self._alpha_timer = Timer(qp.sim, self._alpha_fire, qp.host.lane)
        self._inc_timer = Timer(qp.sim, self._inc_fire, qp.host.lane)
        self._alpha_timer.start(self.config.alpha_timer_ps)
        self._inc_timer.start(self.config.inc_timer_ps)

    def on_flow_finish(self, qp: "SenderQP") -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        if self._inc_timer is not None:
            self._inc_timer.cancel()

    # -- notification --------------------------------------------------------------
    def on_cnp(self, qp: "SenderQP") -> None:
        cfg = self.config
        self.cnps_received += 1
        self.rt = self.rc
        self.rc = max(cfg.min_rate_gbps, self.rc * (1.0 - self.alpha / 2.0))
        self.alpha = (1.0 - cfg.g) * self.alpha + cfg.g
        self.time_stage = 0
        self.byte_stage = 0
        self._bytes_since_inc = 0
        qp.rate_gbps = self.rc
        self._alpha_timer.start(cfg.alpha_timer_ps)
        self._inc_timer.start(cfg.inc_timer_ps)

    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        # Advance the byte counter on newly acknowledged bytes.
        delta = qp.snd_una - self._last_una
        if delta > 0:
            self._last_una = qp.snd_una
            self._bytes_since_inc += delta
            if self._bytes_since_inc >= self.config.byte_counter:
                self._bytes_since_inc -= self.config.byte_counter
                self.byte_stage += 1
                self._increase(qp)

    # -- timers ----------------------------------------------------------------------
    def _alpha_fire(self, _arg) -> None:
        self.alpha *= 1.0 - self.config.g
        self._alpha_timer.start(self.config.alpha_timer_ps)

    def _inc_fire(self, _arg) -> None:
        self.time_stage += 1
        if self._qp is not None and not self._qp.finished:
            self._increase(self._qp)
        self._inc_timer.start(self.config.inc_timer_ps)

    # -- rate increase state machine ---------------------------------------------------
    def _increase(self, qp: "SenderQP") -> None:
        cfg = self.config
        f = cfg.stage_threshold
        if self.time_stage < f and self.byte_stage < f:
            pass  # fast recovery: Rt unchanged
        elif self.time_stage >= f and self.byte_stage >= f:
            self.rt = min(qp.line_rate_gbps, self.rt + cfg.rhai_gbps)
        else:
            self.rt = min(qp.line_rate_gbps, self.rt + cfg.rai_gbps)
        self.rc = min(qp.line_rate_gbps, (self.rt + self.rc) / 2.0)
        qp.rate_gbps = self.rc
