"""TIMELY (Mittal et al., SIGCOMM'15) — RTT-gradient CC, related-work extension.

The sender measures per-ACK RTT from the echoed transmit timestamp and
adjusts rate on the *gradient* of smoothed RTT: additive increase when the
normalized gradient is non-positive, multiplicative decrease proportional to
the gradient when positive, with hard low/high RTT guard bands (HAI mode is
folded into the guard bands as in the paper's simplified algorithm).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.base import UNLIMITED_WINDOW, CongestionControl
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.transport.sender import SenderQP


class TimelyConfig:
    __slots__ = (
        "ewma_alpha",
        "t_low_ps",
        "t_high_ps",
        "add_step_gbps",
        "beta",
        "min_rate_gbps",
    )

    def __init__(
        self,
        ewma_alpha: float = 0.02,
        t_low_ps: int = us(10),
        t_high_ps: int = us(50),
        add_step_gbps: float = 1.0,
        beta: float = 0.8,
        min_rate_gbps: float = 0.1,
    ) -> None:
        if not (0.0 < ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0,1]")
        if t_low_ps >= t_high_ps:
            raise ValueError("t_low must be below t_high")
        self.ewma_alpha = ewma_alpha
        self.t_low_ps = t_low_ps
        self.t_high_ps = t_high_ps
        self.add_step_gbps = add_step_gbps
        self.beta = beta
        self.min_rate_gbps = min_rate_gbps


class Timely(CongestionControl):
    name = "timely"

    def __init__(self, config: Optional[TimelyConfig] = None) -> None:
        self.config = config or TimelyConfig()
        self._prev_rtt: Optional[int] = None
        self._rtt_diff_ewma = 0.0

    def on_flow_start(self, qp: "SenderQP") -> None:
        qp.window = UNLIMITED_WINDOW
        qp.rate_gbps = qp.line_rate_gbps

    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        if ack.echo_sent_ts <= 0:
            return
        rtt = qp.sim.now - ack.echo_sent_ts
        cfg = self.config
        if self._prev_rtt is None:
            self._prev_rtt = rtt
            return
        diff = rtt - self._prev_rtt
        self._prev_rtt = rtt
        a = cfg.ewma_alpha
        self._rtt_diff_ewma = (1 - a) * self._rtt_diff_ewma + a * diff
        # Normalize the gradient by the minimum RTT (the flow's base RTT).
        gradient = self._rtt_diff_ewma / max(1, qp.base_rtt_ps)
        rate = qp.rate_gbps
        if rtt < cfg.t_low_ps:
            rate += cfg.add_step_gbps
        elif rtt > cfg.t_high_ps:
            rate *= 1.0 - cfg.beta * (1.0 - cfg.t_high_ps / rtt)
        elif gradient <= 0:
            rate += cfg.add_step_gbps
        else:
            rate *= 1.0 - cfg.beta * min(1.0, gradient)
        qp.rate_gbps = min(qp.line_rate_gbps, max(cfg.min_rate_gbps, rate))
