"""The congestion-control interface.

One instance exists per flow (per sender QP).  The QP calls the hooks; the
CC responds by mutating ``qp.window`` (bytes) and ``qp.rate_gbps``.  Rate
and window are always kept consistent via ``R = W / T`` for window-based
schemes (Alg. 3 line 47); rate-only schemes (DCQCN, RoCC, Timely, Swift)
leave the window unlimited.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.transport.sender import SenderQP

#: Effectively-unlimited window for rate-only CC schemes.
UNLIMITED_WINDOW = float(1 << 50)


class CongestionControl:
    """Base class; every hook is optional."""

    #: Human-readable algorithm name (overridden by subclasses).
    name = "none"

    def on_flow_start(self, qp: "SenderQP") -> None:
        """Initialize ``qp.window`` / ``qp.rate_gbps`` before the first send."""
        qp.window = UNLIMITED_WINDOW
        qp.rate_gbps = qp.line_rate_gbps

    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        """Per-ACK update (INT, RTT, echo bits...)."""

    def on_cnp(self, qp: "SenderQP") -> None:
        """DCQCN congestion notification arrived."""

    def on_timeout(self, qp: "SenderQP") -> None:
        """Retransmission timeout fired (loss)."""

    def on_flow_finish(self, qp: "SenderQP") -> None:
        """Flow fully acknowledged; cancel any timers."""

    # -- shared helpers -----------------------------------------------------------
    @staticmethod
    def set_window(qp: "SenderQP", window_bytes: float, rtt_ps: int) -> None:
        """Apply W and the matching pacing rate R = W/T."""
        qp.window = window_bytes
        qp.rate_gbps = window_bytes / rtt_ps * 8000.0

    @staticmethod
    def set_rate(qp: "SenderQP", rate_gbps: float) -> None:
        qp.rate_gbps = rate_gbps
