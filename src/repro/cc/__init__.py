"""Congestion-control algorithms.

The paper's contribution (:class:`~repro.cc.fncc.Fncc`) and every baseline
it compares against:

* :mod:`repro.cc.hpcc` — HPCC (Li et al., SIGCOMM'19), Alg. 3 of the paper.
* :mod:`repro.cc.fncc` — FNCC = HPCC + ACK-path INT + last-hop congestion
  speedup (LHCS, Alg. 2).
* :mod:`repro.cc.dcqcn` — DCQCN (Zhu et al., SIGCOMM'15), ECN/CNP based.
* :mod:`repro.cc.rocc` — RoCC (Taheri et al., CoNEXT'20), switch-resident
  PI fair-rate controller.
* :mod:`repro.cc.timely`, :mod:`repro.cc.swift` — delay-based schemes from
  the related-work section, provided as extensions.

Use :func:`repro.cc.registry.make_cc_factory` to construct a per-flow
factory from an algorithm name and parameter overrides.
"""

from repro.cc.base import CongestionControl
from repro.cc.hpcc import Hpcc, HpccConfig
from repro.cc.fncc import Fncc, FnccConfig
from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.cc.rocc import Rocc, RoccConfig, RoccPortController, install_rocc
from repro.cc.timely import Timely, TimelyConfig
from repro.cc.swift import Swift, SwiftConfig
from repro.cc.registry import make_cc_factory, ALGORITHMS

__all__ = [
    "CongestionControl",
    "Hpcc",
    "HpccConfig",
    "Fncc",
    "FnccConfig",
    "Dcqcn",
    "DcqcnConfig",
    "Rocc",
    "RoccConfig",
    "RoccPortController",
    "install_rocc",
    "Timely",
    "TimelyConfig",
    "Swift",
    "SwiftConfig",
    "make_cc_factory",
    "ALGORITHMS",
]
