"""Swift (Kumar et al., SIGCOMM'20) — delay-target CC, related-work extension.

Window-based AIMD against a target delay that scales with hop count and the
flow's fair share (the paper's "flow-scaled" target simplified to the base
target plus per-hop term).  Included because the FNCC paper discusses it in
related work; useful as an extra baseline in ablation benches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.base import CongestionControl
from repro.units import DEFAULT_MTU, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.transport.sender import SenderQP


class SwiftConfig:
    __slots__ = (
        "base_target_ps",
        "per_hop_ps",
        "ai_bytes",
        "md_beta",
        "max_mdf",
        "min_window_bytes",
    )

    def __init__(
        self,
        base_target_ps: int = us(25),
        per_hop_ps: int = us(1),
        ai_bytes: float = float(DEFAULT_MTU),
        md_beta: float = 0.8,
        max_mdf: float = 0.5,
        min_window_bytes: float = float(DEFAULT_MTU) / 4,
    ) -> None:
        if base_target_ps <= 0:
            raise ValueError("target must be positive")
        if not (0.0 < max_mdf < 1.0):
            raise ValueError("max_mdf must be in (0,1)")
        self.base_target_ps = base_target_ps
        self.per_hop_ps = per_hop_ps
        self.ai_bytes = ai_bytes
        self.md_beta = md_beta
        self.max_mdf = max_mdf
        self.min_window_bytes = min_window_bytes


class Swift(CongestionControl):
    name = "swift"

    def __init__(self, config: Optional[SwiftConfig] = None) -> None:
        self.config = config or SwiftConfig()
        self._last_decrease_ps = -(1 << 62)

    def on_flow_start(self, qp: "SenderQP") -> None:
        w_init = qp.line_rate_gbps / 8000.0 * qp.base_rtt_ps
        self.set_window(qp, w_init, qp.base_rtt_ps)
        self._w_max = w_init

    def on_ack(self, qp: "SenderQP", ack: "Packet") -> None:
        if ack.echo_sent_ts <= 0:
            return
        cfg = self.config
        rtt = qp.sim.now - ack.echo_sent_ts
        target = cfg.base_target_ps + cfg.per_hop_ps * max(1, ack.n_hops)
        target += qp.base_rtt_ps
        w = qp.window
        if rtt < target:
            # Additive increase, scaled per-ACK as in Swift.
            w += cfg.ai_bytes * (DEFAULT_MTU / max(w, 1.0))
            w = min(w, self._w_max)
        else:
            # At most one multiplicative decrease per RTT.
            if qp.sim.now - self._last_decrease_ps >= qp.base_rtt_ps:
                self._last_decrease_ps = qp.sim.now
                mdf = min(cfg.max_mdf, cfg.md_beta * (rtt - target) / rtt)
                w *= 1.0 - mdf
        w = max(cfg.min_window_bytes, w)
        self.set_window(qp, w, qp.base_rtt_ps)
