"""Topology builders.

* :class:`~repro.topo.base.Topology` — generic container: nodes, links, the
  networkx graph used by routing, base-RTT/path computation.
* :func:`~repro.topo.dumbbell.dumbbell` — Fig. 10: N senders, a chain of M
  switches, one receiver.
* :func:`~repro.topo.parkinglot.congestion_at` — Fig. 11: two senders whose
  flows collide at the first, middle, or last hop of a 3-switch chain.
* :func:`~repro.topo.fattree.fattree` — three-level fat-tree (any even k),
  the §5.5 large-scale fabric.
* :func:`~repro.topo.star.star` — single-switch star (incast scenarios).
* :func:`~repro.topo.jellyfish.jellyfish` — random regular graph, used to
  exercise the spanning-tree routing of Observation 2.
"""

from repro.topo.base import LinkSpec, Topology
from repro.topo.dumbbell import dumbbell
from repro.topo.parkinglot import congestion_at
from repro.topo.fattree import fattree
from repro.topo.star import star
from repro.topo.jellyfish import jellyfish

__all__ = [
    "LinkSpec",
    "Topology",
    "dumbbell",
    "congestion_at",
    "fattree",
    "star",
    "jellyfish",
]
