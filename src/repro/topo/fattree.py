"""Three-level fat-tree (the §5.5 large-scale fabric).

Standard k-ary fat-tree: k pods, each with k/2 edge (ToR) and k/2
aggregation switches; (k/2)^2 core switches; k/2 hosts per ToR, so k^3/4
hosts total (k=8 gives the paper's 128 servers, k=4 a 16-server scale
model).  1:1 oversubscription: every link runs at the same rate, as in the
paper.

Naming is chosen so that sorted-neighbor ECMP is symmetric (see
:mod:`repro.routing.ecmp`): aggregation switch ``agg_{pod}_{i}`` connects to
cores ``core_{i}_{j}``, so picking up-link index j at level 2 reaches the
same core from any pod.
"""

from __future__ import annotations

from typing import Optional

from repro.net.switch import SwitchConfig
from repro.routing import install_ecmp
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.transport.sender import TransportConfig


def fattree(
    sim: Simulator,
    k: int = 4,
    link: Optional[LinkSpec] = None,
    switch_config: Optional[SwitchConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    seeds: Optional[SeedSequenceFactory] = None,
    cnp_enabled: bool = False,
    symmetric_ecmp: bool = True,
    lb=None,
) -> Topology:
    """``lb`` selects the load-balancing strategy (an
    :class:`repro.lb.LbConfig` or a strategy name); None keeps the ECMP
    baseline controlled by ``symmetric_ecmp``."""
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(
        sim,
        seeds=seeds,
        default_link=link,
        switch_config=switch_config,
        transport_config=transport_config,
    )

    cores = [
        [topo.add_switch(f"core_{i}_{j}") for j in range(half)] for i in range(half)
    ]
    for pod in range(k):
        aggs = [topo.add_switch(f"agg_{pod}_{i}") for i in range(half)]
        tors = [topo.add_switch(f"tor_{pod}_{e}") for e in range(half)]
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.link(agg, cores[i][j])
            for tor in tors:
                topo.link(tor, agg)
        for e, tor in enumerate(tors):
            for h in range(half):
                host = topo.add_host(
                    f"h_{pod}_{e}_{h}", cnp_enabled=cnp_enabled
                )
                topo.link(host, tor)

    if lb is None:
        install_ecmp(topo, symmetric=symmetric_ecmp)
    else:
        from repro.lb import install_lb

        install_lb(topo, lb)
    topo.start()
    return topo


def n_hosts(k: int) -> int:
    """Host count of a k-ary fat-tree (k^3 / 4)."""
    return k * k * k // 4
