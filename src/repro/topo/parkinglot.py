"""Fig. 11's scenarios: congestion at a chosen hop of a 3-switch chain.

Two senders, one receiver, a chain sw0 -> sw1 -> sw2 -> receiver0.

* ``"first"``  — both senders on sw0: flows collide on sw0 -> sw1.
* ``"middle"`` — sender0 on sw0, sender1 on sw1: collide on sw1 -> sw2.
* ``"last"``   — sender0 on sw0, sender1 on sw2: collide on sw2 -> receiver,
  the last hop — the scenario LHCS (Alg. 2) accelerates.

``congested_switch_index`` on the returned topology names the switch whose
egress toward the receiver is the collision point, and
``congested_port_index`` the port to monitor.
"""

from __future__ import annotations

from typing import Optional

from repro.net.switch import SwitchConfig
from repro.routing import install_ecmp
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.transport.sender import TransportConfig

LOCATIONS = ("first", "middle", "last")


def congestion_at(
    sim: Simulator,
    location: str,
    n_switches: int = 3,
    link: Optional[LinkSpec] = None,
    switch_config: Optional[SwitchConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    seeds: Optional[SeedSequenceFactory] = None,
    cnp_enabled: bool = False,
) -> Topology:
    if location not in LOCATIONS:
        raise ValueError(f"location must be one of {LOCATIONS}, got {location!r}")
    if n_switches < 3:
        raise ValueError("need at least 3 switches for distinct hop locations")
    topo = Topology(
        sim,
        seeds=seeds,
        default_link=link,
        switch_config=switch_config,
        transport_config=transport_config,
    )
    switches = [topo.add_switch(f"sw{i}") for i in range(n_switches)]
    sender0 = topo.add_host("sender0", cnp_enabled=cnp_enabled)
    sender1 = topo.add_host("sender1", cnp_enabled=cnp_enabled)
    receiver = topo.add_host("receiver0", cnp_enabled=cnp_enabled)

    for a, b in zip(switches, switches[1:]):
        topo.link(a, b)
    topo.link(switches[-1], receiver)
    topo.link(sender0, switches[0])
    if location == "first":
        topo.link(sender1, switches[0])
        congested = 0
    elif location == "middle":
        topo.link(sender1, switches[n_switches // 2])
        congested = n_switches // 2
    else:  # last
        topo.link(sender1, switches[-1])
        congested = n_switches - 1
    install_ecmp(topo)
    topo.start()

    topo.congested_switch_index = congested
    # The congested egress is the port of switches[congested] toward the
    # next element of the chain (or the receiver for the last switch).
    sw_name = switches[congested].name
    nxt = switches[congested + 1].name if congested + 1 < n_switches else receiver.name
    topo.congested_port_index = topo.graph.edges[sw_name, nxt]["ports"][sw_name]
    return topo
