"""The dumbbell topology of Fig. 10.

``N`` senders attach to switch0; a chain of ``M`` switches leads to a single
receiver on the last switch.  All flows share the switch0 -> switch1 link
(M >= 2) or the switch0 -> receiver link (M == 1), so switch0's egress is
the congestion point the paper monitors.
"""

from __future__ import annotations

from typing import Optional

from repro.net.switch import SwitchConfig
from repro.routing import install_ecmp
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.transport.sender import TransportConfig


def dumbbell(
    sim: Simulator,
    n_senders: int = 2,
    n_switches: int = 3,
    link: Optional[LinkSpec] = None,
    switch_config: Optional[SwitchConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    seeds: Optional[SeedSequenceFactory] = None,
    cnp_enabled: bool = False,
    lb=None,
) -> Topology:
    """Build Fig. 10's dumbbell: senders are hosts ``0..N-1``, the receiver
    is host ``N`` (``topo.hosts[-1]``).  Routing is installed; ``lb``
    selects the strategy (single-path here, so every strategy degenerates
    to the same forwarding — the knob exists so ``run_microbench`` can
    thread one configuration through any builder)."""
    if n_senders < 1:
        raise ValueError("need at least one sender")
    if n_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(
        sim,
        seeds=seeds,
        default_link=link,
        switch_config=switch_config,
        transport_config=transport_config,
    )
    switches = [topo.add_switch(f"sw{i}") for i in range(n_switches)]
    senders = [
        topo.add_host(f"sender{i}", cnp_enabled=cnp_enabled) for i in range(n_senders)
    ]
    receiver = topo.add_host("receiver0", cnp_enabled=cnp_enabled)
    for s in senders:
        topo.link(s, switches[0])
    for a, b in zip(switches, switches[1:]):
        topo.link(a, b)
    topo.link(switches[-1], receiver)
    if lb is None:
        install_ecmp(topo)
    else:
        from repro.lb import install_lb

        install_lb(topo, lb)
    topo.start()
    return topo
