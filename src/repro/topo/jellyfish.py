"""Jellyfish (Singla et al., NSDI'12): random regular switch graph.

Used here to exercise Observation 2's spanning-tree routing: on Jellyfish,
shortest-path ECMP is generally *asymmetric*, so FNCC's requirement that
data and ACK share a path needs the multiple-spanning-tree scheme of
Fig. 6 (:func:`repro.routing.install_spanning_trees`).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.net.switch import SwitchConfig
from repro.routing import install_spanning_trees
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.transport.sender import TransportConfig


def jellyfish(
    sim: Simulator,
    n_switches: int = 8,
    switch_degree: int = 4,
    hosts_per_switch: int = 1,
    link: Optional[LinkSpec] = None,
    switch_config: Optional[SwitchConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    seeds: Optional[SeedSequenceFactory] = None,
    n_trees: int = 3,
    cnp_enabled: bool = False,
    lb=None,
) -> Topology:
    """Random ``switch_degree``-regular switch fabric with
    ``hosts_per_switch`` hosts hanging off each switch.  ``lb=None`` keeps
    the paper's spanning-tree routing (symmetric by construction); passing
    an :class:`repro.lb.LbConfig`/strategy name installs shortest-path
    multi-path routing under that strategy instead (generally *asymmetric*
    on Jellyfish — the Observation 2 regime the lbmatrix experiment
    probes)."""
    if switch_degree >= n_switches:
        raise ValueError("degree must be below the switch count")
    if (n_switches * switch_degree) % 2:
        raise ValueError("n_switches * switch_degree must be even")
    topo = Topology(
        sim,
        seeds=seeds,
        default_link=link,
        switch_config=switch_config,
        transport_config=transport_config,
    )
    seed = topo.seeds.child_seed("jellyfish") % (2**31)
    rrg = nx.random_regular_graph(switch_degree, n_switches, seed=seed)
    if not nx.is_connected(rrg):  # rare for the sizes used; retry once
        rrg = nx.random_regular_graph(switch_degree, n_switches, seed=seed + 1)
        if not nx.is_connected(rrg):
            raise RuntimeError("could not build a connected Jellyfish graph")
    switches = [topo.add_switch(f"sw{i}") for i in range(n_switches)]
    for u, v in sorted(rrg.edges):
        topo.link(switches[u], switches[v])
    for i, sw in enumerate(switches):
        for h in range(hosts_per_switch):
            host = topo.add_host(f"h{i}_{h}", cnp_enabled=cnp_enabled)
            topo.link(host, sw)
    if lb is None:
        install_spanning_trees(topo, n_trees=n_trees, seed=topo.seeds.root_seed)
    else:
        from repro.lb import install_lb

        install_lb(topo, lb)
    topo.start()
    return topo
