"""Topology container: nodes, wires, and path arithmetic.

A :class:`Topology` owns the simulator's node population and mirrors the
physical wiring into a :mod:`networkx` graph that the routing installers
consume.  It also computes per-flow base RTTs (the ``T`` of Alg. 3) from
store-and-forward first-packet latency in both directions.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.net.host import Host
from repro.net.port import connect
from repro.net.switch import Switch, SwitchConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.transport.sender import TransportConfig
from repro.units import ACK_SIZE, DEFAULT_MTU, serialization_ps, us


class LinkSpec:
    """Default physical parameters for new links (paper §5: 100 Gb/s links
    with 1.5 µs propagation delay)."""

    __slots__ = ("rate_gbps", "prop_delay_ps")

    def __init__(self, rate_gbps: float = 100.0, prop_delay_ps: int = us(1.5)) -> None:
        if rate_gbps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_gbps = rate_gbps
        self.prop_delay_ps = prop_delay_ps


class Topology:
    """Nodes + wiring + the graph view used for routing and RTT math."""

    def __init__(
        self,
        sim: Simulator,
        seeds: Optional[SeedSequenceFactory] = None,
        default_link: Optional[LinkSpec] = None,
        switch_config: Optional[SwitchConfig] = None,
        transport_config: Optional[TransportConfig] = None,
        pool_packets: bool = True,
    ) -> None:
        self.sim = sim
        self.seeds = seeds or SeedSequenceFactory(1)
        self.default_link = default_link or LinkSpec()
        self.switch_config = switch_config or SwitchConfig()
        # Topology-owned copy: every host shares it (so install-time
        # adjustments like the LB layer's reorder window reach receivers
        # registered later), but a caller's config object passed to several
        # topologies is never mutated behind their back.
        self.transport_config = copy.copy(transport_config) if transport_config else TransportConfig()
        # Experiment fabrics recycle frames by default (see PacketPool);
        # pass pool_packets=False to keep packets immortal for debugging.
        self.pool_packets = pool_packets
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.graph = nx.Graph()
        self._by_name: Dict[str, object] = {}
        # Set by repro.lb.install_lb: the installed strategy config and the
        # next-hop tables it computed (None for hand-wired routing).
        self.lb_config = None
        self.routing_tables = None
        # Bumped by install_lb on every (re)install; consumers that cache
        # routing decisions outside the switches (the flow-level path memo)
        # compare against it instead of hooking the install path.
        self.routing_epoch = 0

    # -- construction ------------------------------------------------------------
    def add_host(self, name: str, cnp_enabled: bool = False) -> Host:
        if name in self._by_name:
            raise ValueError(f"duplicate node name {name}")
        host = Host(
            self.sim,
            name,
            host_id=len(self.hosts),
            transport=self.transport_config,
            cnp_enabled=cnp_enabled,
            pool_packets=self.pool_packets,
        )
        self.hosts.append(host)
        self._by_name[name] = host
        self.graph.add_node(name, kind="host", host_id=host.host_id)
        return host

    def add_switch(self, name: str, config: Optional[SwitchConfig] = None) -> Switch:
        if name in self._by_name:
            raise ValueError(f"duplicate node name {name}")
        sw = Switch(self.sim, name, config or self.switch_config)
        if sw.config.ecn is not None:
            sw.set_ecn_rng(self.seeds.stream(f"ecn.{name}"))
        self.switches.append(sw)
        self._by_name[name] = sw
        self.graph.add_node(name, kind="switch")
        return sw

    def link(
        self,
        a,
        b,
        rate_gbps: Optional[float] = None,
        prop_delay_ps: Optional[int] = None,
    ) -> Tuple:
        """Wire ``a`` and ``b`` (nodes or names) with a full-duplex link."""
        node_a = self._by_name[a] if isinstance(a, str) else a
        node_b = self._by_name[b] if isinstance(b, str) else b
        rate = rate_gbps if rate_gbps is not None else self.default_link.rate_gbps
        delay = (
            prop_delay_ps
            if prop_delay_ps is not None
            else self.default_link.prop_delay_ps
        )
        pa, pb = connect(self.sim, node_a, node_b, rate, delay)
        self.graph.add_edge(
            node_a.name,
            node_b.name,
            ports={node_a.name: pa.index, node_b.name: pb.index},
            rate_gbps=rate,
            prop_delay_ps=delay,
        )
        return pa, pb

    def node(self, name: str):
        return self._by_name[name]

    def host_by_id(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def start(self) -> None:
        """Arm periodic switch machinery (INT table refresh, etc.)."""
        for sw in self.switches:
            sw.start()

    # -- path arithmetic ----------------------------------------------------------
    def path_names(self, src_host_id: int, dst_host_id: int) -> List[str]:
        """One shortest path (node names), deterministic tie-break."""
        src = self.hosts[src_host_id].name
        dst = self.hosts[dst_host_id].name
        return min(
            nx.all_shortest_paths(self.graph, src, dst), key=lambda p: tuple(p)
        )

    def path_links(
        self, src_host_id: int, dst_host_id: int
    ) -> List[Tuple[float, int]]:
        """``(rate_gbps, prop_delay_ps)`` per link along one shortest path."""
        names = self.path_names(src_host_id, dst_host_id)
        links = []
        for u, v in zip(names, names[1:]):
            e = self.graph.edges[u, v]
            links.append((e["rate_gbps"], e["prop_delay_ps"]))
        return links

    def base_rtt_ps(
        self,
        src_host_id: int,
        dst_host_id: int,
        mtu: int = DEFAULT_MTU,
        ack_size: int = ACK_SIZE,
    ) -> int:
        """Unloaded RTT: store-and-forward MTU frame out, ACK back.

        This is the ``RTT`` of Eq. 4 and the ``T`` of Alg. 3.
        """
        links = self.path_links(src_host_id, dst_host_id)
        fwd = sum(serialization_ps(mtu, r) + d for r, d in links)
        back = sum(serialization_ps(ack_size, r) + d for r, d in links)
        return fwd + back

    def bottleneck_gbps(self, src_host_id: int, dst_host_id: int) -> float:
        return min(r for r, _ in self.path_links(src_host_id, dst_host_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology hosts={len(self.hosts)} switches={len(self.switches)} "
            f"links={self.graph.number_of_edges()}>"
        )
