"""Single-switch star — the simplest last-hop-congestion (incast) fabric.

Also an example of a topology that "inherently lacks path diversity"
(Observation 2): the data/ACK path is trivially symmetric.
"""

from __future__ import annotations

from typing import Optional

from repro.net.switch import SwitchConfig
from repro.routing import install_ecmp
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.base import LinkSpec, Topology
from repro.transport.sender import TransportConfig


def star(
    sim: Simulator,
    n_hosts: int,
    link: Optional[LinkSpec] = None,
    switch_config: Optional[SwitchConfig] = None,
    transport_config: Optional[TransportConfig] = None,
    seeds: Optional[SeedSequenceFactory] = None,
    cnp_enabled: bool = False,
) -> Topology:
    if n_hosts < 2:
        raise ValueError("a star needs at least two hosts")
    topo = Topology(
        sim,
        seeds=seeds,
        default_link=link,
        switch_config=switch_config,
        transport_config=transport_config,
    )
    sw = topo.add_switch("sw0")
    for i in range(n_hosts):
        host = topo.add_host(f"h{i}", cnp_enabled=cnp_enabled)
        topo.link(host, sw)
    install_ecmp(topo)
    topo.start()
    return topo
