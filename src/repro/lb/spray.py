"""Per-packet spray: every DATA packet independently picks an equal-cost
next hop (RPS/DRILL-style).

Two selection modes:

* ``round_robin`` (default) — one counter per (switch, destination) entry:
  consecutive packets toward the same destination walk the next-hop list
  cyclically.  Deterministic with no RNG at all, and gives the most even
  short-term spread.
* ``random`` — uniform choice from a named per-switch RNG stream
  (``lb.spray.<switch>``), deterministic per seed.

Only DATA packets are sprayed.  ACKs and CNPs ride the canonical
symmetric-ECMP flow hash: the reverse path stays stable, so ACK-clocking
and the ACK-path telemetry of FNCC keep a consistent (if now asymmetric)
view while the request path spreads over every core.  Spraying breaks
in-order delivery by design — receivers must run the reorder window
(:func:`repro.lb.base.install_lb` enforces this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.lb.base import LoadBalancer, Router, make_flow_hash_port, register
from repro.net.packet import DATA

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch


@register
class SprayLB(LoadBalancer):
    """Per-packet load balancing over equal-cost next hops."""

    name = "spray"
    reorders = True

    def __init__(
        self,
        mode: str = "round_robin",
        salt: int = 0,
        max_cache_entries: int = 1 << 16,
    ) -> None:
        super().__init__(max_cache_entries=max_cache_entries)
        if mode not in ("round_robin", "random"):
            raise ValueError(f"spray mode must be round_robin|random, got {mode!r}")
        self.mode = mode
        self.salt = salt
        #: dst -> next round-robin offset (round_robin mode).
        self.rr_state: Dict[int, int] = {}
        self.hash_cache: Dict[tuple, int] = {}

    def make_router(self, sw: "Switch", split: Dict[int, object]) -> Router:
        # Canonical symmetric flow hash for the non-sprayed kinds.
        flow_hash_port = make_flow_hash_port(
            self.hash_cache, self.salt, self.max_cache_entries
        )

        if self.mode == "round_robin":
            rr = self.rr_state

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                if pkt.kind != DATA:
                    return flow_hash_port(pkt.src, pkt.dst, pkt.flow_id, ports, n)
                dst = pkt.dst
                i = rr.get(dst, 0)
                rr[dst] = i + 1 if i + 1 < n else 0
                return ports[i]

        else:
            if self.seeds is None:
                raise RuntimeError("random spray needs the topology seed factory")
            rng = self.seeds.stream(f"lb.spray.{sw.name}")
            randrange = rng.randrange

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                if pkt.kind != DATA:
                    return flow_hash_port(pkt.src, pkt.dst, pkt.flow_id, ports, n)
                return ports[randrange(n)]

        return router
