"""The load-balancing strategy layer.

Routing in this simulator has two halves: *where the paths are* (the
equal-cost next-hop tables of :mod:`repro.routing.tables`) and *which path a
packet takes* (the per-switch ``router`` callable).  A
:class:`LoadBalancer` owns the second half.  One instance is installed per
switch by :func:`install_lb`; the instance binds its per-switch state
(hash caches, flowlet tables, ConWeave epochs) at install time and hands
the switch a closure with the same ``router(sw, pkt) -> out_port`` contract
the hot path has always used, so the per-packet cost of the abstraction is
zero — strategy dispatch happens once at install, not per packet.

Ownership rules:

* All mutable strategy state is owned by the per-switch instance, created
  inside :func:`install_lb`.  A fresh topology therefore never inherits
  cached hashes or flowlet history from a previous run.
* Every cache is bounded (``max_cache_entries``).  On overflow the cache is
  swept/cleared — safe because every cached value is recomputable from the
  packet alone (ECMP hashes) or is advisory (flowlet/epoch state, where a
  reset just starts a new flowlet/epoch).

Strategies that can reorder packets (spray, flowlet, conweave-lite) declare
``reorders = True``; :func:`install_lb` then makes the topology's receivers
reorder-tolerant: when ``TransportConfig.reorder_window_bytes`` is still
zero it is turned on at :data:`DEFAULT_REORDER_WINDOW` (an explicit caller
value is respected), and duplicate-ACK fast rewind is armed on senders
(``dupack_rewind``) so the receiver's loss signals actually trigger
go-back-N without waiting for a timeout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.routing.tables import RoutingTables, build_graph_tables

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch
    from repro.topo.base import Topology

Router = Callable[["Switch", "Packet"], int]

#: Reorder window handed to receivers when a reordering strategy is
#: installed and the transport config still has the window disabled.
#: Sized to cover several BDPs of the paper's 100 Gb/s fabric so a
#: lossless run can never wedge on an un-fillable hole.
DEFAULT_REORDER_WINDOW = 512 * 1024


class LbConfig:
    """One strategy choice plus its knobs, threadable through topology
    builders and experiment configs.  ``params`` are forwarded to the
    strategy constructor."""

    __slots__ = ("strategy", "params")

    def __init__(self, strategy: str = "ecmp", **params) -> None:
        if strategy not in REGISTRY:
            raise ValueError(
                f"unknown LB strategy {strategy!r}; have {sorted(REGISTRY)}"
            )
        self.strategy = strategy
        self.params = params

    def build(self) -> "LoadBalancer":
        return REGISTRY[self.strategy](**self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"LbConfig({self.strategy!r}{', ' + kv if kv else ''})"


class LoadBalancer:
    """Per-switch path-selection strategy.

    Subclasses override :meth:`make_router` to return the hot-path closure
    for one switch; the table slice handed in maps ``dst host id ->
    (port,)``-style entries pre-split by :func:`split_tables`.
    """

    #: registry key; subclasses set this.
    name: str = "base"
    #: True when the strategy can deliver a flow's packets out of order.
    reorders: bool = False
    #: True when the router is a *pure static per-flow function* — the out
    #: port for a given (src, dst, flow_id) never depends on arrival time,
    #: queue state, or per-packet draws.  Only such strategies let the
    #: frame-train fast path (DESIGN.md §2.2) cache one routing decision
    #: for a whole back-to-back burst; per-packet strategies (spray,
    #: flowlet, conweave) keep this False, which makes every switch they
    #: are installed on refuse train fusion and stay per-frame.
    train_transparent: bool = False

    def __init__(self, max_cache_entries: int = 1 << 16) -> None:
        if max_cache_entries < 1:
            raise ValueError("max_cache_entries must be positive")
        self.max_cache_entries = max_cache_entries
        self.switch: Optional["Switch"] = None
        self.seeds = None
        # Failover state (DESIGN.md §10): the live split dict the router
        # closure captured (entries are rewritten in place on failover),
        # the pristine all-links-up copy it is recomputed from, and the
        # switch ports currently known dead.
        self._split: Optional[Dict[int, object]] = None
        self._pristine: Optional[Dict[int, object]] = None
        self._dead_ports: set = set()

    def bind(self, sw: "Switch", tables: Dict[int, List[int]], seeds=None) -> Router:
        """Attach to one switch: record the binding, build the closure.
        ``seeds`` is the topology's :class:`SeedSequenceFactory` for
        strategies that draw named RNG streams."""
        self.switch = sw
        self.seeds = seeds
        split = split_tables(tables)
        self._split = split
        self._pristine = dict(split)
        self._dead_ports = set()
        return self.make_router(sw, split)

    def make_router(self, sw: "Switch", split: Dict[int, object]) -> Router:
        raise NotImplementedError

    # -- failover (repro.faults link transitions) ------------------------
    def on_link_down(self, port_idx: int) -> None:
        """A link on ``port_idx`` died: reroute every destination around
        it.  Destinations whose *only* path used the dead port keep their
        pristine entry (a deliberate blackhole — transport-level recovery,
        not routing, resolves a partition)."""
        if port_idx in self._dead_ports:
            return
        self._dead_ports.add(port_idx)
        self._remask()
        self.invalidate()

    def on_link_up(self, port_idx: int) -> None:
        """The link came back: fold the port into every ECMP group again."""
        if port_idx not in self._dead_ports:
            return
        self._dead_ports.discard(port_idx)
        self._remask()
        self.invalidate()

    def _remask(self) -> None:
        """Rewrite the live split dict in place from the pristine tables
        minus the dead ports.  In-place mutation is the point: every
        router closure captured ``self._split`` by reference, so the next
        packet routes around the failure with no re-install."""
        split, pristine, dead = self._split, self._pristine, self._dead_ports
        if split is None:
            return
        for dst, entry in pristine.items():
            if type(entry) is int:
                split[dst] = entry  # single path: dead or not, it is all we have
                continue
            ports, _n = entry
            live = [p for p in ports if p not in dead]
            if not live:
                split[dst] = entry  # all paths dead: keep pristine (blackhole)
            elif len(live) == 1:
                split[dst] = live[0]
            else:
                split[dst] = (tuple(live), len(live))

    def invalidate(self) -> None:
        """Drop advisory per-flow memos after a failover so stale path
        choices cannot outlive the topology change.  The base clears the
        shared flow-hash memo; strategies with their own tables extend
        this.  (Frame-train route memos on ports are cleared by the
        injector, mirroring install_lb.)"""
        cache = getattr(self, "hash_cache", None)
        if cache is not None:
            cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        at = self.switch.name if self.switch is not None else "unbound"
        return f"<{type(self).__name__} @{at}>"


def split_tables(tables: Dict[int, List[int]]) -> Dict[int, object]:
    """Pre-split each destination entry into single-port ``int`` or
    ``(ports_tuple, n)`` so the per-packet path does no ``len()`` call
    (the hot-path idiom the old closure router used)."""
    return {
        dst: (ports[0] if len(ports) == 1 else (tuple(ports), len(ports)))
        for dst, ports in tables.items()
    }


def sweep_bounded_table(table: Dict, cap: int, is_expired) -> None:
    """Shared eviction for per-flow strategy tables (flowlet, conweave).

    Deletes entries for which ``is_expired(value)`` holds; if everything is
    expired — or the table still sits at ``cap`` after the sweep — it is
    cleared outright.  Called only when an insertion finds the table at
    ``cap``, so the O(table) scan amortizes to O(1) per insertion (a clear
    buys ``cap`` insertions before the next sweep).  Always safe: evicted
    state is advisory (an expired flowlet re-hashes on its next packet; an
    evicted conweave flow restarts at epoch 0, which receivers treat as
    ordinary reordering)."""
    expired = [k for k, v in table.items() if is_expired(v)]
    if len(expired) < len(table):
        for k in expired:
            del table[k]
    else:
        table.clear()
    if len(table) >= cap:
        table.clear()


def make_flow_hash_port(hash_cache: Dict[tuple, int], salt: int, cap: int):
    """The canonical symmetric flow hash with a bounded memo, shared by the
    reordering strategies' non-DATA (ACK/CNP) path so the reverse path
    stays stable.  One definition; :class:`~repro.lb.ecmp.EcmpLB` keeps an
    *inlined* copy of the same logic because there it is the per-DATA-packet
    hot path — keep the two in sync."""
    from repro.sim.rng import stable_hash64

    def flow_hash_port(src: int, dst: int, fid: int, ports, n: int) -> int:
        a, b = (src, dst) if src <= dst else (dst, src)
        key = (a, b, fid)
        h = hash_cache.get(key)
        if h is None:
            if len(hash_cache) >= cap:
                hash_cache.clear()
            h = hash_cache[key] = stable_hash64(a, b, fid, salt)
        return ports[h % n]

    return flow_hash_port


#: strategy name -> class; populated by :func:`register` at import time.
REGISTRY: Dict[str, Type[LoadBalancer]] = {}


def register(cls: Type[LoadBalancer]) -> Type[LoadBalancer]:
    REGISTRY[cls.name] = cls
    return cls


def install_lb(
    topo: "Topology", config: Optional[LbConfig] = None, **params
) -> RoutingTables:
    """Compute next-hop tables and install one strategy instance per switch.

    ``config`` may be an :class:`LbConfig`, a strategy name string, or None
    (plain symmetric ECMP).  Returns the computed :class:`RoutingTables`.
    Reordering strategies require reorder-tolerant receivers; when the
    topology's transport config has the window disabled this enables it at
    :data:`DEFAULT_REORDER_WINDOW` (receivers read the config at flow
    registration, which happens after topology construction).
    """
    if config is None:
        config = LbConfig("ecmp", **params)
    elif isinstance(config, str):
        config = LbConfig(config, **params)
    elif params:
        raise ValueError("pass knobs via LbConfig or kwargs, not both")
    rt = build_graph_tables(topo)
    tables = rt.tables
    lbs: List[LoadBalancer] = []
    for sw in topo.switches:
        lb = config.build()
        sw.router = lb.bind(sw, tables[sw.name], seeds=topo.seeds)
        sw.lb = lb
        # Train pass-through predicate inputs (net/port.py fused path):
        # the exact closure this install produced, and the live gate — a
        # static per-flow strategy on a zero-latency switch.  PacketTap
        # additionally clears/restores ``_train_ok`` while installed.  A
        # router swapped in by hand after install no longer matches
        # ``_lb_router`` and the switch silently refuses fusion.  Any
        # previously memoized routing decisions on adjacent ports belong
        # to the old router: drop them.
        sw._lb_router = sw.router
        # Single-definition gate recompute (Switch._recompute_train_ok):
        # in particular a wrapped ``receive`` (PacketTap, ad-hoc spy —
        # always an instance-dict assignment) keeps the gate closed even
        # across a mid-run strategy reinstall, else the fused path would
        # bypass the wrapper.
        sw._recompute_train_ok()
        for port in sw.ports:
            port._rt_cache.clear()
            peer = port.peer
            if peer is not None:
                peer._rt_cache.clear()
        lbs.append(lb)
    if any(lb.reorders for lb in lbs):
        tc = topo.transport_config
        if tc.reorder_window_bytes == 0:
            tc.reorder_window_bytes = DEFAULT_REORDER_WINDOW
        if tc.dupack_rewind == 0:
            # Dup ACKs are rare and meaningful under a reorder-tolerant
            # receiver: one is enough to trigger fast go-back-N.
            tc.dupack_rewind = 1
    topo.lb_config = config
    topo.routing_tables = rt
    # Invalidate any path caches held outside the switches (e.g. the
    # flow-level simulator's (src, dst, flow_id) path memo).
    topo.routing_epoch = getattr(topo, "routing_epoch", 0) + 1
    return rt
