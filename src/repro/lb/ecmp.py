"""Per-flow ECMP behind the :class:`~repro.lb.base.LoadBalancer` interface.

This is the paper's baseline (Fig. 5): the hash input is the canonical
five-tuple ``(min(src,dst), max(src,dst), flow_id)`` so a data packet and
its ACK produce the same value, and with consistently ordered next-hop
lists both directions pick the same physical path.  ``symmetric=False``
hashes the directed tuple instead, reproducing the asymmetry problem of
Observation 2 (used by the ablation bench).

The flow-hash memo is *bounded*: keys accumulate per flow, so an open-loop
run generating millions of flows used to grow the old closure-scoped cache
without limit.  The cache is owned by the per-switch instance (a fresh
topology never inherits stale entries) and is cleared when it reaches
``max_cache_entries`` — safe, because the hash is a pure function of the
packet and is simply recomputed on the next miss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.lb.base import LoadBalancer, Router, register
from repro.sim.rng import stable_hash64

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch


@register
class EcmpLB(LoadBalancer):
    """Hash-per-flow ECMP (the ``install_ecmp`` baseline)."""

    name = "ecmp"
    reorders = False
    # The hash is a pure function of (src, dst, flow_id): one routing
    # decision is valid for a whole same-flow frame train.  The bounded
    # memo does not break this — a cleared entry recomputes identically.
    train_transparent = True

    def __init__(
        self,
        symmetric: bool = True,
        salt: int = 0,
        max_cache_entries: int = 1 << 16,
    ) -> None:
        super().__init__(max_cache_entries=max_cache_entries)
        self.symmetric = symmetric
        self.salt = salt
        self.hash_cache: Dict[tuple, int] = {}

    def make_router(self, sw: "Switch", split: Dict[int, object]) -> Router:
        hash_cache = self.hash_cache
        salt = self.salt
        cap = self.max_cache_entries
        if self.symmetric:

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                a, b = pkt.src, pkt.dst
                if a > b:
                    a, b = b, a
                key = (a, b, pkt.flow_id)
                h = hash_cache.get(key)
                if h is None:
                    if len(hash_cache) >= cap:
                        hash_cache.clear()
                    h = hash_cache[key] = stable_hash64(a, b, pkt.flow_id, salt)
                return ports[h % n]

        else:

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                key = (pkt.src, pkt.dst, pkt.flow_id)
                h = hash_cache.get(key)
                if h is None:
                    if len(hash_cache) >= cap:
                        hash_cache.clear()
                    h = hash_cache[key] = stable_hash64(
                        pkt.src, pkt.dst, pkt.flow_id, salt
                    )
                return ports[h % n]

        return router
