"""ConWeave-lite: congestion-driven per-flow rerouting with epoch/tail
markers (after Song et al., "Network Load Balancing with In-network
Reordering Support for RDMA" — the ns-3 original ships in the related-repo
set as ``conweave-ns3``).

What is kept from ConWeave:

* **Source-ToR path control.**  The first switch a DATA packet hits
  (``pkt.hops == 1``) owns the flow's path: it stamps ``pkt.lb_tag`` with
  the flow's current *epoch*, and every multi-path switch downstream
  resolves its equal-cost choice as ``stable_hash64(src', dst', flow_id,
  tag) % n`` — so bumping the epoch at the ToR re-rolls the entire
  downstream path deterministically, the way ConWeave's path-id rewrite
  does.
* **Epoch/tail semantics.**  When the ToR decides to reroute, the packet
  in hand is sent as the *tail* of the old epoch (``lb_tail=True``) down
  the old path; subsequent packets carry the new epoch.  The receiver's
  reorder buffer uses the in-order arrival of a tail marker as the "old
  path has drained" signal (see ``transport/receiver.py``).
* **Reroute hysteresis.**  An epoch must live ``min_epoch_gap_ps`` before
  the next reroute, bounding flap rate like ConWeave's reply-gated epochs.

What is simplified (see DESIGN.md §"Load-balancing layer"):

* The RTT probe is *local*: instead of a probe/reply packet pair measuring
  the full path, the ToR samples its candidate egress queues every
  ``probe_interval_ps`` and converts backlog to delay
  (``bytes * 8 / rate``).  This senses uplink contention — the dominant
  term in the fat-tree scenarios — but not remote-hop congestion; full
  reply-path emulation is a ROADMAP open item.
* No receiver-side CLEAR/NOTIFY reply packets: the tail marker rides the
  last old-path DATA packet instead of a dedicated control frame.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.lb.base import (
    LoadBalancer,
    Router,
    make_flow_hash_port,
    register,
    sweep_bounded_table,
)
from repro.net.packet import DATA
from repro.sim.rng import stable_hash64
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch

#: How often a flow's path choice is re-evaluated at its source ToR.
DEFAULT_PROBE_INTERVAL_PS = us(5)
#: Queueing-delay advantage the best alternative must show to trigger a
#: reroute (filters noise; roughly 2 MTUs of backlog at 100 Gb/s).
DEFAULT_THRESHOLD_PS = us(0.25)
#: Minimum epoch lifetime (reroute hysteresis).
DEFAULT_MIN_EPOCH_GAP_PS = us(25)

# Per-flow state list indices: [epoch, last_probe_ps, epoch_start_ps,
# last_seen_ps].
_EPOCH, _PROBED, _STARTED, _SEEN = range(4)


@register
class ConWeaveLiteLB(LoadBalancer):
    """RTT-probe-driven rerouting with epoch/tail markers."""

    name = "conweave"
    reorders = True

    def __init__(
        self,
        probe_interval_ps: int = DEFAULT_PROBE_INTERVAL_PS,
        threshold_ps: int = DEFAULT_THRESHOLD_PS,
        min_epoch_gap_ps: int = DEFAULT_MIN_EPOCH_GAP_PS,
        salt: int = 0,
        max_cache_entries: int = 1 << 16,
    ) -> None:
        super().__init__(max_cache_entries=max_cache_entries)
        if probe_interval_ps <= 0 or min_epoch_gap_ps <= 0:
            raise ValueError("probe interval and epoch gap must be positive")
        self.probe_interval_ps = probe_interval_ps
        self.threshold_ps = threshold_ps
        self.min_epoch_gap_ps = min_epoch_gap_ps
        self.salt = salt
        #: (src, dst, flow_id) -> [epoch, last_probe, epoch_start, last_seen]
        self.flows: Dict[tuple, list] = {}
        self.hash_cache: Dict[tuple, int] = {}
        self.reroutes = 0
        self.probes = 0
        #: Observability callback slot (repro.obs.trace sets it): invoked
        #: as ``on_reroute(now, src, dst, flow_id, old_port, new_port)``
        #: on the reroute branch only — no per-packet cost when unset, and
        #: no wrapper on ``router`` so the train gate is untouched.
        self.on_reroute = None

    def _sweep(self, now: int) -> None:
        """Evict flows idle for > 8 epoch gaps (their next packet simply
        restarts at epoch 0 — the receiver treats epochs as advisory)."""
        idle = 8 * self.min_epoch_gap_ps
        sweep_bounded_table(
            self.flows, self.max_cache_entries, lambda v: now - v[_SEEN] > idle
        )

    def invalidate(self) -> None:
        """Failover: forget per-flow epoch/port state; each flow restarts
        at epoch 0 on a port drawn from the post-failover group (receivers
        treat epochs as advisory, so this is ordinary reordering)."""
        self.flows.clear()
        super().invalidate()

    def make_router(self, sw: "Switch", split: Dict[int, object]) -> Router:
        salt = self.salt
        cap = self.max_cache_entries
        table = self.flows
        flow_hash_port = make_flow_hash_port(self.hash_cache, salt, cap)
        sim = sw.sim
        ports_list = sw.ports
        probe_every = self.probe_interval_ps
        threshold = self.threshold_ps
        min_gap = self.min_epoch_gap_ps
        lb = self

        def tag_port(src: int, dst: int, fid: int, tag: int, ports, n: int) -> int:
            return ports[stable_hash64(src, dst, fid, tag, salt) % n]

        def qdelay_ps(port_idx: int) -> int:
            p = ports_list[port_idx]
            return round(p.qbytes_total * 8000 / p.rate_gbps)

        def router(sw: "Switch", pkt: "Packet") -> int:
            entry = split[pkt.dst]
            if type(entry) is int:
                single = True
                ports, n = (entry,), 1
            else:
                single = False
                ports, n = entry
            src = pkt.src
            dst = pkt.dst
            fid = pkt.flow_id
            if pkt.kind != DATA:
                if single:
                    return entry
                # Canonical symmetric flow hash (stable reverse path).
                return flow_hash_port(src, dst, fid, ports, n)
            if pkt.hops != 1:
                # Downstream switch: obey the source ToR's epoch tag.
                if single:
                    return entry
                tag = pkt.lb_tag
                if tag < 0:  # untagged (no ToR in front, e.g. bare fixtures)
                    tag = 0
                return tag_port(src, dst, fid, tag, ports, n)
            # Source ToR: own the flow's epoch.
            now = sim.now
            key = (src, dst, fid)
            state = table.get(key)
            if state is None:
                if len(table) >= cap:
                    lb._sweep(now)
                state = table[key] = [0, now, now, now]
            else:
                state[_SEEN] = now
            tag = state[_EPOCH]
            if single:
                pkt.lb_tag = tag
                return entry
            cur_port = tag_port(src, dst, fid, tag, ports, n)
            if now - state[_PROBED] >= probe_every:
                state[_PROBED] = now
                lb.probes += 1
                best_port, best_d = cur_port, qdelay_ps(cur_port)
                for p in ports:
                    if p == cur_port:
                        continue
                    d = qdelay_ps(p)
                    if d < best_d:
                        best_port, best_d = p, d
                if (
                    best_port != cur_port
                    and qdelay_ps(cur_port) - best_d > threshold
                    and now - state[_STARTED] >= min_gap
                ):
                    # Find the next epoch whose hash lands on the best port
                    # (bounded search).  If no nearby tag reaches it, skip
                    # this reroute rather than burn an epoch (and its
                    # hysteresis window) on a tag that may re-hash onto the
                    # same congested port.
                    new_tag = -1
                    for t in range(tag + 1, tag + 1 + 4 * n):
                        if tag_port(src, dst, fid, t, ports, n) == best_port:
                            new_tag = t
                            break
                    if new_tag >= 0:
                        state[_EPOCH] = new_tag
                        state[_STARTED] = now
                        lb.reroutes += 1
                        cb = lb.on_reroute
                        if cb is not None:
                            cb(now, src, dst, fid, cur_port, best_port)
                        # The packet in hand is the old epoch's tail: it
                        # drains the old path and tells the receiver the
                        # reroute is complete once it arrives in order.
                        pkt.lb_tag = tag
                        pkt.lb_tail = True
                        return cur_port
            pkt.lb_tag = tag
            return cur_port

        return router
