"""Flowlet switching (CONGA-style, with a LetFlow-style fallback mode).

A *flowlet* is a burst of a flow's packets separated from the next burst by
an idle gap longer than the network's path-delay skew.  Re-routing only at
flowlet boundaries gets most of per-packet spray's balancing while keeping
packets inside a burst in order: by the time the next flowlet starts, the
previous one has drained from whichever path it took.

Per-switch state (the flowlet table): ``(src, dst, flow_id) ->
[last_seen_ps, flowlet_seq, port]``.  A DATA packet whose gap since
``last_seen`` exceeds ``gap_ps`` opens a new flowlet and re-selects the
egress port:

* ``mode="conga"`` (default) — congestion-aware selection: the candidate
  with the smallest local egress backlog wins, ties broken by
  ``stable_hash64(src, dst, flow_id, flowlet_seq)`` over the tied set (so
  an idle fabric degenerates to ECMP-quality spreading rather than
  herding onto port 0).  This is CONGA's leaf decision with local queue
  depth standing in for the fabric congestion tables.
* ``mode="hash"`` — LetFlow: blind re-hash of the flowlet tuple.  Kept for
  ablations; collision escape is then pure luck.

ACKs/CNPs ride the canonical symmetric flow hash (stable reverse path),
like :class:`~repro.lb.spray.SprayLB`.  Everything is deterministic in the
seed and arrival timing — the determinism suite pins flowlet boundaries.

The table is bounded: when it fills, entries idle for more than ``gap_ps``
are swept (semantics-free — an expired entry would re-select on its next
packet anyway); if the sweep frees nothing the table is cleared, which at
worst starts every active flow on a fresh flowlet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.lb.base import (
    LoadBalancer,
    Router,
    make_flow_hash_port,
    register,
    sweep_bounded_table,
)
from repro.net.packet import DATA
from repro.sim.rng import stable_hash64
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch

#: Default idle gap: has to clear the worst-case path-delay *skew* (the
#: queueing difference between equal-cost paths), not the full RTT.  At
#: paper defaults a couple of µs of skew is typical under load.
DEFAULT_GAP_PS = us(2)


@register
class FlowletLB(LoadBalancer):
    """Idle-gap flowlet switching over equal-cost next hops."""

    name = "flowlet"
    reorders = True

    def __init__(
        self,
        gap_ps: int = DEFAULT_GAP_PS,
        mode: str = "conga",
        salt: int = 0,
        max_cache_entries: int = 1 << 16,
    ) -> None:
        super().__init__(max_cache_entries=max_cache_entries)
        if gap_ps <= 0:
            raise ValueError("flowlet gap must be positive")
        if mode not in ("conga", "hash"):
            raise ValueError(f"flowlet mode must be conga|hash, got {mode!r}")
        self.gap_ps = gap_ps
        self.mode = mode
        self.salt = salt
        #: (src, dst, flow_id) -> [last_seen_ps, flowlet_seq, port]
        self.flowlets: Dict[tuple, list] = {}
        self.hash_cache: Dict[tuple, int] = {}
        self.flowlet_starts = 0  # boundary counter (tests/metrics)

    def _sweep(self, now: int) -> None:
        gap = self.gap_ps
        sweep_bounded_table(
            self.flowlets, self.max_cache_entries, lambda v: now - v[0] > gap
        )

    def invalidate(self) -> None:
        """Failover: drop every live flowlet so the next packet of each
        flow picks a port from the post-failover ECMP group (an evicted
        flowlet just restarts — advisory state)."""
        self.flowlets.clear()
        super().invalidate()

    def make_router(self, sw: "Switch", split: Dict[int, object]) -> Router:
        gap = self.gap_ps
        salt = self.salt
        cap = self.max_cache_entries
        table = self.flowlets
        flow_hash_port = make_flow_hash_port(self.hash_cache, salt, cap)
        sim = sw.sim
        sw_ports = sw.ports
        conga = self.mode == "conga"
        lb = self

        def pick_port(src: int, dst: int, fid: int, seq: int, ports, n: int) -> int:
            h = stable_hash64(src, dst, fid, seq, salt)
            if not conga:
                return ports[h % n]
            # Congestion-aware: smallest local egress backlog wins; ties
            # (the idle-fabric common case) break by hash over the tied set.
            best = [ports[0]]
            best_q = sw_ports[ports[0]].qbytes_total
            for p in ports[1:]:
                q = sw_ports[p].qbytes_total
                if q < best_q:
                    best = [p]
                    best_q = q
                elif q == best_q:
                    best.append(p)
            return best[0] if len(best) == 1 else best[h % len(best)]

        def router(sw: "Switch", pkt: "Packet") -> int:
            entry = split[pkt.dst]
            if type(entry) is int:
                return entry
            ports, n = entry
            src = pkt.src
            dst = pkt.dst
            fid = pkt.flow_id
            if pkt.kind != DATA:
                # Canonical symmetric flow hash (stable reverse path).
                return flow_hash_port(src, dst, fid, ports, n)
            now = sim.now
            key = (src, dst, fid)
            state = table.get(key)
            if state is None:
                if len(table) >= cap:
                    lb._sweep(now)
                port = pick_port(src, dst, fid, 0, ports, n)
                table[key] = [now, 0, port]
                lb.flowlet_starts += 1
                return port
            if now - state[0] > gap:
                state[0] = now
                seq = state[1] = state[1] + 1
                port = state[2] = pick_port(src, dst, fid, seq, ports, n)
                lb.flowlet_starts += 1
                return port
            state[0] = now
            return state[2]

        return router
