"""Pluggable load-balancing strategies (the LB axis of the CC × LB matrix).

* :class:`EcmpLB` — per-flow symmetric/asymmetric ECMP (the paper baseline,
  bounded hash cache).
* :class:`SprayLB` — per-packet spray over equal-cost next hops.
* :class:`FlowletLB` — idle-gap flowlet switching (LetFlow-style).
* :class:`ConWeaveLiteLB` — congestion-driven rerouting with epoch/tail
  markers (ConWeave, simplified — see the module docstring).

:func:`install_lb` installs one strategy instance per switch;
:class:`LbConfig` is the threadable configuration object.  Strategies that
reorder require the receiver-side reorder window (enabled automatically).
"""

from repro.lb.base import (
    DEFAULT_REORDER_WINDOW,
    LbConfig,
    LoadBalancer,
    REGISTRY,
    install_lb,
)
from repro.lb.conweave import ConWeaveLiteLB
from repro.lb.ecmp import EcmpLB
from repro.lb.flowlet import FlowletLB
from repro.lb.spray import SprayLB

STRATEGIES = tuple(sorted(REGISTRY))

__all__ = [
    "DEFAULT_REORDER_WINDOW",
    "LbConfig",
    "LoadBalancer",
    "REGISTRY",
    "STRATEGIES",
    "install_lb",
    "EcmpLB",
    "SprayLB",
    "FlowletLB",
    "ConWeaveLiteLB",
]
