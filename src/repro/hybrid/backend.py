"""The hybrid packet/flow co-simulation driver (DESIGN.md §6).

One :func:`run_fct_hybrid` call simulates a (CC, workload) cell in two
coupled tiers:

1. **Classify** — the whole flow set runs under the incremental max-min
   fluid model, recording per-link intervals during which utilization sits
   at/above ``threshold`` with at least ``min_link_flows`` concurrent
   flows.  Flows whose fluid lifetime overlaps a congested interval on any
   path link are *demoted* to the packet tier; everything else stays fluid.
2. **Background pass** — the fluid model re-runs accumulating, per
   (link, epoch), the bytes the *fluid* flows offer on links the demoted
   flows cross (the tier boundary's forward direction).
3. **Packet phase** — only the demoted flows are launched on the real
   discrete-event fabric.  Fluid background load is presented to the
   shared ports as serializer drains (:meth:`repro.net.port.Port.bg_drain`)
   so packet-tier frames queue behind fluid bytes without any frame being
   created; a per-epoch sampler reads real ``tx_bytes`` deltas off those
   ports.
4. **Refine** — if the packet phase saw effects the fluid model cannot
   represent (PFC pauses, ECN marks, drops), the fluid flows crossing the
   affected links are demoted too and the packet phase re-runs, at most
   ``refine_rounds`` times.
5. **Final fluid pass** — the fluid flows re-run with per-epoch *residual*
   capacities (link capacity minus measured packet bytes, floored at
   ``residual_floor``) on the shared links: the tier boundary's reverse
   direction.  Packet records and fluid records merge into one result.

The two degenerate thresholds short-circuit: ``threshold <= 0`` demotes
everything (byte-identical to :func:`run_fct_experiment` by construction);
``threshold=None`` / ``inf`` demotes nothing (identical to the pure
flow-level simulator).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.common import launch_flows
from repro.experiments.fct_experiment import (
    FctFabric,
    build_fct_fabric,
    drive_fct,
    run_fct_experiment,
)
from repro.metrics.fct import SlowdownTable
from repro.transport.flow import Flow, FlowRecord
from repro.units import DEFAULT_MTU, us

_UNSET = object()


class HybridConfig:
    """Knobs of the tier boundary.

    ``threshold`` / ``min_link_flows`` form the demotion predicate: a link
    is congested while its fluid utilization is at/above ``threshold``
    *and* it carries at least ``min_link_flows`` flows.  The flow floor
    is 3, not 2, deliberately: under max-min *any* two flows sharing a
    common bottleneck drive it to utilization 1.0, and plain two-way fair
    sharing of long flows is exactly what the fluid tier models well —
    packet effects need deeper multiplexing.  ``mouse_bytes`` covers the
    fluid model's second blind spot: a sub-BDP flow is a *transient* — a
    window-based CC delivers it in a couple of RTTs, slipping between an
    elephant's frames at near-ideal FCT, while max-min models it as
    time-sharing the link for its whole (tiny) lifetime.  Any flow at or
    under this size that saw contention in the classification pass (or
    crosses a demoted flow's path) is demoted too; sub-BDP flows carry
    few bytes, so this buys fidelity without giving up the closed-form
    advance of the elephants, where the wall-clock actually lives.
    ``None`` sizes it automatically to the fabric's bandwidth-delay
    product; 0 disables the rule.  ``congested_frac`` keeps long flows
    fluid through *brief* hot moments: a flow demotes only when at least
    this fraction of its fluid lifetime overlaps congested intervals on
    some path link (an elephant living 500 µs is not re-simulated
    packet-by-packet because one core link spent 10 µs at three-way
    sharing; a transient, by contrast, overlaps wholly or not at all).
    ``epoch_us`` is the tier-exchange granularity, ``refine_rounds``
    bounds the PFC/ECN-triggered re-runs, ``residual_floor`` keeps
    fed-back capacities positive, and ``rate_eps`` / ``ripple_rounds``
    tune the fluid engine itself.
    """

    __slots__ = (
        "threshold",
        "min_link_flows",
        "epoch_us",
        "refine_rounds",
        "residual_floor",
        "rate_eps",
        "ripple_rounds",
        "bg_quantum_bytes",
        "mouse_bytes",
        "congested_frac",
    )

    def __init__(
        self,
        threshold: float = 0.85,
        min_link_flows: int = 3,
        epoch_us: float = 50.0,
        refine_rounds: int = 1,
        residual_floor: float = 0.05,
        rate_eps: float = 0.02,
        ripple_rounds: Optional[int] = 2,
        bg_quantum_bytes: int = 4 * DEFAULT_MTU,
        mouse_bytes: Optional[int] = None,
        congested_frac: float = 0.15,
    ) -> None:
        if not (0.0 <= residual_floor < 1.0):
            raise ValueError("residual_floor must be in [0, 1)")
        if min_link_flows < 1:
            raise ValueError("min_link_flows must be positive")
        if epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        if bg_quantum_bytes < 1:
            raise ValueError("bg_quantum_bytes must be positive")
        if mouse_bytes is not None and mouse_bytes < 0:
            raise ValueError("mouse_bytes must be non-negative")
        if ripple_rounds is not None and ripple_rounds < 1:
            raise ValueError("ripple_rounds must be None or >= 1")
        if not (0.0 <= congested_frac <= 1.0):
            raise ValueError("congested_frac must be in [0, 1]")
        self.threshold = threshold
        self.min_link_flows = min_link_flows
        self.epoch_us = epoch_us
        self.refine_rounds = refine_rounds
        self.residual_floor = residual_floor
        self.rate_eps = rate_eps
        self.ripple_rounds = ripple_rounds
        self.bg_quantum_bytes = bg_quantum_bytes
        self.mouse_bytes = mouse_bytes
        self.congested_frac = congested_frac


class HybridFctResult:
    """Merged outcome of one hybrid cell; mirrors the surface of
    :class:`~repro.experiments.fct_experiment.FctResult` (``.table``,
    ``.completed()``, ``.fct_fingerprint()``) so figure renderers,
    summaries and the validation gate are backend-agnostic."""

    def __init__(
        self,
        cc: str,
        workload: str,
        records: List[FlowRecord],
        bins: Sequence[int],
        n_flows: int,
        sim,
        topo,
        stats: Dict[str, int],
    ) -> None:
        self.cc = cc
        self.workload = workload
        self.records = records
        self.bins = list(bins)
        self.n_flows = n_flows
        # The last packet-phase simulator/fabric (None when everything
        # stayed fluid) — perf harnesses read event/frame counters off it.
        self.sim = sim
        self.topo = topo
        #: phase diagnostics: demoted/fluid counts, refine rounds used, …
        self.stats = stats

    @property
    def table(self) -> SlowdownTable:
        return SlowdownTable.from_records(self.records, self.bins)

    def completed(self) -> int:
        return len(self.records)

    def slowdowns(self) -> List[float]:
        return [r.slowdown for r in self.records]

    def fct_fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted((r.flow.flow_id, r.fct_ps) for r in self.records))


def _overlap_time(
    intervals: List[Tuple[float, float]], t0: float, t1: float
) -> float:
    """Total time [t0, t1] spends inside the sorted, disjoint intervals."""
    i = bisect_right(intervals, (t0, float("inf")))
    if i and intervals[i - 1][1] > t0:
        i -= 1
    total = 0.0
    while i < len(intervals):
        a, b = intervals[i]
        if a > t1:
            break
        lo = a if a > t0 else t0
        hi = b if b < t1 else t1
        if hi > lo:
            total += hi - lo
        i += 1
    return total


def _directed_port(topo, u: str, v: str):
    """The egress Port of node ``u`` on the (u, v) wire, plus its rate."""
    e = topo.graph.edges[u, v]
    return topo.node(u).ports[e["ports"][u]], e["rate_gbps"]


def _port_link_index(topo) -> Dict[int, Tuple[str, str]]:
    """id(Port) -> directed LinkKey, for mapping PFC/ECN stats back."""
    idx: Dict[int, Tuple[str, str]] = {}
    for node in list(topo.hosts) + list(topo.switches):
        for p in node.ports:
            if p.peer is not None:
                idx[id(p)] = (node.name, p.peer.node.name)
    return idx


def _schedule_bg_drains(
    fab: FctFabric, bg_bytes, epoch_ps: int, quantum: int
) -> int:
    """Present fluid background load to the packet fabric: per (link,
    epoch), spread the accumulated bytes across the epoch as serializer
    drains of at most ``quantum`` bytes.  Returns the drain-event count."""
    sim = fab.sim
    n = 0
    for (u, v), per_epoch in bg_bytes.items():
        port, _rate = _directed_port(fab.topo, u, v)
        for e, nbytes in sorted(per_epoch.items()):
            if nbytes < 1.0:
                continue
            pieces = max(1, math.ceil(nbytes / quantum))
            piece = nbytes / pieces
            gap = epoch_ps / pieces
            t0 = e * epoch_ps
            for j in range(pieces):
                sim.schedule_at(round(t0 + j * gap), port.bg_drain, round(piece))
                n += 1
    return n


class _ResidualSampler:
    """Per-epoch ``tx_bytes`` deltas on the shared links: what the packet
    tier actually used, fed back to the fluid tier as reduced capacity.

    This is the hybrid backend's epoch loop, so it doubles as the epoch-
    exchange observation point: with ``obs`` attached, each tick emits a
    ``hybrid``-category trace event and heartbeats the progress reporter.
    Observation is read-only (the counters are read either way), so the
    schedule is identical with obs on or off.
    """

    def __init__(
        self,
        fab: FctFabric,
        links: Sequence[Tuple[str, str]],
        epoch_ps: int,
        obs=None,
    ) -> None:
        self.sim = fab.sim
        self.epoch_ps = epoch_ps
        self.obs = obs
        self.ports = {lk: _directed_port(fab.topo, *lk)[0] for lk in links}
        self.prev = {lk: 0 for lk in self.ports}
        #: LinkKey -> {epoch index: packet-tier bytes}
        self.used: Dict[Tuple[str, str], Dict[int, int]] = {lk: {} for lk in self.ports}
        self._epoch = 0
        self._stopped = False
        if self.ports:
            self.sim.schedule_at(epoch_ps, self._tick, None)

    def _tick(self, _arg) -> None:
        e = self._epoch
        epoch_bytes = 0
        for lk, port in self.ports.items():
            tx = port.tx_bytes
            d = tx - self.prev[lk]
            if d:
                self.used[lk][e] = d
                self.prev[lk] = tx
                epoch_bytes += d
        self._epoch = e + 1
        obs = self.obs
        if obs is not None:
            if obs.tracer is not None:
                obs.tracer.emit(
                    "hybrid",
                    "epoch",
                    self.sim.now,
                    args={"epoch": e, "links": len(self.ports),
                          "packet_bytes": epoch_bytes},
                )
            if obs.progress is not None:
                obs.progress.tick(self.sim)
        if not self._stopped:
            self.sim.schedule_at((self._epoch + 1) * self.epoch_ps, self._tick, None)

    def stop(self) -> None:
        """Flush the tail epoch and stop rescheduling."""
        self._stopped = True
        self._tick(None)


def _fluid_sim(topo):
    from repro.analysis.flowsim import from_topology

    return from_topology(topo)


def run_fct_hybrid(
    cc: str,
    workload: str = "websearch",
    max_horizon_ms: float = 50.0,
    config: Optional[HybridConfig] = None,
    threshold=_UNSET,
    classify_fn: Optional[Callable[[Flow], bool]] = None,
    obs=None,
    **fabric_kwargs,
) -> HybridFctResult:
    """One (CC, workload) cell under the hybrid backend; mirrors
    :func:`run_fct_experiment`'s signature and adds the tier knobs.

    ``threshold`` overrides ``config.threshold``; ``classify_fn(flow) ->
    bool`` (True = demote to packet) replaces the congestion-overlap
    predicate entirely — the partition-invariance test hook.  ``obs`` is
    an optional :class:`repro.obs.RunObservability` bundle: it rides the
    packet-phase fabric (re-attached on refine-round rebuilds), the
    epoch-exchange sampler heartbeats its progress reporter, every phase
    transition is announced, and the phase-stats dict lands in its
    registry before each return.
    """
    cfg = config or HybridConfig()
    thr = cfg.threshold if threshold is _UNSET else threshold

    def _observed(stats: Dict[str, int]) -> Dict[str, int]:
        if obs is not None:
            obs.observe_hybrid(stats)
        return stats

    # -- degenerate tiers ---------------------------------------------------
    if classify_fn is None and thr is not None and thr <= 0:
        # Everything demotes: the packet experiment verbatim, so the FCT
        # fingerprint is byte-identical by construction.
        res = run_fct_experiment(
            cc, workload=workload, max_horizon_ms=max_horizon_ms, obs=obs,
            **fabric_kwargs,
        )
        return HybridFctResult(
            cc, workload, list(res.collector.records), res.bins, res.n_flows,
            res.sim, res.topo,
            _observed({"demoted": res.n_flows, "fluid": 0, "refine_rounds": 0}),
        )

    fab = build_fct_fabric(cc, workload=workload, **fabric_kwargs)
    if obs is not None:
        # Bind the bundle even on paths that never drive the packet sim
        # (all-fluid) so the registry snapshot always carries the engine
        # and port keys; re-attached below whenever the fabric rebuilds.
        obs.attach(fab.sim, fab.topo, collector=fab.collector)
    fls, path_fn = _fluid_sim(fab.topo)
    flows = fab.flows
    n_flows = len(flows)
    epoch_ps = us(cfg.epoch_us)

    def _guard():
        return obs.guard(sim=fab.sim, topo=fab.topo) if obs is not None else nullcontext()

    all_fluid = classify_fn is None and (
        thr is None or (isinstance(thr, float) and math.isinf(thr))
    )
    if all_fluid:
        if obs is not None:
            obs.phase("fluid", flows=n_flows)
        with _guard():
            fres = fls.run(
                flows, path_fn, rate_eps=cfg.rate_eps, ripple_rounds=cfg.ripple_rounds
            )
        return HybridFctResult(
            cc, workload, list(fres.records), fab.bins, n_flows, None, fab.topo,
            _observed({"demoted": 0, "fluid": n_flows, "refine_rounds": 0,
                       "fluid_events": fres.n_events}),
        )

    # -- 1. classification pass --------------------------------------------
    stats: Dict[str, int] = {}
    if classify_fn is not None:
        demoted: Set[int] = {f.flow_id for f in flows if classify_fn(f)}
        # Paths are still needed for the background-pass link overlap.
        paths = {f.flow_id: path_fn(f) for f in flows}
    else:
        if obs is not None:
            obs.phase("classify", flows=n_flows, threshold=thr)
        with _guard():
            cres = fls.run(
                flows,
                path_fn,
                congestion=(thr, cfg.min_link_flows),
                rate_eps=cfg.rate_eps,
                ripple_rounds=cfg.ripple_rounds,
            )
        paths = cres.paths
        demoted = set()
        frac = cfg.congested_frac
        for f in flows:
            t0, t1 = cres.windows[f.flow_id]
            life = t1 - t0
            need = frac * life if life > 0 else 0.0
            for lk in paths[f.flow_id]:
                ivs = cres.congestion_intervals.get(lk)
                if not ivs:
                    continue
                ot = _overlap_time(ivs, t0, t1)
                if ot > 0.0 and ot >= need:
                    demoted.add(f.flow_id)
                    break
        mouse_bytes = cfg.mouse_bytes
        if mouse_bytes is None:
            # Auto: the fabric's worst-path BDP — the size below which a
            # window-based CC delivers a flow in a couple of RTTs no
            # matter what it shares with.
            topo = fab.topo
            nic = topo.hosts[0].nic
            rtt = topo.base_rtt_ps(0, len(topo.hosts) - 1)
            mouse_bytes = round(rtt * nic.rate_gbps / 8000.0)
        if mouse_bytes:
            # Impulse flows the fluid model can't represent: a few-frame
            # flow that saw contention in the classification pass (fct !=
            # ideal, i.e. its rate ever deviated from the solo bottleneck
            # rate), or that crosses a demoted flow's path — there the
            # final pass would throttle it with epoch-averaged residual
            # capacities, when in the packet world it slips between the
            # demoted flow's frames at near-ideal FCT.
            contended = {
                rec.flow.flow_id
                for rec in cres.records
                if rec.fct_ps != rec.ideal_fct_ps
            }
            demoted_links: Set[Tuple[str, str]] = set()
            for fid in demoted:
                demoted_links.update(paths[fid])
            for f in flows:
                fid = f.flow_id
                if fid in demoted or f.size_bytes > mouse_bytes:
                    continue
                if fid in contended or any(
                    lk in demoted_links for lk in paths[fid]
                ):
                    demoted.add(fid)
        stats["congested_links"] = len(cres.congestion_intervals)
        stats["classify_events"] = cres.n_events

    if obs is not None:
        obs.trace_each("hybrid", "demote", sorted(demoted), key="flow")

    by_id = {f.flow_id: f for f in flows}
    rounds_used = 0
    while True:
        fluid_ids = [f.flow_id for f in flows if f.flow_id not in demoted]
        if not fluid_ids:
            # Refinement (or the classifier) demoted everything.
            res = run_fct_experiment(
                cc, workload=workload, max_horizon_ms=max_horizon_ms, obs=obs,
                **fabric_kwargs,
            )
            stats.update(
                {"demoted": n_flows, "fluid": 0, "refine_rounds": rounds_used}
            )
            return HybridFctResult(
                cc, workload, list(res.collector.records), res.bins, n_flows,
                res.sim, res.topo, _observed(stats),
            )
        demoted_flows = [f for f in flows if f.flow_id in demoted]
        if not demoted_flows:
            if obs is not None:
                obs.phase("fluid", flows=n_flows)
            with _guard():
                fres = fls.run(
                    flows, path_fn, rate_eps=cfg.rate_eps,
                    ripple_rounds=cfg.ripple_rounds,
                )
            stats.update(
                {"demoted": 0, "fluid": n_flows, "refine_rounds": rounds_used,
                 "fluid_events": fres.n_events}
            )
            return HybridFctResult(
                cc, workload, list(fres.records), fab.bins, n_flows, None,
                fab.topo, _observed(stats),
            )

        # Links where the tiers meet: on a demoted path AND a fluid path.
        fluid_links: Set[Tuple[str, str]] = set()
        for fid in fluid_ids:
            fluid_links.update(paths[fid])
        shared_links: Set[Tuple[str, str]] = set()
        for fid in demoted:
            for lk in paths[fid]:
                if lk in fluid_links:
                    shared_links.add(lk)
        shared = sorted(shared_links)

        # -- 2. background pass ------------------------------------------
        if obs is not None:
            obs.phase(
                "background", round=rounds_used, shared_links=len(shared)
            )
        with _guard():
            bres = fls.run(
                flows,
                path_fn,
                bg=(epoch_ps, shared, fluid_ids),
                rate_eps=cfg.rate_eps,
                ripple_rounds=cfg.ripple_rounds,
            )

        # -- 3. packet phase ---------------------------------------------
        if rounds_used > 0:
            # The previous fabric has been driven; rebuild an identical one
            # (all RNG streams are name-derived, so same seed -> same
            # fabric, flows and routing).
            fab = build_fct_fabric(cc, workload=workload, **fabric_kwargs)
            demoted_flows = [f for f in fab.flows if f.flow_id in demoted]
            if obs is not None:
                obs.attach(fab.sim, fab.topo, collector=fab.collector)
        stats["bg_drain_events"] = _schedule_bg_drains(
            fab, bres.bg_bytes, epoch_ps, cfg.bg_quantum_bytes
        )
        sampler = _ResidualSampler(fab, shared, epoch_ps, obs=obs)
        if obs is not None:
            obs.phase(
                "packet", round=rounds_used, demoted=len(demoted_flows)
            )
        with _guard():
            launch_flows(fab.topo, demoted_flows, fab.env)
            drive_fct(
                fab.sim,
                fab.collector,
                len(demoted_flows),
                max_horizon_ms,
                progress=obs.progress if obs is not None else None,
            )
        sampler.stop()

        # -- 4. refine: packet-only effects the fluid tier can't see ------
        if rounds_used >= cfg.refine_rounds:
            break
        port_links = _port_link_index(fab.topo)
        hot_links: Set[Tuple[str, str]] = set()
        for node in list(fab.topo.hosts) + list(fab.topo.switches):
            for p in node.ports:
                s = p.stats
                if s.pause_sent or s.ecn_marked or s.drops:
                    lk = port_links.get(id(p))
                    if lk is not None:
                        hot_links.add(lk)
                        # A pause throttles the *upstream* sender too.
                        hot_links.add((lk[1], lk[0]))
        grew = False
        for fid in fluid_ids:
            if any(lk in hot_links for lk in paths[fid]):
                demoted.add(fid)
                grew = True
        if not grew:
            break
        rounds_used += 1
        if obs is not None:
            obs.phase(
                "refine", round=rounds_used, hot_links=len(hot_links),
                demoted=len(demoted),
            )

    # -- 5. final fluid pass with residual capacities ----------------------
    sched: List[Tuple[int, Tuple[str, str], float]] = []
    for lk, per_epoch in sampler.used.items():
        if not per_epoch:
            continue
        _port, rate_gbps = _directed_port(fab.topo, *lk)
        floor = cfg.residual_floor * rate_gbps
        last = max(per_epoch)
        for e in range(0, last + 1):
            used_bytes = per_epoch.get(e, 0)
            residual = rate_gbps - used_bytes * 8000.0 / epoch_ps
            if residual < floor:
                residual = floor
            sched.append((e * epoch_ps, lk, residual))
        sched.append(((last + 1) * epoch_ps, lk, rate_gbps))

    fluid_flows = [by_id[fid] for fid in fluid_ids]
    if obs is not None:
        obs.phase(
            "final-fluid", flows=len(fluid_flows), cap_entries=len(sched)
        )
    with _guard():
        fres = fls.run(
            fluid_flows,
            path_fn,
            cap_schedule=sched,
            rate_eps=cfg.rate_eps,
            ripple_rounds=cfg.ripple_rounds,
        )

    records = list(fab.collector.records) + list(fres.records)
    stats.update(
        {
            "demoted": len(demoted),
            "fluid": len(fluid_ids),
            "refine_rounds": rounds_used,
            "shared_links": len(shared),
            "packet_events": fab.sim.events_dispatched,
            "fluid_events": fres.n_events,
            "cap_schedule_entries": len(sched),
        }
    )
    return HybridFctResult(
        cc, workload, records, fab.bins, n_flows, fab.sim, fab.topo,
        _observed(stats),
    )


class HybridSimulator:
    """Object form of the hybrid backend for the ``Simulator(backend=...)``
    factory: holds a :class:`HybridConfig`, runs cells on demand."""

    def __init__(self, config: Optional[HybridConfig] = None, **knobs) -> None:
        self.config = config or (HybridConfig(**knobs) if knobs else HybridConfig())

    def run_fct(self, cc: str, **kwargs) -> HybridFctResult:
        kwargs.setdefault("config", self.config)
        return run_fct_hybrid(cc, **kwargs)
