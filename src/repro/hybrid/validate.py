"""Fidelity gate: hybrid backend vs packet-level ground truth.

Runs one Fig. 14/15 configuration under both backends and compares
per-size-bin slowdown statistics: the hybrid's mean must sit within
``mean_tol`` (relative) and its p99 within ``p99_tol`` of the packet
simulator's, on every bin holding at least ``min_samples`` flows in both
runs; the whole-distribution Kolmogorov–Smirnov distance is reported
alongside (and gated loosely — it catches shape drift between the bins).

CLI::

    python -m repro.hybrid.validate --scenario fig14 [--quick] [--cc fncc]

exits 0 when the gate passes, 1 when it fails — the CI ``hybrid-smoke``
job runs the ``--quick`` slice.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.fct_experiment import run_fct_experiment
from repro.hybrid.backend import HybridConfig, run_fct_hybrid
from repro.metrics.fct import ks_distance

#: Scenario -> experiment kwargs.  The full rows match the fig14/fig15
#: runner defaults; the quick slices shrink the flow count for CI.
SCENARIOS: Dict[str, dict] = {
    "fig14": dict(workload="websearch", k=4, load=0.5, n_flows=400, scale=0.1),
    "fig15": dict(workload="hadoop", k=4, load=0.5, n_flows=400, scale=1.0),
}
QUICK_N_FLOWS = 200
#: In the quick slice, bins rarely reach 50 samples, so the p99 check is
#: effectively off: quick is a smoke gate on the means + KS distance; the
#: full run is the fidelity instrument.
QUICK_P99_MIN_SAMPLES = 50
#: The quick slice also halves every bin's population, so the mean gate
#: needs more than the full run's 8-sample floor: an 11-sample hadoop bin
#: sits at ~10% mean error from sampling noise alone (the full 400-flow
#: run puts the same bin under 1%).  Quick gates means only on bins that
#: keep a meaningful population at half scale.
QUICK_MIN_SAMPLES = 12


class BinCheck:
    """One bin's verdict."""

    __slots__ = ("bin_upper", "n_packet", "n_hybrid", "mean_err", "p99_err", "ok")

    def __init__(self, bin_upper, n_packet, n_hybrid, mean_err, p99_err, ok) -> None:
        self.bin_upper = bin_upper
        self.n_packet = n_packet
        self.n_hybrid = n_hybrid
        self.mean_err = mean_err
        self.p99_err = p99_err
        self.ok = ok


class GateReport:
    """Everything the gate measured, plus the pass/fail verdict."""

    def __init__(
        self,
        scenario: str,
        cc: str,
        checks: List[BinCheck],
        ks: float,
        ks_tol: float,
        demoted: int,
        n_flows: int,
        completed_packet: int,
        completed_hybrid: int,
    ) -> None:
        self.scenario = scenario
        self.cc = cc
        self.checks = checks
        self.ks = ks
        self.ks_tol = ks_tol
        self.demoted = demoted
        self.n_flows = n_flows
        self.completed_packet = completed_packet
        self.completed_hybrid = completed_hybrid

    @property
    def passed(self) -> bool:
        return (
            all(c.ok for c in self.checks)
            and self.ks <= self.ks_tol
            and self.completed_hybrid == self.n_flows
        )

    def format(self) -> str:
        lines = [
            f"hybrid validation: {self.scenario} cc={self.cc} "
            f"({self.demoted}/{self.n_flows} demoted, "
            f"packet completed {self.completed_packet}, "
            f"hybrid completed {self.completed_hybrid})",
            f"{'bin':>10} {'n_pkt':>6} {'n_hyb':>6} {'mean_err':>9} {'p99_err':>9}  verdict",
        ]
        for c in self.checks:
            lines.append(
                f"{c.bin_upper:>10} {c.n_packet:>6} {c.n_hybrid:>6} "
                f"{c.mean_err:>8.1%} {c.p99_err:>8.1%}  {'ok' if c.ok else 'FAIL'}"
            )
        lines.append(
            f"KS distance {self.ks:.3f} (tol {self.ks_tol:.2f}) -> "
            f"{'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


def _bin_values(table, bins: Sequence[int]) -> Dict[int, List[float]]:
    return {b: table.by_bin.get(b, []) for b in bins}


def validate(
    scenario: str = "fig14",
    cc: str = "fncc",
    seed: int = 1,
    quick: bool = False,
    mean_tol: float = 0.10,
    p99_tol: float = 0.20,
    ks_tol: float = 0.25,
    min_samples: int = 8,
    p99_min_samples: int = 20,
    config: Optional[HybridConfig] = None,
    **overrides,
) -> GateReport:
    """Run both backends on one scenario and gate the deltas.

    ``mean_tol`` / ``p99_tol`` are the per-bin tolerances (10% on the
    mean, 20% on the p99); bins with fewer than ``min_samples`` flows in
    either run are reported but not gated, and the p99 check additionally
    requires ``p99_min_samples`` (below ~20 samples the 99th percentile
    *is* the sample maximum — comparing the maxima of two noisy queueing
    processes is noise, not signal; the KS distance still covers those
    bins' distributions).
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {sorted(SCENARIOS)}")
    kwargs = dict(SCENARIOS[scenario])
    if quick:
        kwargs["n_flows"] = QUICK_N_FLOWS
        min_samples = max(min_samples, QUICK_MIN_SAMPLES)
        p99_min_samples = max(p99_min_samples, QUICK_P99_MIN_SAMPLES)
    kwargs.update(overrides)
    kwargs["seed"] = seed

    pres = run_fct_experiment(cc, **kwargs)
    hres = run_fct_hybrid(cc, config=config, **kwargs)

    ptab, htab = pres.table, hres.table
    pvals = _bin_values(ptab, pres.bins)
    hvals = _bin_values(htab, pres.bins)
    checks: List[BinCheck] = []
    for b in pres.bins:
        np_, nh = len(pvals[b]), len(hvals[b])
        if np_ == 0 or nh == 0:
            continue
        pmean = ptab.stat(b, "average")
        hmean = htab.stat(b, "average")
        pp99 = ptab.stat(b, "p99")
        hp99 = htab.stat(b, "p99")
        mean_err = abs(hmean - pmean) / pmean
        p99_err = abs(hp99 - pp99) / pp99
        gated = np_ >= min_samples and nh >= min_samples
        gate_p99 = np_ >= p99_min_samples and nh >= p99_min_samples
        ok = (not gated) or (
            mean_err <= mean_tol and ((not gate_p99) or p99_err <= p99_tol)
        )
        checks.append(BinCheck(b, np_, nh, mean_err, p99_err, ok))

    ks = ks_distance(
        [r.slowdown for r in pres.collector.records],
        [r.slowdown for r in hres.records],
    )
    return GateReport(
        scenario,
        cc,
        checks,
        ks,
        ks_tol,
        hres.stats.get("demoted", 0),
        len(hres.records) and hres.n_flows,
        pres.completed(),
        hres.completed(),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scenario", default="fig14", choices=sorted(SCENARIOS))
    ap.add_argument("--cc", default="fncc")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true", help="CI slice (fewer flows)")
    ap.add_argument("--threshold", type=float, default=None,
                    help="override the demotion utilization threshold")
    args = ap.parse_args(argv)
    cfg = HybridConfig(threshold=args.threshold) if args.threshold is not None else None
    report = validate(args.scenario, cc=args.cc, seed=args.seed, quick=args.quick,
                      config=cfg)
    print(report.format())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
