"""Hybrid packet/flow co-simulation backend.

Two coupled tiers (DESIGN.md §6): flows whose paths never cross a
congested link advance in closed form under the incremental max-min fluid
model (:mod:`repro.hybrid.fluid`); flows crossing a congested link are
demoted to the full packet engine with live congestion control
(:mod:`repro.hybrid.backend`).  The tiers exchange state at congestion-
epoch boundaries: fluid background load is presented to packet-tier ports
as serializer-time drains, and measured packet throughput is fed back to
the fluid tier as residual link capacities.

Entry points:

* :func:`repro.hybrid.backend.run_fct_hybrid` — one (CC, workload) cell
  under the hybrid backend, mirroring ``run_fct_experiment``.
* :func:`Simulator` — backend-selecting factory:
  ``Simulator(backend="packet"|"flow"|"hybrid")``.
* ``python -m repro.hybrid.validate`` — the fidelity gate against
  packet-level ground truth.
"""

from repro.hybrid.fluid import FluidEngine, FluidStallError

BACKENDS = ("packet", "flow", "hybrid")


def Simulator(backend: str = "packet", **kwargs):
    """Backend-selecting factory.

    ``backend="packet"`` returns the discrete-event
    :class:`repro.sim.engine.Simulator`; ``"flow"`` the max-min fluid
    :class:`repro.analysis.flowsim.FlowLevelSimulator`; ``"hybrid"`` a
    :class:`repro.hybrid.backend.HybridSimulator` co-simulation driver.
    """
    if backend == "packet":
        from repro.sim.engine import Simulator as PacketSimulator

        return PacketSimulator(**kwargs)
    if backend == "flow":
        from repro.analysis.flowsim import FlowLevelSimulator

        return FlowLevelSimulator(**kwargs)
    if backend == "hybrid":
        from repro.hybrid.backend import HybridSimulator

        return HybridSimulator(**kwargs)
    raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")


__all__ = ["BACKENDS", "FluidEngine", "FluidStallError", "Simulator"]
