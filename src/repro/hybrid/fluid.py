"""Incremental max-min fluid engine: the hybrid backend's flow tier.

The classic fluid loop (the seed ``flowsim``) recomputed every flow's fair
rate with an O(L²) min-scan on every arrival/completion.  This engine
keeps the waterfilling *incremental*: an event re-solves only the flows
that share a link with the arrival/completion (expanding outward while
rates keep changing — the "ripple"), with the per-set solve done by a
heap-based progressive filling instead of repeated full scans.  Flow
completions are tracked lazily (a versioned heap of predicted finish
times), so an event costs O(affected · log n), not O(active).

Beyond plain max-min service the engine carries the three hooks the
hybrid tier boundary needs (DESIGN.md §6):

* **congestion recording** — per-link intervals during which utilization
  is at/above a threshold with at least ``min_flows`` concurrent flows
  (the demotion predicate);
* **background accumulation** — per-(link, epoch) byte integrals of a
  tracked flow subset's offered load (what the fluid tier presents to
  packet ports as virtual arrivals);
* **capacity schedules** — piecewise-constant per-link capacity changes
  (how measured packet-tier throughput is fed back as residual capacity).

Time is float picoseconds internally; capacities are bytes/ps.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FluidEngine", "FluidFlowResult", "FluidStallError"]

#: Relative slack when comparing a link's load against ``cap * threshold``:
#: a saturated link's load is a sum of waterfill shares and may sit a few
#: ulps under the capacity it was filled to.
_UTIL_SLACK = 1e-9

_PENDING, _ACTIVE, _DONE = 0, 1, 2


class FluidStallError(RuntimeError):
    """Every active flow has zero rate and no future event can change that.

    The seed fluid loop died here with a bare ``ValueError: min() arg is an
    empty sequence``; this names the actual failure (all residual
    capacities on the active flows' paths are zero — typically a capacity
    schedule that drove a link to zero with flows still on it).
    """


class FluidFlowResult:
    """Per-flow outcome: ``finish`` is float picoseconds; ``clean`` means
    the flow ran at its solo bottleneck rate for its whole lifetime (its
    service time is *exactly* the solo service time, no float residue)."""

    __slots__ = ("index", "start", "finish", "clean", "solo_rate")

    def __init__(self, index: int, start: float, finish: float, clean: bool, solo_rate: float) -> None:
        self.index = index
        self.start = start
        self.finish = finish
        self.clean = clean
        self.solo_rate = solo_rate


class FluidEngine:
    """One fluid run over integer-id links.

    Parameters
    ----------
    capacities:
        ``capacities[l]`` is link ``l``'s capacity in bytes/ps (> 0).
    congestion:
        Optional ``(threshold, min_flows)``: record, per link, the merged
        time intervals during which ``load >= cap * threshold`` while at
        least ``min_flows`` flows are on the link.  Available as
        :attr:`congestion_intervals` after :meth:`run`.
    bg:
        Optional ``(epoch_ps, links)``: accumulate, for each link id in
        ``links``, the bytes offered per epoch by flows added with
        ``tracked=True``.  Available as :attr:`bg_bytes` after
        :meth:`run` (``{link: {epoch_index: bytes}}``).
    cap_schedule:
        Optional sequence of ``(t_ps, link, cap_bytes_per_ps)`` capacity
        changes, applied in time order.
    rate_eps:
        Ripple damping: a re-solved rate within ``rate_eps`` (relative) of
        a flow's committed rate is left uncommitted, which stops the
        ripple from propagating ulp-scale adjustments across the whole
        fabric.  The committed allocation then deviates from exact max-min
        by at most ~``rate_eps`` at any instant — far below the fluid
        model's own error — while the per-event affected set stays local.
        0 disables damping (exact progressive filling).
    ripple_rounds:
        Optional cap on waterfill rounds per event.  Each round re-solves
        the affected set, then expands it by the neighbours of flows whose
        rate actually changed; at high load the expansion can reach most
        of the active set, making events O(active).  With a cap, flows
        beyond the horizon keep their last-committed rates until a later
        event re-solves them — rates stay feasible (the waterfill never
        allocates past a link's residual capacity) but may lag exact
        max-min between events.  ``None`` (default) iterates to
        convergence.
    """

    def __init__(
        self,
        capacities: Sequence[float],
        congestion: Optional[Tuple[float, int]] = None,
        bg: Optional[Tuple[int, Sequence[int]]] = None,
        cap_schedule: Optional[Sequence[Tuple[int, int, float]]] = None,
        rate_eps: float = 0.0,
        ripple_rounds: Optional[int] = None,
    ) -> None:
        if rate_eps < 0:
            raise ValueError("rate_eps must be non-negative")
        if ripple_rounds is not None and ripple_rounds < 1:
            raise ValueError("ripple_rounds must be positive (or None)")
        self._rate_eps = float(rate_eps)
        self._ripple_rounds = ripple_rounds
        self._base_cap = [float(c) for c in capacities]
        for c in self._base_cap:
            if c <= 0:
                raise ValueError("link capacities must be positive")
        self._cap = list(self._base_cap)
        n_links = len(self._cap)
        self._on_link: List[Dict[int, None]] = [{} for _ in range(n_links)]
        self._load = [0.0] * n_links
        self._cap_schedule = sorted(cap_schedule or [], key=lambda e: (e[0], e[1]))

        # Congestion recording.
        self._cong = congestion
        self.congestion_intervals: Dict[int, List[Tuple[float, float]]] = {}
        self._cong_open: Dict[int, float] = {}

        # Background accumulation.
        self._bg_epoch = 0
        self._bg_links: frozenset = frozenset()
        if bg is not None:
            epoch_ps, links = bg
            if epoch_ps <= 0:
                raise ValueError("bg epoch must be positive")
            self._bg_epoch = int(epoch_ps)
            self._bg_links = frozenset(links)
        self.bg_bytes: Dict[int, Dict[int, float]] = {l: {} for l in self._bg_links}
        self._bg_load = {l: 0.0 for l in self._bg_links}
        self._bg_last = {l: 0.0 for l in self._bg_links}

        # Flow table (filled by add_flow).
        self._links: List[Tuple[int, ...]] = []
        self._wire: List[float] = []
        self._start: List[int] = []
        self._tracked: List[bool] = []

        self.end_time = 0.0
        self.n_events = 0
        self.n_rate_changes = 0
        self.n_waterfills = 0
        self.max_active = 0

    # -- construction ----------------------------------------------------------
    def add_flow(self, links: Sequence[int], wire_bytes: float, start_ps: int, tracked: bool = False) -> int:
        """Register one flow; returns its dense index."""
        if not links:
            raise ValueError("flow path must contain at least one link")
        if wire_bytes <= 0:
            raise ValueError("flow wire size must be positive")
        for l in links:
            if not 0 <= l < len(self._cap):
                raise KeyError(f"unknown link id {l}")
        self._links.append(tuple(links))
        self._wire.append(float(wire_bytes))
        self._start.append(int(start_ps))
        self._tracked.append(bool(tracked))
        return len(self._links) - 1

    # -- core ------------------------------------------------------------------
    def run(self) -> List[FluidFlowResult]:
        """Drive all registered flows to completion; returns per-flow
        results in completion order."""
        n = len(self._links)
        order = sorted(range(n), key=lambda i: self._start[i])
        state = [_PENDING] * n
        rate = [0.0] * n
        rem = list(self._wire)
        upd = [0.0] * n
        ver = [0] * n
        clean = [True] * n
        solo = [min(self._base_cap[l] for l in links) for links in self._links]
        results: List[FluidFlowResult] = []

        comp: List[Tuple[float, int, int]] = []  # (finish, version, flow)
        on_link = self._on_link
        load = self._load
        cap = self._cap
        flinks = self._links
        touched: set = set()

        def set_rate(i: int, new: float, t: float) -> None:
            old = rate[i]
            if new == old:
                return
            r = rem[i] - old * (t - upd[i])
            rem[i] = r if r > 0.0 else 0.0
            upd[i] = t
            rate[i] = new
            if clean[i] and new != solo[i]:
                clean[i] = False
            delta = new - old
            if self._tracked[i]:
                for l in flinks[i]:
                    if l in self._bg_load:
                        self._bg_flush(l, t)
                        self._bg_load[l] += delta
                    load[l] += delta
                    touched.add(l)
            else:
                for l in flinks[i]:
                    load[l] += delta
                    touched.add(l)
            ver[i] += 1
            self.n_rate_changes += 1
            if new > 0.0:
                heapq.heappush(comp, (t + rem[i] / new, ver[i], i))

        # Waterfill scratch, allocated once per run and reset lazily via
        # the ``links_used`` list (flat arrays indexed by link id beat
        # per-call dicts by a wide margin at fat-tree scale).
        n_links = len(cap)
        w_avail = [0.0] * n_links
        w_nuf = [0] * n_links
        w_users: List[Optional[List[int]]] = [None] * n_links
        eps = self._rate_eps

        def waterfill(S: set, t: float) -> set:
            """Re-solve max-min for the flows in ``S`` with every other
            flow's rate held fixed; commits the new rates (damped by
            ``rate_eps``) and returns the subset whose rate changed."""
            self.n_waterfills += 1
            members = sorted(S)
            links_used: List[int] = []
            for f in members:
                for l in flinks[f]:
                    u = w_users[l]
                    if u is None:
                        w_users[l] = [f]
                        links_used.append(l)
                    else:
                        u.append(f)
            heap: List[Tuple[float, int]] = []
            for l in links_used:
                fs = w_users[l]
                ext = load[l]
                for f in fs:
                    ext -= rate[f]
                a = cap[l] - ext
                if a < 0.0:
                    a = 0.0
                w_avail[l] = a
                w_nuf[l] = len(fs)
                heap.append((a / len(fs), l))
            heapq.heapify(heap)
            newrate: Dict[int, float] = {}
            while heap:
                share, l = heapq.heappop(heap)
                k = w_nuf[l]
                if k == 0:
                    continue
                if share != w_avail[l] / k:
                    heapq.heappush(heap, (w_avail[l] / k, l))
                    continue
                for f in w_users[l]:
                    if f in newrate:
                        continue
                    newrate[f] = share
                    for lk in flinks[f]:
                        if lk == l or w_users[lk] is None:
                            continue
                        kk = w_nuf[lk]
                        if kk == 0:
                            continue
                        a = w_avail[lk] - share
                        w_avail[lk] = a if a > 0.0 else 0.0
                        w_nuf[lk] = kk - 1
                        if kk > 1:
                            heapq.heappush(heap, (w_avail[lk] / (kk - 1), lk))
                w_nuf[l] = 0
            changed = set()
            for f in members:
                nr = newrate.get(f, 0.0)
                cur = rate[f]
                if nr != cur and (
                    cur == 0.0 or nr == 0.0 or abs(nr - cur) > eps * cur
                ):
                    set_rate(f, nr, t)
                    changed.add(f)
            for l in links_used:
                w_users[l] = None
            return changed

        max_rounds = self._ripple_rounds

        def ripple(seed: set, t: float) -> None:
            S = set(seed)
            if not S:
                return
            rounds = 0
            while True:
                changed = waterfill(S, t)
                rounds += 1
                if max_rounds is not None and rounds >= max_rounds:
                    break
                expand = set()
                for f in changed:
                    for l in flinks[f]:
                        for g in on_link[l]:
                            if g not in S:
                                expand.add(g)
                if not expand:
                    break
                S |= expand

        caps = self._cap_schedule
        ai = 0
        ci = 0
        active = 0
        now = 0.0
        INF = float("inf")

        while True:
            # Earliest valid completion (drop stale versioned entries).
            while comp and (state[comp[0][2]] != _ACTIVE or comp[0][1] != ver[comp[0][2]]):
                heapq.heappop(comp)
            tc = comp[0][0] if comp else INF
            ta = float(self._start[order[ai]]) if ai < len(order) else INF
            tcap = float(caps[ci][0]) if ci < len(caps) else INF
            if tc == INF and ta == INF and tcap == INF:
                if active:
                    stuck = [i for i in range(n) if state[i] == _ACTIVE]
                    raise FluidStallError(
                        f"{len(stuck)} active flow(s) have zero max-min rate at "
                        f"t={now:.0f}ps and no future arrival or capacity change "
                        "can unblock them (zero residual capacity on every path "
                        "link — check the capacity schedule)"
                    )
                break
            self.n_events += 1
            # Tie order: completions free capacity before arrivals claim it;
            # capacity changes apply before arrivals see the link.
            if tc <= ta and tc <= tcap:
                now = tc
                _, _, i = heapq.heappop(comp)
                state[i] = _DONE
                active -= 1
                was_clean = clean[i]
                set_rate(i, 0.0, now)
                seed = set()
                for l in flinks[i]:
                    del on_link[l][i]
                    touched.add(l)
                    seed.update(on_link[l])
                results.append(FluidFlowResult(i, float(self._start[i]), now, was_clean, solo[i]))
                ripple(seed, now)
            elif tcap <= ta:
                now = tcap
                _, l, newcap = caps[ci]
                ci += 1
                if newcap <= 0:
                    raise ValueError("capacity schedule values must be positive")
                cap[l] = float(newcap)
                touched.add(l)
                ripple(set(on_link[l]), now)
            else:
                now = ta
                i = order[ai]
                ai += 1
                state[i] = _ACTIVE
                active += 1
                if active > self.max_active:
                    self.max_active = active
                upd[i] = now
                seed = {i}
                for l in flinks[i]:
                    seed.update(on_link[l])
                    on_link[l][i] = None
                    touched.add(l)
                ripple(seed, now)
            if self._cong is not None and touched:
                self._record_congestion(touched, now)
            touched.clear()

        self.end_time = now
        self._finalize(now)
        return results

    # -- congestion / background bookkeeping ----------------------------------
    def _record_congestion(self, links, t: float) -> None:
        threshold, min_flows = self._cong
        for l in links:
            gate = self._cap[l] * threshold
            hot = len(self._on_link[l]) >= min_flows and self._load[l] >= gate - gate * _UTIL_SLACK
            t0 = self._cong_open.get(l)
            if hot and t0 is None:
                self._cong_open[l] = t
            elif not hot and t0 is not None:
                del self._cong_open[l]
                if t > t0:
                    self.congestion_intervals.setdefault(l, []).append((t0, t))

    def _bg_flush(self, l: int, t: float) -> None:
        t0 = self._bg_last[l]
        if t <= t0:
            return
        self._bg_last[l] = t
        rho = self._bg_load[l]
        if rho <= 0.0:
            return
        ep = self._bg_epoch
        acc = self.bg_bytes[l]
        e0 = int(t0 // ep)
        e1 = int(t // ep)
        if e0 == e1:
            acc[e0] = acc.get(e0, 0.0) + rho * (t - t0)
            return
        acc[e0] = acc.get(e0, 0.0) + rho * ((e0 + 1) * ep - t0)
        full = rho * ep
        for e in range(e0 + 1, e1):
            acc[e] = acc.get(e, 0.0) + full
        tail = t - e1 * ep
        if tail > 0.0:
            acc[e1] = acc.get(e1, 0.0) + rho * tail

    def _finalize(self, t: float) -> None:
        for l in self._bg_links:
            self._bg_flush(l, t)
        for l, t0 in list(self._cong_open.items()):
            if t > t0:
                self.congestion_intervals.setdefault(l, []).append((t0, t))
        self._cong_open.clear()
