"""Runtime sanitizers: the event-tie detector (DESIGN.md §9).

A *tie* is two live events scheduled at the same integer-picosecond
timestamp.  The engine's ``(time, lane, seq)`` key makes their dispatch
order total and reproducible: the lane is a static topology property
(identical on every shard of a partitioned run), and same-lane ties fall
back to ``seq`` — insertion order, an accident of code layout, not a law
of the modeled system — which stays safe because same-lane events belong
to one entity whose causal creation order every replica replays.  A tie
site is still an **ordering hazard** worth mapping: the simulation
analog of a data race.  The tie detector is the race detector — it
records every heap pop whose timestamp ties another pending live event,
attributes both callbacks to ``module:qualname``, and aggregates the
pairs into a report the sharded-engine design consumes as its
ordering-hazard map (benign/commutative sites need no synchronization;
ordering-sensitive sites pin the conservative-sync protocol).

Opt-in only (``Simulator(sanitize="tie")`` or ``REPRO_SANITIZE=tie``):
the un-sanitized dispatch loop is untouched, and the sanitized loop is
observation-only — event order, timestamps, RNG draws and fingerprints
are byte-identical with the detector on or off (pinned by
``tests/sim/test_sanitizers.py``).

This module must stay stdlib-only and import nothing from
:mod:`repro.sim.engine` (the engine imports it).
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

#: The modes ``Simulator(sanitize=...)`` / ``REPRO_SANITIZE`` accept.
#: ``tie``  — event-tie detector (this module).
#: ``pool`` — packet-pool use-after-release sanitizer
#:            (:class:`repro.net.packet.SanitizingPacketPool`).
SANITIZE_MODES = frozenset({"tie", "pool"})

#: Version tag of the tie-report artifact schema (DESIGN.md §9).
TIE_REPORT_SCHEMA = "fncc-tie-report/v1"


def parse_sanitize(spec: Union[None, str, Iterable[str]]) -> FrozenSet[str]:
    """Normalize a sanitize spec (``"tie,pool"``, iterable, or None/"")
    into a frozenset of mode names, rejecting unknown modes loudly."""
    if spec is None:
        spec = ""
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.replace(";", ",").split(",")]
        modes = frozenset(p for p in parts if p and p != "off")
    else:
        modes = frozenset(spec)
    unknown = modes - SANITIZE_MODES
    if unknown:
        raise ValueError(
            f"unknown sanitize mode(s) {sorted(unknown)}; "
            f"valid: {sorted(SANITIZE_MODES)} (comma-separated)"
        )
    return modes


def callback_site(fn) -> str:
    """``module:qualname`` attribution for an event callback.

    Bound methods attribute to the underlying function (so every port's
    ``_tx_deliver`` aggregates to one site); lambdas/partials fall back to
    whatever name they carry.  This is the site key of the tie report —
    stable across runs, seeds and machines."""
    f = getattr(fn, "__func__", fn)
    mod = getattr(f, "__module__", None) or "?"
    qual = getattr(f, "__qualname__", None) or getattr(f, "__name__", None)
    if qual is None:
        qual = type(fn).__name__
    return f"{mod}:{qual}"


class TieRecorder:
    """Aggregates same-timestamp heap-pop ties by callback-site pair.

    One instance per sanitized :class:`~repro.sim.engine.Simulator`.  The
    recorder never touches simulation state: it only reads callback
    identities at pop time, so a sanitized run is byte-identical to an
    un-sanitized one.
    """

    __slots__ = ("pairs", "tied_pops", "total_pops", "max_sites")

    def __init__(self, max_sites: int = 4096) -> None:
        # (popped_site, pending_site) -> [count, first_time_ps]
        self.pairs: Dict[Tuple[str, str], list] = {}
        self.tied_pops = 0
        self.total_pops = 0
        self.max_sites = max_sites

    def record(self, time_ps: int, popped_fn, pending_fn) -> None:
        """One tied pop: ``popped_fn`` dispatched while ``pending_fn``
        waits at the same timestamp (dispatch order decided by insertion
        sequence alone)."""
        self.tied_pops += 1
        key = (callback_site(popped_fn), callback_site(pending_fn))
        entry = self.pairs.get(key)
        if entry is not None:
            entry[0] += 1
        elif len(self.pairs) < self.max_sites:
            self.pairs[key] = [1, time_ps]

    def report(self) -> dict:
        """The tie-report artifact body (DESIGN.md §9 schema): site pairs
        sorted by count (desc) then key — deterministic for a fixed run."""
        sites = [
            {
                "popped": k[0],
                "pending": k[1],
                "count": v[0],
                "first_time_ps": v[1],
            }
            for k, v in self.pairs.items()
        ]
        sites.sort(key=lambda s: (-s["count"], s["popped"], s["pending"]))
        return {
            "schema": TIE_REPORT_SCHEMA,
            "total_pops": self.total_pops,
            "tied_pops": self.tied_pops,
            "site_pairs": len(sites),
            "sites": sites,
        }


def merge_tie_reports(reports: Iterable[Optional[dict]]) -> dict:
    """Merge per-simulator tie reports (e.g. one per sweep cell) into one
    artifact body, summing counts per site pair."""
    pairs: Dict[Tuple[str, str], list] = {}
    total = tied = 0
    for rep in reports:
        if not rep:
            continue
        total += rep.get("total_pops", 0)
        tied += rep.get("tied_pops", 0)
        for s in rep.get("sites", ()):
            key = (s["popped"], s["pending"])
            entry = pairs.get(key)
            if entry is None:
                pairs[key] = [s["count"], s["first_time_ps"]]
            else:
                entry[0] += s["count"]
                entry[1] = min(entry[1], s["first_time_ps"])
    sites = [
        {"popped": k[0], "pending": k[1], "count": v[0], "first_time_ps": v[1]}
        for k, v in pairs.items()
    ]
    sites.sort(key=lambda s: (-s["count"], s["popped"], s["pending"]))
    return {
        "schema": TIE_REPORT_SCHEMA,
        "total_pops": total,
        "tied_pops": tied,
        "site_pairs": len(sites),
        "sites": sites,
    }


def write_tie_report(path, report: dict) -> None:
    """Write a tie-report artifact as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
