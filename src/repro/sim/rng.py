"""Deterministic random-number plumbing.

Every stochastic component (traffic generator, ECN marker, ECMP tie-break,
jitter) draws from its *own* named stream derived from one experiment seed.
Adding a new consumer therefore never perturbs existing streams, which keeps
regression baselines stable — the reproducibility idiom the HPC guides call
out ("make it work reliably" before optimizing).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

import numpy as np


class SeedSequenceFactory:
    """Derives independent, stable child seeds from ``(root_seed, name)``.

    ``stream("traffic")`` always returns the same :class:`random.Random` for
    the same root seed, regardless of creation order.
    """

    def __init__(self, root_seed: int) -> None:
        if not (0 <= root_seed < 2**63):
            raise ValueError("root seed must be a non-negative 63-bit integer")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def child_seed(self, name: str) -> int:
        """A stable 64-bit seed for the named stream."""
        digest = zlib.crc32(name.encode("utf-8"))
        return (self.root_seed * 0x9E3779B97F4A7C15 + digest) % (2**63)

    def stream(self, name: str) -> random.Random:
        """The stdlib RNG for ``name`` (created on first use, then cached)."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.child_seed(name))
            self._streams[name] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """The NumPy RNG for ``name`` (for vectorized sampling)."""
        rng = self._np_streams.get(name)
        if rng is None:
            rng = np.random.default_rng(self.child_seed(name))
            self._np_streams[name] = rng
        return rng


def stable_hash64(*parts: int) -> int:
    """A deterministic 64-bit mix of integers (Python's ``hash`` is salted,
    so it must never be used for ECMP path selection)."""
    h = 0xCBF29CE484222325
    for p in parts:
        p &= 0xFFFFFFFFFFFFFFFF
        while p:
            h ^= p & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            p >>= 8
        # Separator byte so (1, 23) and (12, 3) differ.
        h ^= 0xFE
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    # Avalanche finalizer (splitmix64-style): plain FNV's low bit is a
    # parity function of the input bytes — order-invariant — which would
    # make "hash % 2" ECMP pick the same port for (a,b) and (b,a) and mask
    # genuine path asymmetry.  Mixing makes every output bit order-aware.
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 31
    return h
