"""Cancellable and periodic timers layered on the engine.

DCQCN alone needs three independent timers per flow (alpha update, rate
increase, CNP pacing), so restartable timers are first-class here.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` (re-)arms the timer; ``cancel`` disarms it.  The callback is
    invoked with the payload given at ``start`` time.
    """

    __slots__ = ("_sim", "_fn", "_event", "_lane")

    def __init__(
        self, sim: Simulator, fn: Callable[[Any], None], lane: int = 0
    ) -> None:
        self._sim = sim
        self._fn = fn
        self._lane = lane
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.alive

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time, or None when disarmed."""
        return self._event.time if self.armed else None

    def start(self, delay: int, arg: Any = None) -> None:
        """Arm (or re-arm) the timer ``delay`` ps from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, arg, self._lane)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self, arg: Any) -> None:
        self._event = None
        self._fn(arg)


class Periodic:
    """A fixed-interval repeating callback (used by monitors and RoCC's PI).

    The callback runs first at ``start + interval`` (or ``start + offset`` if
    given), then every ``interval``.  ``stop`` halts it.  The callback
    receives the simulator time of the tick.
    """

    __slots__ = ("_sim", "_fn", "interval", "_event", "_running", "_lane")

    def __init__(
        self,
        sim: Simulator,
        interval: int,
        fn: Callable[[int], None],
        lane: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._fn = fn
        self._lane = lane
        self.interval = interval
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, offset: Optional[int] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = self.interval if offset is None else offset
        self._event = self._sim.schedule(delay, self._tick, None, self._lane)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self, _arg: Any) -> None:
        if not self._running:
            return
        # Re-arm the event object currently being dispatched (engine fast
        # path): monitors tick every microsecond, so this shaves an event
        # allocation + pool round-trip per sample.
        self._event = self._sim.schedule_reuse(self._event, self.interval)
        self._fn(self._sim.now)
