"""The discrete-event engine.

Design notes
------------
* Time is an integer picosecond count (see :mod:`repro.units`).  Integer
  timestamps make the event order total and deterministic: ties are broken
  first by the event's *lane* — a small static id allocated per simulation
  entity (node, port) in construction order — then by insertion sequence
  number.  Lane order is a property of the topology, not of execution
  history, which is what makes the order reproducible across the sharded
  engine's partitioned heaps (DESIGN.md §4.1/§11): two same-instant events
  on different entities compare by lane on every shard exactly as they do
  serially, and same-lane events belong to a single entity (hence a single
  shard) whose causal creation order the shard replays.
* :class:`Event` is orderable (``__lt__`` on its packed ``(time, lane,
  seq)`` key); the heap stores ``(key, event)`` pairs so every sift
  comparison is a single C-speed int compare — at the heap depths of
  fat-tree scenarios (hundreds of armed ports and timers) this beats both
  the legacy tuple-of-fields representation and Python-level ``__lt__``
  dispatch.
  Cancellation marks the event dead instead of removing it from the heap
  (lazy deletion), which is both simpler and faster for the cancel-rarely
  workloads of a network sim.
* Dispatched and lazily-deleted events are recycled through a free list, so
  steady-state scheduling allocates ~zero objects.  Ownership rule (see
  DESIGN.md §hot-path): an :class:`Event` handle returned by ``schedule``
  is valid until its callback has run or it has been cancelled; holding it
  past that point (and in particular calling :meth:`Event.cancel` on it
  later) is undefined because the object may have been recycled for an
  unrelated event.  :class:`repro.sim.timer.Timer` is the safe wrapper for
  re-armable timeouts.
* ``schedule_reuse`` is the self-rescheduling fast path: a callback may
  re-arm *its own* event object (the one currently being dispatched)
  without a pool round-trip.  Calling it on any event that is still in the
  heap corrupts the queue — :class:`repro.sim.timer.Periodic` is the
  canonical user.
* Callbacks receive a single ``arg`` payload.  We intentionally do not
  support ``*args``: one payload slot per event is the hot-path budget.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from .sanitize import TieRecorder, parse_sanitize

#: Upper bound on the event free list; beyond this, dead events are left to
#: the garbage collector.  Big enough for the deepest egress backlogs seen
#: in the paper scenarios, small enough to be irrelevant for memory.
_POOL_MAX = 8192

#: Default for :attr:`Simulator.trains_enabled` — the frame-train fast path
#: (DESIGN.md §2.2).  A train is a back-to-back same-direction burst whose
#: frame-hops ride a fused delivery pipeline (departure bookkeeping, switch
#: forwarding, egress enqueue in one pass) and whose port commits batch up
#: to ``Port.train_max`` frames at a time.  Trains never change observable
#: behavior: the wire schedule, counters, ECN/PFC decisions and RNG draw
#: order are byte-identical to the per-frame path (the property suite in
#: tests/property/test_trains.py pins this), so the toggle exists only for
#: A/B measurement (``tools/bench.py --trains off/on``) and for debugging.
#: Flip the module global before building a Simulator, or pass ``trains=``
#: explicitly; ports snapshot the flag at construction.  The default honors
#: the ``REPRO_TRAINS`` environment variable ("off" disables) so the mode
#: survives into spawn-started sweep workers, which re-import this module
#: rather than inheriting the parent's globals — tools/bench.py sets both.
TRAINS = os.environ.get("REPRO_TRAINS", "on") != "off"

#: Packed event-key layout: ``time << 64 | lane << 44 | seq``.  44 bits of
#: sequence space is ~17.6 trillion events per run; 20 bits of lane space is
#: ~1M entities — both far beyond any scenario, and Python's unbounded ints
#: absorb the time field above them.  Lane 0 is reserved for un-laned events
#: (experiment drivers, fault injectors) so allocated entity lanes can never
#: collide with the default.
LANE_BITS = 20
SEQ_BITS = 44
_MAX_LANES = 1 << LANE_BITS


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted event queue."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    The only public operation is :meth:`cancel`; everything else is owned by
    the engine.  Handles must not be cancelled after their callback has run
    (the object may have been recycled — see the module docstring).

    Ordering is by ``(time, lane, seq)``, packed into the single integer
    ``key`` (``time << 64 | lane << 44 | seq``) so the heap's ``__lt__`` is
    one C-speed int compare instead of a lexicographic field test.  The
    lane (see :meth:`Simulator.alloc_lane`) makes same-instant cross-entity
    ordering a static topology property rather than an execution-history
    accident — the invariant the sharded engine's byte-identity rests on.
    """

    __slots__ = ("time", "seq", "lane", "key", "fn", "arg", "alive")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[[Any], None],
        arg: Any,
        lane: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.lane = lane
        self.key = (time << 64) | (lane << 44) | seq
        self.fn = fn
        self.arg = arg
        self.alive = True

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly on a
        live handle."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "cancelled"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with integer time.

    Typical use::

        sim = Simulator()
        sim.schedule(units.us(5), my_callback, payload)
        sim.run(until=units.ms(1))
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_lanes",
        "_pool",
        "_running",
        "_stopped",
        "events_dispatched",
        "trains_enabled",
        "obs",
        "monitors",
        "sanitize",
        "tie_recorder",
        "faults",
    )

    def __init__(
        self,
        trains: Optional[bool] = None,
        sanitize: Optional[Any] = None,
    ) -> None:
        self.now: int = 0
        self._heap: list = []
        self._seq: int = 0
        self._lanes: int = 0
        self._pool: list = []
        self._running: bool = False
        self._stopped: bool = False
        self.events_dispatched: int = 0
        # Frame-train fast path (see module docstring / TRAINS).  Read by
        # ports at construction time; semantics are identical either way.
        self.trains_enabled: bool = TRAINS if trains is None else trains
        # Debug-only runtime sanitizers (DESIGN.md §9).  ``sanitize`` is the
        # frozenset of active modes ({"tie", "pool"}); hosts consult it to
        # pick their PacketPool class.  Unlike TRAINS, the environment
        # default is read here at construction (not import) time so tools
        # can toggle REPRO_SANITIZE in-process, and spawn-started sweep
        # workers still inherit it through the environment.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "")
        self.sanitize = parse_sanitize(sanitize)
        self.tie_recorder = TieRecorder() if "tie" in self.sanitize else None
        # The run's observability bundle (repro.obs.RunObservability), set
        # by its attach(); None on un-instrumented runs.  Registry reads are
        # pull-based, so this costs nothing on the dispatch path.
        self.obs = None
        # The run's armed FaultInjector (repro.faults), set by its arm();
        # None on healthy runs.  Read only by cold paths (flight dumps,
        # audits), never by the dispatch loop.
        self.faults = None
        # Periodic samplers registered for auto-stop (see stop_monitors).
        self.monitors: list = []

    # -- lanes --------------------------------------------------------------
    def alloc_lane(self) -> int:
        """Allocate the next tie-break lane (see :class:`Event`).

        Lanes must be allocated only on code paths every replica of the run
        executes identically — in practice topology construction (nodes and
        ports) — so serial and sharded builds of the same fabric agree on
        every lane id.  Anything scheduling on behalf of an entity (timers,
        samplers, congestion control) passes that entity's existing lane
        instead of allocating its own.  Lane 0 is reserved for un-laned
        events."""
        lane = self._lanes + 1
        if lane >= _MAX_LANES:
            raise SimulationError("tie-break lane space exhausted")
        self._lanes = lane
        return lane

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self,
        delay: int,
        fn: Callable[[Any], None],
        arg: Any = None,
        lane: int = 0,
    ) -> Event:
        """Schedule ``fn(arg)`` to run ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # schedule_at's body, flattened: timers re-arm on every ACK, so the
        # extra frame matters.
        time = self.now + delay
        self._seq = seq = self._seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.lane = lane
            ev.key = key = (time << 64) | (lane << 44) | seq
            ev.fn = fn
            ev.arg = arg
            ev.alive = True
        else:
            ev = Event(time, seq, fn, arg, lane)
            key = ev.key
        heappush(self._heap, (key, ev))
        return ev

    def schedule_at(
        self,
        time: int,
        fn: Callable[[Any], None],
        arg: Any = None,
        lane: int = 0,
    ) -> Event:
        """Schedule ``fn(arg)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._seq = seq = self._seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.lane = lane
            ev.key = key = (time << 64) | (lane << 44) | seq
            ev.fn = fn
            ev.arg = arg
            ev.alive = True
        else:
            ev = Event(time, seq, fn, arg, lane)
            key = ev.key
        heappush(self._heap, (key, ev))
        return ev

    def schedule_reuse(self, ev: Event, delay: int) -> Event:
        """Re-arm ``ev`` — the event whose callback is currently running —
        ``delay`` ps from now, keeping its callback and payload.

        NOTE: ``Port._tx_deliver`` inlines this body (including the key
        packing) for the per-frame delivery loop — change them together.

        Only valid from within ``ev``'s own callback (the dispatcher has
        already popped it from the heap); using it on an event that may
        still be queued corrupts the heap.  Skips the free-list round-trip
        that ``cancel`` + ``schedule`` would pay.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        time = self.now + delay
        ev.time = time
        ev.seq = seq
        ev.key = key = (time << 64) | (ev.lane << 44) | seq
        ev.alive = True
        heappush(self._heap, (key, ev))
        return ev

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Dispatch events in time order.

        Runs until the queue drains, :meth:`stop` is called, or the clock
        would pass ``until`` (events at exactly ``until`` *do* run).  Returns
        the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if self.tie_recorder is not None:
            return self._run_tie(until)
        self._running = True
        self._stopped = False
        dispatched = 0
        heap = self._heap
        pool = self._pool
        pop = heappop
        try:
            if until is None:
                # Unbounded drain: pop directly, no peek needed.
                while heap and not self._stopped:
                    ev = pop(heap)[1]
                    if not ev.alive:
                        # Lazy deletion: cancelled in place, recycle it.
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                        continue
                    self.now = ev.time
                    ev.alive = False
                    seq = ev.seq
                    ev.fn(ev.arg)
                    # Recycle only if the callback neither re-armed the
                    # event (schedule_reuse bumps seq, so seq unchanged
                    # proves it is not back in the heap) nor left it alive.
                    # A re-armed-then-cancelled event stays out of the pool
                    # and is recycled by lazy deletion when it pops.
                    if not ev.alive and ev.seq == seq:
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                    dispatched += 1
            else:
                # Horizon test hoisted into key space: one int compare per
                # iteration covers "time > until" exactly.  Pop first and
                # push back on the (once-per-run) horizon hit — cheaper than
                # peeking every iteration.
                horizon_key = (until + 1) << 64
                while heap and not self._stopped:
                    item = pop(heap)
                    if item[0] >= horizon_key:
                        heappush(heap, item)
                        break
                    ev = item[1]
                    if not ev.alive:
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                        continue
                    self.now = ev.time
                    ev.alive = False
                    seq = ev.seq
                    ev.fn(ev.arg)
                    if not ev.alive and ev.seq == seq:  # see drain loop note
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                    dispatched += 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            # Advance the clock to the horizon even if the queue drained,
            # so back-to-back run(until=...) calls observe monotonic time.
            self.now = until
        self.events_dispatched += dispatched
        return dispatched

    def _run_tie(self, until: Optional[int]) -> int:
        """The :meth:`run` loops with the event-tie detector woven in
        (``sanitize="tie"``, DESIGN.md §9).  Kept out of :meth:`run` so the
        un-sanitized hot loops pay nothing for the feature.

        Semantics are identical to :meth:`run` — same pop order, same clock
        updates, same recycling rule — plus, before each dispatch, a peek at
        the heap head: if the next live pending event carries the same
        timestamp as the event about to run, the pair of callback sites is
        recorded as an ordering hazard.

        The peek is a packed-key compare on the raw head entry, which is
        exact: the heap property guarantees every remaining key >= the
        popped key, so the head's time part matches iff a same-timestamp
        event is pending — only then does the slow path run, purging any
        dead heads (that merely *advances* lazy deletion; shells are
        interchangeable) before attributing the pair.  Checking the head
        alone covers whole tie groups: every member of an n-way tie is
        recorded as it pops except the last, which was already recorded as
        some earlier pop's pending partner.
        """
        self._running = True
        self._stopped = False
        dispatched = 0
        heap = self._heap
        pool = self._pool
        pop = heappop
        rec = self.tie_recorder
        pops = 0
        # Time parts of two packed keys match iff their XOR clears the high
        # bits, i.e. is below the 64-bit lane+sequence field — one int op
        # per pop.
        seq_mask = (1 << 64) - 1
        try:
            if until is None:
                while heap and not self._stopped:
                    item = pop(heap)
                    ev = item[1]
                    if not ev.alive:
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                        continue
                    pops += 1
                    if heap and heap[0][0] ^ item[0] <= seq_mask:
                        self._tie_peek(rec, ev, heap, pool, pop)
                    self.now = ev.time
                    ev.alive = False
                    seq = ev.seq
                    ev.fn(ev.arg)
                    if not ev.alive and ev.seq == seq:  # see run() note
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                    dispatched += 1
            else:
                horizon_key = (until + 1) << 64
                while heap and not self._stopped:
                    item = pop(heap)
                    if item[0] >= horizon_key:
                        heappush(heap, item)
                        break
                    ev = item[1]
                    if not ev.alive:
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                        continue
                    pops += 1
                    if heap and heap[0][0] ^ item[0] <= seq_mask:
                        self._tie_peek(rec, ev, heap, pool, pop)
                    self.now = ev.time
                    ev.alive = False
                    seq = ev.seq
                    ev.fn(ev.arg)
                    if not ev.alive and ev.seq == seq:  # see run() note
                        ev.fn = ev.arg = None
                        if len(pool) < _POOL_MAX:
                            pool.append(ev)
                    dispatched += 1
        finally:
            self._running = False
            rec.total_pops += pops
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        self.events_dispatched += dispatched
        return dispatched

    @staticmethod
    def _tie_peek(rec, ev, heap, pool, pop) -> None:
        """Slow path of the tie check: the head's packed key carries the
        popped event's timestamp.  The head may be a dead shell shadowing a
        live event at the same time — purge (which only *advances* lazy
        deletion; shells are interchangeable) and re-check until a live
        head or a later timestamp surfaces, then attribute the pair.  A
        pending event past the run horizon can never reach here: its time
        exceeds ``until >= ev.time``."""
        while heap:
            head = heap[0][1]
            if head.alive:
                if head.time == ev.time:
                    rec.record(ev.time, ev.fn, head.fn)
                break
            pop(heap)
            head.fn = head.arg = None
            if len(pool) < _POOL_MAX:
                pool.append(head)

    def tie_report(self) -> Optional[dict]:
        """The event-tie detector's findings (None unless ``sanitize="tie"``).
        See :meth:`repro.sim.sanitize.TieRecorder.report` for the schema."""
        if self.tie_recorder is None:
            return None
        return self.tie_recorder.report()

    def step(self) -> bool:
        """Dispatch the single next live event.  Returns False if none left."""
        heap = self._heap
        pool = self._pool
        while heap:
            ev = heappop(heap)[1]
            if not ev.alive:
                ev.fn = ev.arg = None
                if len(pool) < _POOL_MAX:
                    pool.append(ev)
                continue
            self.now = ev.time
            ev.alive = False
            seq = ev.seq
            ev.fn(ev.arg)
            if not ev.alive and ev.seq == seq:  # see run() note
                ev.fn = ev.arg = None
                if len(pool) < _POOL_MAX:
                    pool.append(ev)
            self.events_dispatched += 1
            return True
        return False

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        pool = self._pool
        while heap:
            ev = heap[0][1]
            if ev.alive:
                return ev.time
            heappop(heap)
            ev.fn = ev.arg = None
            if len(pool) < _POOL_MAX:
                pool.append(ev)
        return None

    def register_monitor(self, monitor) -> None:
        """Register a sampler-like object (anything with ``stop()``) for
        :meth:`stop_monitors`.  Samplers self-register at construction so a
        run that raises can disarm every pending ``Periodic`` in one call
        (the flight recorder does exactly that before dumping state)."""
        self.monitors.append(monitor)

    def stop_monitors(self) -> None:
        """Stop every registered monitor.  Idempotent: each monitor's own
        ``stop()`` is required to tolerate repeated calls."""
        for monitor in self.monitors:
            monitor.stop()
        self.monitors.clear()

    def queue_len(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    def pool_len(self) -> int:
        """Number of recycled Event shells currently on the free list."""
        return len(self._pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now}ps queued={len(self._heap)}>"
