"""The discrete-event engine.

Design notes
------------
* Time is an integer picosecond count (see :mod:`repro.units`).  Integer
  timestamps make the event order total and deterministic: ties are broken
  by insertion sequence number.
* Events are plain tuples ``(time, seq, event)`` in a ``heapq``; ``event``
  is a small :class:`Event` carrying the callback.  Cancellation marks the
  event dead instead of removing it from the heap (lazy deletion), which is
  both simpler and faster for the cancel-rarely workloads of a network sim.
* Callbacks receive a single ``arg`` payload.  We intentionally do not
  support ``*args``: one tuple allocation per event is the hot-path budget.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted event queue."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    The only public operation is :meth:`cancel`; everything else is owned by
    the engine.
    """

    __slots__ = ("time", "fn", "arg", "alive")

    def __init__(self, time: int, fn: Callable[[Any], None], arg: Any) -> None:
        self.time = time
        self.fn = fn
        self.arg = arg
        self.alive = True

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "cancelled"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with integer time.

    Typical use::

        sim = Simulator()
        sim.schedule(units.us(5), my_callback, payload)
        sim.run(until=units.ms(1))
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_stopped", "events_dispatched")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.events_dispatched: int = 0

    # -- scheduling ---------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[Any], None], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` to run ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, arg)

    def schedule_at(self, time: int, fn: Callable[[Any], None], arg: Any = None) -> Event:
        """Schedule ``fn(arg)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        ev = Event(time, fn, arg)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Dispatch events in time order.

        Runs until the queue drains, :meth:`stop` is called, or the clock
        would pass ``until`` (events at exactly ``until`` *do* run).  Returns
        the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                time, _, ev = heap[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if not ev.alive:
                    continue
                self.now = time
                ev.fn(ev.arg)
                dispatched += 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            # Advance the clock to the horizon even if the queue drained,
            # so back-to-back run(until=...) calls observe monotonic time.
            self.now = until
        self.events_dispatched += dispatched
        return dispatched

    def step(self) -> bool:
        """Dispatch the single next live event.  Returns False if none left."""
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if not ev.alive:
                continue
            self.now = time
            ev.fn(ev.arg)
            self.events_dispatched += 1
            return True
        return False

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap:
            time, _, ev = heap[0]
            if ev.alive:
                return time
            heapq.heappop(heap)
        return None

    def queue_len(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now}ps queued={len(self._heap)}>"
