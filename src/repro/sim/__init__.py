"""Discrete-event simulation core (the OMNeT++ substitute).

The engine is deliberately tiny and callback-based: the hot path of a
packet-level network simulation is event dispatch, and a heapq of
``(time, seq, fn, arg)`` tuples dispatches several hundred thousand events
per second in CPython.  Richer abstractions (cancellable timers, periodic
processes) are layered on top without touching the hot path.
"""

from repro.sim.engine import Simulator, Event, SimulationError
from repro.sim.timer import Timer, Periodic
from repro.sim.rng import SeedSequenceFactory

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Timer",
    "Periodic",
    "SeedSequenceFactory",
]
