"""Next-hop table computation shared by the routing installers.

Tables map ``switch name -> destination host id -> sorted list of egress
port indices`` (one entry for single-path, several for ECMP).  Distances are
hop counts computed by BFS from each host, which is exact for the paper's
equal-rate fabrics.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from repro.topo.base import Topology


class RoutingTables:
    """Computed next-hop tables plus the graph they were derived from."""

    __slots__ = ("graph", "tables")

    def __init__(self, graph: nx.Graph, tables: Dict[str, Dict[int, List[int]]]) -> None:
        self.graph = graph
        self.tables = tables

    def ports_for(self, switch_name: str, dst_host_id: int) -> List[int]:
        entry = self.tables.get(switch_name)
        if entry is None:
            raise KeyError(f"no table for switch {switch_name}")
        ports = entry.get(dst_host_id)
        if not ports:
            raise KeyError(f"{switch_name}: no route to host {dst_host_id}")
        return ports


def _bfs_distances(graph: nx.Graph, source: str) -> Dict[str, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph[u]:
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def build_graph_tables(topo: "Topology", graph: nx.Graph = None) -> RoutingTables:
    """Equal-cost next-hop tables on ``graph`` (default: the full topology).

    Hosts never forward, so only switches get entries.  Next-hop lists are
    sorted by neighbor name: the consistent ordering that makes canonical
    ECMP hashing pick mirror-image paths in both directions (Fig. 5).
    """
    g = graph if graph is not None else topo.graph
    tables: Dict[str, Dict[int, List[int]]] = {sw.name: {} for sw in topo.switches}
    for host in topo.hosts:
        if host.name not in g:
            continue
        dist = _bfs_distances(g, host.name)
        for sw in topo.switches:
            if sw.name not in dist:
                continue
            d = dist[sw.name]
            next_hops = sorted(
                v for v in g[sw.name] if dist.get(v, 1 << 30) == d - 1
            )
            ports = [g.edges[sw.name, v]["ports"][sw.name] for v in next_hops]
            tables[sw.name][host.host_id] = ports
    return RoutingTables(g, tables)
