"""Multiple-spanning-tree routing (Fig. 6, after TCP-Bolt).

Each tree has a unique path between any pair of nodes, so data and ACK
paths are identical by construction — no hash symmetry needed.  Trees are
minimum spanning trees under independent random edge weights, which yields
diverse trees on path-diverse topologies (Jellyfish, fat-tree).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import networkx as nx

from repro.routing.tables import RoutingTables, build_graph_tables
from repro.sim.rng import stable_hash64

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch
    from repro.topo.base import Topology


def build_trees(topo: "Topology", n_trees: int, seed: int) -> List[nx.Graph]:
    """``n_trees`` spanning trees of the topology graph, deterministic in
    ``seed``.  Host access links appear in every tree (hosts are leaves)."""
    if n_trees < 1:
        raise ValueError("need at least one tree")
    g = topo.graph
    if not nx.is_connected(g):
        raise ValueError("topology graph is not connected")
    import zlib

    trees: List[nx.Graph] = []
    for t in range(n_trees):
        weighted = g.copy()
        # Deterministic per-tree weights from names (builtin hash() is salted
        # per process, so stable string digests are used instead).
        for u, v in weighted.edges:
            digest = zlib.crc32(f"{seed}:{t}:{min(u, v)}:{max(u, v)}".encode())
            weighted.edges[u, v]["w"] = digest
        trees.append(nx.minimum_spanning_tree(weighted, weight="w"))
    return trees


def tree_index(src: int, dst: int, flow_id: int, n_trees: int) -> int:
    """Which spanning tree a flow rides (same canonical hash as ECMP, so
    data and ACK agree).  Public because PFC deadlock analysis needs the
    tree -> traffic-class mapping (TCP-Bolt gives each tree its own
    priority class; buffer dependencies never cross classes)."""
    a, b = (src, dst) if src <= dst else (dst, src)
    return stable_hash64(a, b, flow_id) % n_trees


def install_spanning_trees(
    topo: "Topology", n_trees: int = 3, seed: int = 1
) -> List[RoutingTables]:
    """Attach a router that hashes each flow onto one spanning tree."""
    trees = build_trees(topo, n_trees, seed)
    per_tree = [build_graph_tables(topo, tree) for tree in trees]
    tables = [rt.tables for rt in per_tree]
    n = len(tables)

    def router(sw: "Switch", pkt: "Packet") -> int:
        idx = tree_index(pkt.src, pkt.dst, pkt.flow_id, n)
        ports = tables[idx][sw.name][pkt.dst]
        return ports[0]  # unique path within a tree

    for sw in topo.switches:
        sw.router = router
    topo.n_spanning_trees = n
    return per_tree
