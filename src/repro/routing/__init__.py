"""Routing installers.

* :func:`install_ecmp` — shortest-path routing with ECMP load balancing.
  The hash operates on a *canonical* five-tuple (Fig. 5's symmetric routing
  table): a data packet and its ACK share the hash value, and equal-cost
  next-hop lists are ordered consistently, so both directions traverse the
  same switches — the property FNCC's Observation 2 requires.  Set
  ``symmetric=False`` to deliberately break this (ablation).
* :func:`install_spanning_trees` — the paper's alternative (Fig. 6):
  multiple spanning trees, each with a unique path between any two nodes;
  flows hash onto a tree.  Symmetric by construction.
"""

from repro.routing.tables import RoutingTables, build_graph_tables
from repro.routing.ecmp import install_ecmp
from repro.routing.spanning_tree import install_spanning_trees

__all__ = [
    "RoutingTables",
    "build_graph_tables",
    "install_ecmp",
    "install_spanning_trees",
]
