"""ECMP with the paper's symmetric routing tables (Fig. 5).

The hash input is the canonical five-tuple ``(min(src,dst), max(src,dst),
flow_id)``: a data packet and its ACK produce the same hash, and with
consistently ordered next-hop lists (see :mod:`repro.routing.tables`) the
two directions select the same physical path.  ``symmetric=False`` hashes
the directed tuple instead, reproducing the asymmetry problem FNCC's
Observation 2 warns about (used by the ablation bench).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.tables import RoutingTables, build_graph_tables
from repro.sim.rng import stable_hash64

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch
    from repro.topo.base import Topology


def install_ecmp(
    topo: "Topology", symmetric: bool = True, salt: int = 0
) -> RoutingTables:
    """Compute tables and attach an ECMP router to every switch."""
    rt = build_graph_tables(topo)
    tables = rt.tables
    # The five-tuple hash is flow-invariant, so compute it once per flow and
    # memoize: the per-packet router then costs one dict hit plus a modulo.
    # Keys carry the full canonical tuple — flow ids are only unique per
    # host, so (src, dst) must participate or two flows sharing an id
    # between different host pairs would alias.
    hash_cache: dict = {}

    def make_router(sw_tables):
        # Pre-split each destination entry into (ports, n) — single-port
        # entries collapse to the bare index — so the per-packet path does
        # no len() call.
        split = {
            dst: (ports[0] if len(ports) == 1 else (tuple(ports), len(ports)))
            for dst, ports in sw_tables.items()
        }
        if symmetric:

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                a, b = pkt.src, pkt.dst
                if a > b:
                    a, b = b, a
                key = (a, b, pkt.flow_id)
                h = hash_cache.get(key)
                if h is None:
                    h = hash_cache[key] = stable_hash64(a, b, pkt.flow_id, salt)
                return ports[h % n]

        else:

            def router(sw: "Switch", pkt: "Packet") -> int:
                entry = split[pkt.dst]
                if type(entry) is int:
                    return entry
                ports, n = entry
                key = (pkt.src, pkt.dst, pkt.flow_id)
                h = hash_cache.get(key)
                if h is None:
                    h = hash_cache[key] = stable_hash64(
                        pkt.src, pkt.dst, pkt.flow_id, salt
                    )
                return ports[h % n]

        return router

    for sw in topo.switches:
        # Bind each switch's table slice once instead of re-resolving
        # tables[sw.name] on every packet-hop.
        sw.router = make_router(tables[sw.name])
    return rt
