"""ECMP with the paper's symmetric routing tables (Fig. 5).

The hash input is the canonical five-tuple ``(min(src,dst), max(src,dst),
flow_id)``: a data packet and its ACK produce the same hash, and with
consistently ordered next-hop lists (see :mod:`repro.routing.tables`) the
two directions select the same physical path.  ``symmetric=False`` hashes
the directed tuple instead, reproducing the asymmetry problem FNCC's
Observation 2 warns about (used by the ablation bench).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.tables import RoutingTables, build_graph_tables
from repro.sim.rng import stable_hash64

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.switch import Switch
    from repro.topo.base import Topology


def install_ecmp(
    topo: "Topology", symmetric: bool = True, salt: int = 0
) -> RoutingTables:
    """Compute tables and attach an ECMP router to every switch."""
    rt = build_graph_tables(topo)
    tables = rt.tables

    if symmetric:

        def router(sw: "Switch", pkt: "Packet") -> int:
            ports = tables[sw.name][pkt.dst]
            n = len(ports)
            if n == 1:
                return ports[0]
            a, b = pkt.src, pkt.dst
            if a > b:
                a, b = b, a
            return ports[stable_hash64(a, b, pkt.flow_id, salt) % n]

    else:

        def router(sw: "Switch", pkt: "Packet") -> int:
            ports = tables[sw.name][pkt.dst]
            n = len(ports)
            if n == 1:
                return ports[0]
            return ports[stable_hash64(pkt.src, pkt.dst, pkt.flow_id, salt) % n]

    for sw in topo.switches:
        sw.router = router
    return rt
