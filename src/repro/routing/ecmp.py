"""ECMP with the paper's symmetric routing tables (Fig. 5).

The hash input is the canonical five-tuple ``(min(src,dst), max(src,dst),
flow_id)``: a data packet and its ACK produce the same hash, and with
consistently ordered next-hop lists (see :mod:`repro.routing.tables`) the
two directions select the same physical path.  ``symmetric=False`` hashes
the directed tuple instead, reproducing the asymmetry problem FNCC's
Observation 2 warns about (used by the ablation bench).

Since the load-balancing subsystem landed, the strategy itself lives in
:class:`repro.lb.ecmp.EcmpLB`; this installer is the compatibility entry
point that wires the ECMP baseline onto every switch.  The per-flow hash
memo is owned by the per-switch strategy instance (fresh per install, so a
new topology never inherits stale entries) and bounded — see
:mod:`repro.lb.base` for the ownership rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.tables import RoutingTables

if TYPE_CHECKING:  # pragma: no cover
    from repro.topo.base import Topology


def install_ecmp(
    topo: "Topology", symmetric: bool = True, salt: int = 0
) -> RoutingTables:
    """Compute tables and attach an ECMP router to every switch."""
    from repro.lb.base import LbConfig, install_lb

    return install_lb(topo, LbConfig("ecmp", symmetric=symmetric, salt=salt))
