"""Compatibility shim: all metadata lives in pyproject.toml.

`pip install -e .` is the normal route (CI, any machine with `wheel`).
Fully-offline environments without the `wheel` package can fall back to
``python setup.py develop`` — the legacy egg-link editable install needs
no wheel building.
"""

from setuptools import setup

setup()
