"""Legacy shim so editable installs work without the ``wheel`` package
(this environment is offline).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
