#!/usr/bin/env python
"""The Fig. 13e fairness staircase, as a runnable demo.

Four long-lived flows share one bottleneck.  A new flow joins every epoch;
then flows leave one per epoch.  A fair CC shows a clean rate staircase
100 -> 50 -> 33 -> 25 -> 33 -> 50 -> 100 Gb/s with Jain index ~ 1 at every
step.  Try swapping the scheme to "dcqcn" or "timely" to see rougher
staircases.

Run:  python examples/fairness_staircase.py [cc]
"""

import sys

from repro.experiments.fig13_fairness import run_fairness


def main() -> None:
    cc = sys.argv[1] if len(sys.argv) > 1 else "fncc"
    print(f"Fairness staircase under {cc} (4 flows, 1 ms epochs)\n")
    res = run_fairness(cc, n_flows=4, epoch_us=1000.0, sample_us=10.0)
    n = res.n_flows
    print(f"{'epoch':>6} {'active':>7} {'fair':>7} {'jain':>6} " + " ".join(f"{'f'+str(i):>6}" for i in range(n)))
    for t in res.epoch_probe_times():
        active = res.active_flows_at(t)
        rates = " ".join(f"{res.rates[i].value_at(t):6.1f}" for i in range(n))
        print(
            f"{t / res.epoch_ps:6.1f} {len(active):>7} "
            f"{res.fair_share_at(t):7.1f} {res.jain_index_at(t):6.3f} {rates}"
        )
    print("\n(rates in Gb/s; 'fair' is capacity / active flows)")


if __name__ == "__main__":
    main()
