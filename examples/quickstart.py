#!/usr/bin/env python
"""Quickstart: reproduce the paper's core observation in ~30 lines.

Two elephant flows collide on a dumbbell bottleneck (Fig. 10).  We run the
same scenario under FNCC, HPCC and DCQCN and print the three numbers the
paper leads with: how deep the congestion queue gets, how fast the sender
reacts, and how many PFC pause frames fire.

Run:  python examples/quickstart.py
"""

from repro import quick_dumbbell
from repro.experiments.fig9_microbench import response_time_us
from repro.units import KB, us


def main() -> None:
    print("Two elephants on a 100 Gb/s dumbbell; flow1 joins at 300 us.\n")
    print(f"{'cc':>7} {'peak queue':>12} {'responds at':>12} {'pauses':>7} {'util':>6}")
    results = {}
    for cc in ("fncc", "hpcc", "dcqcn"):
        result = quick_dumbbell(cc, duration_us=700.0)
        results[cc] = result
        resp = response_time_us(result)
        print(
            f"{cc:>7} {result.peak_queue_bytes / KB:9.1f} KB "
            f"{resp:9.1f} us {result.pause_frames:7d} "
            f"{result.utilization.mean_after(us(100)):6.3f}"
        )
    from repro.viz import compare_series

    print("\ncongestion-point queue over time (shared scale):")
    print(
        compare_series(
            {cc: r.queue for cc, r in results.items()}, y_scale=1 / KB, unit="KB"
        )
    )
    print(
        "\nFNCC reacts first (sub-RTT ACK-path INT) and keeps the queue"
        "\nshallowest — the paper's Figs. 1 and 9 in one table."
    )


if __name__ == "__main__":
    main()
