#!/usr/bin/env python
"""Incast and the Last-Hop Congestion Speedup (LHCS, Alg. 2).

Eight senders blast one receiver through a single switch — the classic
last-hop congestion pattern (e.g. a distributed storage read, or the
reduce phase the paper's intro motivates).  The receiver writes the
concurrent-flow count N into every ACK; FNCC senders use it to jump
straight to the fair share B*RTT*beta/N instead of stepping down.

We compare FNCC with and without LHCS, and HPCC, on peak queue and the
95th-percentile FCT of the incast flows.

Run:  python examples/incast_lhcs.py
"""

import numpy as np

from repro.experiments.common import build_cc_env, launch_flows
from repro.metrics.fct import FctCollector
from repro.metrics.monitors import QueueSampler
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.star import star
from repro.traffic.generator import incast_flows
from repro.units import KB, MB, us

N_SENDERS = 8
FLOW_BYTES = 1 * MB


def run(cc: str, **cc_params):
    sim = Simulator()
    env = build_cc_env(cc, **cc_params)
    topo = star(
        sim,
        N_SENDERS + 1,
        switch_config=env.switch_config,
        seeds=SeedSequenceFactory(1),
        cnp_enabled=env.cnp_enabled,
    )
    env.post_install(topo)
    collector = FctCollector(topo)
    receiver = topo.hosts[N_SENDERS]
    # Monitor the last hop: the switch's egress toward the receiver.
    port_idx = topo.graph.edges["sw0", receiver.name]["ports"]["sw0"]
    qmon = QueueSampler(sim, topo.switches[0].ports[port_idx], interval_ps=us(1))
    flows = incast_flows(range(N_SENDERS), receiver.host_id, FLOW_BYTES)
    launch_flows(topo, flows, env)
    sim.run(until=us(5000))
    assert collector.completed() == N_SENDERS, f"{cc}: incast did not finish"
    slowdowns = collector.slowdowns()
    # The first-RTT blast (every sender ships a full BDP window before any
    # feedback exists) is identical for all window CCs, so the interesting
    # number is the standing queue after notification has had time to act.
    return {
        "peak_queue_kb": qmon.series.max() / KB,
        "queue_after_50us_kb": qmon.series.max_after(us(50)) / KB,
        "p95_slowdown": float(np.percentile(slowdowns, 95)),
        "mean_slowdown": float(slowdowns.mean()),
    }


def main() -> None:
    print(f"{N_SENDERS}-to-1 incast, {FLOW_BYTES // MB} MB per sender, 100 Gb/s star.\n")
    rows = {
        "hpcc": run("hpcc"),
        "fncc (no LHCS)": run("fncc", lhcs_enabled=False),
        "fncc (LHCS)": run("fncc"),
    }
    print(
        f"{'scheme':>16} {'first-RTT peak':>15} {'standing queue':>15} "
        f"{'p95 slowdown':>13}"
    )
    for name, r in rows.items():
        print(
            f"{name:>16} {r['peak_queue_kb']:12.1f} KB "
            f"{r['queue_after_50us_kb']:12.1f} KB {r['p95_slowdown']:13.2f}"
        )
    print(
        "\nThe first-RTT blast is feedback-free and identical everywhere;"
        "\nonce ACKs carry N, LHCS drops the standing queue well below both"
        "\nHPCC and FNCC-without-LHCS (the Fig. 13c/d effect)."
    )


if __name__ == "__main__":
    main()
