#!/usr/bin/env python
"""Large-scale FCT study on a fat-tree (the §5.5 experiment, scaled).

Runs WebSearch-distributed Poisson traffic at 50% load on a k=4 fat-tree
under DCQCN, HPCC and FNCC, and prints the Fig. 14-style slowdown table
plus the headline comparisons.  Use --flows / --k / --scale to go bigger
(k=8 with scale=1.0 is the paper's full configuration — slow in pure
Python, see DESIGN.md).

Run:  python examples/fattree_fct.py [--flows 200] [--k 4] [--scale 0.1]
"""

import argparse

from repro.experiments.fct_experiment import compare_ccs, format_panel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--load", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workload", choices=("websearch", "hadoop"), default="websearch"
    )
    args = parser.parse_args()

    print(
        f"{args.workload} @ {args.load:.0%} load, k={args.k} fat-tree, "
        f"{args.flows} flows, size scale {args.scale}\n"
    )
    results = compare_ccs(
        ("dcqcn", "hpcc", "fncc"),
        workload=args.workload,
        k=args.k,
        load=args.load,
        n_flows=args.flows,
        scale=args.scale,
        seed=args.seed,
    )
    for col in ("average", "p95", "p99"):
        print(format_panel(results, col, f"FCT slowdown ({col})"))
        print()
    for cc, r in results.items():
        agg = r.table.aggregate("p95")
        print(f"{cc:>7}: completed {r.completed()}/{r.n_flows}, overall p95 slowdown {agg:.2f}")


if __name__ == "__main__":
    main()
