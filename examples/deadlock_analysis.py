#!/usr/bin/env python
"""PFC deadlock analysis — why Observation 2 chooses spanning trees.

The paper's motivation (§2.3) warns that PFC pauses can cascade into
deadlocks.  A deadlock needs a *cyclic buffer dependency* (CBD): flows
whose paused buffers wait on each other in a ring.  This example:

1. shows the textbook 3-flow ring deadlock,
2. verifies the repository's fat-tree ECMP routing is CBD-free
   (up-down routing never turns downward-then-up), and
3. verifies spanning-tree routing keeps a random Jellyfish fabric CBD-free
   — the TCP-Bolt property the paper leans on,
4. runs the PFC-*storm* companion pathology live: a wedged NIC sprays
   stuck-XOFF at its ToR and stalls an innocent bystander flow until the
   SONiC-style watchdog (repro.net.switch.arm_watchdog) isolates the
   stormed queue.

Run:  python examples/deadlock_analysis.py
"""

from repro.net.pfc_analysis import (
    all_pairs_paths,
    find_deadlock_cycles,
    routing_is_deadlock_free,
    run_storm_isolation,
)
from repro.units import us
from repro.sim.engine import Simulator
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish


def main() -> None:
    print("1) textbook ring: three flows chasing each other")
    ring_paths = [
        ["hostA", "sw0", "sw1", "sw2", "hostB"],
        ["hostC", "sw1", "sw2", "sw0", "hostD"],
        ["hostE", "sw2", "sw0", "sw1", "hostF"],
    ]
    cycles = find_deadlock_cycles(ring_paths)
    print(f"   deadlock-free: {routing_is_deadlock_free(ring_paths)}")
    print(f"   cyclic buffer dependencies found: {len(cycles)}")
    print(f"   example cycle: {' -> '.join(str(b) for b in cycles[0])}")

    print("\n2) k=4 fat-tree with symmetric ECMP (all 240 host pairs)")
    ft = fattree(Simulator(), k=4)
    ft_paths = all_pairs_paths(ft)
    print(f"   paths traced: {len(ft_paths)}")
    print(f"   deadlock-free: {routing_is_deadlock_free(ft_paths)}")

    print("\n3) random Jellyfish with multiple-spanning-tree routing")
    from repro.net.pfc_analysis import all_pairs_paths_with_tree_classes

    jf = jellyfish(Simulator(), n_switches=10, switch_degree=4, hosts_per_switch=1)
    jf_paths, jf_classes = all_pairs_paths_with_tree_classes(jf)
    shared = routing_is_deadlock_free(jf_paths)
    per_tree = routing_is_deadlock_free(jf_paths, jf_classes)
    print(f"   paths traced: {len(jf_paths)} over {jf.n_spanning_trees} trees")
    print(f"   all trees in ONE lossless class: deadlock-free = {shared}")
    print(f"   one PFC class PER tree (TCP-Bolt): deadlock-free = {per_tree}")

    print(
        "\nA single tree cannot close a buffer cycle, but several trees"
        "\nsharing one lossless class can — which is why TCP-Bolt (and"
        "\nFNCC's Observation 2 by citation) gives each tree its own"
        "\npriority class."
    )

    print("\n4) PFC storm: wedged NIC vs the per-queue watchdog (k=4 fat-tree)")
    for armed in (False, True):
        r = run_storm_isolation(watchdog=armed)
        innocent = (
            f"{r.innocent_fct_ps / us(1):.1f} us"
            if r.innocent_fct_ps is not None
            else "NEVER (victimized)"
        )
        victim = "flow-failed (graceful)" if r.victim_failed else "hung"
        print(f"   watchdog {'ON ' if armed else 'OFF'}: innocent flow FCT = {innocent};"
              f" victim flow = {victim}")
        if r.wd_state:
            print(
                f"      storms detected={r.wd_state['storms_detected']}"
                f" pauses absorbed={r.wd_state['pauses_ignored']}"
                f" frames dropped={r.wd_state['pkts_dropped']}"
            )

    print(
        "\nDeadlock needs a buffer *cycle*; a storm needs only one stuck"
        "\nqueue.  Routing discipline prevents the former, the per-queue"
        "\nwatchdog contains the latter — the two guards are orthogonal."
    )


if __name__ == "__main__":
    main()
