#!/usr/bin/env python
"""Generate the event-tie ordering-hazard report (DESIGN.md §4/§9).

Runs the named harness scenarios under the event-tie sanitizer
(``REPRO_SANITIZE=tie``) and writes one merged tie report per scenario to
``benchmarks/TIE_REPORT.json`` — the artifact the topology-partitioned
sharded engine (ROADMAP) consumes as its ordering-hazard map.  Each site
pair names the callback popped and the same-timestamp callback left
pending, as ``module:qualname``; a pair that appears here is a dispatch
order the engine currently resolves by insertion sequence alone, i.e. an
order a sharded engine must either prove commutative or synchronize.

The default scenario set covers the three traffic regimes: the paper's
websearch FCT workload (``fig14_websearch``), the PFC pause/resume storm
(``pause_storm``), and a load-balancer matrix slice (``lbmatrix``).

Usage::

    python tools/tie_report.py                     # default set -> benchmarks/
    python tools/tie_report.py --scenario pause_storm --out /tmp/ties.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "TIE_REPORT.json"
DEFAULT_SCENARIOS = ("fig14_websearch", "pause_storm", "lbmatrix")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        action="append",
        help=f"harness scenario (repeatable; default {list(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        help="keep only the N most frequent site pairs per scenario "
        "(0 = all; the count of dropped pairs is recorded either way)",
    )
    args = parser.parse_args(argv)

    # Construction-time default: every Simulator the scenarios build picks
    # this up (and spawn-started sweep workers would inherit it).
    os.environ["REPRO_SANITIZE"] = "tie"

    from benchmarks.perf_harness import SCENARIOS
    from repro.sim.sanitize import TIE_REPORT_SCHEMA, merge_tie_reports

    names = args.scenario or list(DEFAULT_SCENARIOS)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        parser.error(f"unknown scenario(s) {unknown}; known: {sorted(SCENARIOS)}")

    out = {"schema": TIE_REPORT_SCHEMA, "scenarios": {}}
    for name in names:
        print(f"tie-scan {name} ...", flush=True)
        sims, _topos = SCENARIOS[name]()
        report = merge_tie_reports(s.tie_report() for s in sims)
        if args.top and len(report["sites"]) > args.top:
            report["sites_dropped"] = len(report["sites"]) - args.top
            report["sites"] = report["sites"][: args.top]
        out["scenarios"][name] = report
        tied = report["tied_pops"]
        total = report["total_pops"]
        print(
            f"  {tied}/{total} pops tied "
            f"({tied / total:.2%}) across {report['site_pairs']} site pair(s)"
        )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
