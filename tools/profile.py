#!/usr/bin/env python
"""cProfile wrapper over the perf-harness scenarios.

Future perf PRs should start from data, not guesses: this runs any
:mod:`benchmarks.perf_harness` scenario under ``cProfile`` and prints the
top functions by *cumulative* and by *internal* (tottime) cost.

Usage::

    python tools/profile.py --scenario fig14_websearch --top 25
    python tools/profile.py --scenario fig9_micro --sort tottime
    python tools/profile.py --scenario sweep --jobs 1 --out fig14.pstats

Caveats baked into the output header:

* cProfile charges a fixed overhead per *function call*, so call-heavy
  code looks relatively more expensive than it is on the plain
  interpreter (CPython 3.11 calls are cheap).  Treat the ranking as a
  map, confirm any conclusion with an A/B wall-clock measurement
  (``tools/bench.py``) before optimizing.
* The profiled run uses the same fixed seeds as the bench harness, after
  one untimed warmup, so the profile corresponds to the recorded
  trajectory numbers.
* ``--trains off`` profiles the per-frame path (the same toggle as
  ``tools/bench.py --trains``).

Works both installed and from a bare checkout.
"""

from __future__ import annotations

import sys
from pathlib import Path

# This file is named profile.py, which would shadow the stdlib ``profile``
# module that ``cProfile`` imports internally — scrub the script directory
# (sys.path[0] when run as ``python tools/profile.py``) before touching
# the profiler machinery.
_HERE = str(Path(__file__).resolve().parent)
sys.path[:] = [p for p in sys.path if p not in ("", _HERE)]

import argparse  # noqa: E402
import cProfile  # noqa: E402
import pstats  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))


def main(argv=None) -> int:
    # Import late so --help works even on a broken checkout.
    from benchmarks.perf_harness import JOBS_SCENARIOS, OBS_SCENARIOS, SCENARIOS

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="fig14_websearch",
        choices=sorted(SCENARIOS),
        help="perf_harness scenario to profile",
    )
    parser.add_argument("--top", type=int, default=25, help="rows per view")
    parser.add_argument(
        "--sort",
        choices=("both", "cumulative", "tottime"),
        default="both",
        help="which ranking(s) to print",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-capable scenarios (subprocess "
        "work is invisible to cProfile; use --jobs 1 to see it in-process)",
    )
    parser.add_argument(
        "--trains",
        choices=("on", "off"),
        default="on",
        help="frame-train fast path toggle (default on, like the bench)",
    )
    parser.add_argument(
        "--no-warmup",
        action="store_true",
        help="skip the untimed warmup run (profiles cold-start costs too)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="attach a telemetry bundle (metrics registry + event tracer) "
        "to obs-capable scenarios and print its registry snapshot and top "
        "trace categories alongside the profile",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also dump raw pstats to this file (for snakeviz & friends)",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    import os

    import repro.sim.engine as engine

    # Module global for this process, env var for any spawned sweep
    # workers (they re-import the engine; its default reads REPRO_TRAINS).
    engine.TRAINS = args.trains == "on"
    os.environ["REPRO_TRAINS"] = args.trains

    fn = SCENARIOS[args.scenario]
    kwargs = {"jobs": args.jobs} if args.scenario in JOBS_SCENARIOS else {}
    bundle = None
    if args.obs:
        if args.scenario not in OBS_SCENARIOS:
            parser.error(
                f"--obs: {args.scenario} takes no obs bundle (capable: "
                f"{sorted(OBS_SCENARIOS)})"
            )
        from benchmarks.perf_harness import make_obs

        # categories=None: every trace category, including the per-ack
        # ``cc`` hook — a profile wants the full event picture, and its
        # wall-clock is already distorted by cProfile anyway.
        bundle = kwargs["obs"] = make_obs(args.scenario, categories=None)
    if not args.no_warmup:
        fn(**kwargs)  # imports, routing tables, allocator steady state

    prof = cProfile.Profile()
    prof.enable()
    fn(**kwargs)
    prof.disable()

    print(
        f"# scenario={args.scenario} trains={args.trains} jobs={args.jobs}\n"
        "# NOTE: cProfile inflates per-call overhead; confirm findings with\n"
        "# tools/bench.py wall-clock A/Bs before optimizing.\n"
    )
    views = (
        ("cumulative", "tottime")
        if args.sort == "both"
        else (args.sort,)
    )
    stats = pstats.Stats(prof)
    for view in views:
        print(f"== top {args.top} by {view} ==")
        stats.sort_stats(view).print_stats(args.top)
    if args.out is not None:
        stats.dump_stats(args.out)
        print(f"raw pstats written to {args.out}")
    if bundle is not None:
        import json

        print("== registry snapshot (profiled run) ==")
        print(json.dumps(bundle.snapshot(), indent=2, sort_keys=True))
        if bundle.tracer is not None:
            print("== top trace categories ==")
            for cat, n in bundle.tracer.top_categories():
                print(f"  {cat:>8}: {n}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
