"""Repo tooling namespace.  Packaged (pyproject packages.find includes
``tools*``) so the ``fncc-lint`` console script can live here alongside the
un-packaged utility scripts (bench.py, tie_report.py) that are run by path.
"""
