#!/usr/bin/env python
"""Hot-path perf bench CLI.

Runs the fixed scenarios from :mod:`benchmarks.perf_harness`, appends one
entry to the ``BENCH_hotpath.json`` trajectory, and prints the speedup of
this run against the recorded baseline (the first entry, or the entry
tagged ``"label": "baseline"``).

Usage::

    python tools/bench.py                 # full scenario set, 3 repeats
    python tools/bench.py --quick         # CI smoke: fig9 + pause_storm
    python tools/bench.py --scenario fig14_websearch --repeats 5
    python tools/bench.py --label my-change
    python tools/bench.py --check         # gate: newest vs previous entry

``--check`` measures nothing: it reads the trajectory and exits non-zero
when the newest entry regresses more than ``--threshold`` (default 15%)
in wall time against the most recent previous entry **with the same
``jobs`` value** (a 1-job baseline vs an 8-job entry is parallelism, not
a regression signal) on any scenario both entries measured.  An empty or
single-entry trajectory — or no prior entry with matching jobs — is a
clean no-op (exit 0 with a message — there is nothing to compare yet);
two comparable entries with no scenario in common are an error (exit 2 —
the gate would otherwise pass vacuously).  CI runs it after the
``--quick`` smoke append.

``--jobs N`` fans the sweep-capable scenarios (currently ``sweep``) over
N worker processes via :class:`repro.exec.SweepExecutor`; every entry
records ``jobs`` and ``cpu_count`` so speedup claims carry their
provenance.

``--backend {packet,flow,hybrid}`` selects the simulation backend for the
backend-capable scenarios (``paper_scale``, ``million_flows``,
``million_flows_quick``); entries record a ``backend`` provenance field
and ``--check``/speedup baselines only compare matching backends (like
``jobs``/``trains``).  The ≥10x hybrid-vs-packet claim is read off two
explicitly labelled back-to-back entries::

    python tools/bench.py --scenario paper_scale --backend packet --repeats 1
    python tools/bench.py --scenario paper_scale --backend hybrid --repeats 1

``--trains off`` disables the frame-train fast path (byte-identical
results, per-frame execution) for A/B measurement; entries record the
mode and ``--check`` only compares entries with matching ``trains`` (like
``jobs``).  ``--ab-trains`` measures the selected scenarios under *both*
modes in one process and fails (exit 1) when trains-on is slower than
trains-off beyond ``--threshold`` on any scenario — the CI gate that keeps
the fast path from ever costing wall-clock.  (Semantic equivalence of the
two modes is pinned separately by tests/property/test_trains.py.)

``--shards N`` runs the shard-capable scenarios (``shard_scale``) on the
topology-partitioned conservative-sync engine (DESIGN.md §11) with N
shards; ``--shards 1`` (the default) is the serial engine.  Results are
byte-identical either way (pinned by tests/shard/test_identity.py), so
the wall ratio between a ``--shards 1`` and a ``--shards N`` entry is
pure engine overhead/parallelism.  Entries record ``shards`` next to
``cpu_count`` and ``--check``/speedup baselines only compare matching
shard counts: on a 1-core recorder an N-shard entry measures protocol
overhead, not speedup, and the provenance pair keeps that honest.
``--ab-shards`` runs the cell serial AND N-shard (default 2) in paired
rounds, asserts byte-identity of the FCT + PortStats fingerprints, and
fails (exit 1) when the in-process sharded wall exceeds 2x(1+threshold)
serial on the quietest round — within-2x total compute is the condition
for the ≥2x projected speedup at 4 shards on a 4-core machine.

``--sanitize tie,pool`` runs every scenario under the named runtime
sanitizers (``REPRO_SANITIZE``; DESIGN.md §9 — debug-only, observation-
only).  Entries record a ``sanitize`` provenance field (``"off"`` when
none) and ``--check``/speedup baselines only compare matching sanitize
modes, exactly like ``jobs``/``trains``/``backend`` — a sanitized wall
time is never a regression signal against an unsanitized one.
``--ab-sanitize`` measures the selected scenarios with sanitizers off AND
``tie,pool`` in one process and fails (exit 1) when the sanitized run is
slower beyond ``--threshold`` (CI gates at the default 15%) — the ceiling
that keeps the sanitizers cheap enough to actually get used.

Entry schema (one JSON object per run)::

    timestamp, git_rev, python, label    provenance
    repeats, jobs, cpu_count, trains     measurement parameters
    sanitize                             runtime sanitizers ("off" or modes)
    shards                               engine partition count (1 = serial)
    scenarios: {name: {
        wall_s,            # MEDIAN wall seconds over repeats
        wall_min_s,        # MIN over repeats — the metric --check gates
                           # on (noise spikes slow a repeat, never speed
                           # one up, so the min is the robust floor)
        events, events_per_sec,
        frame_hops, frame_hops_per_sec,  # simulated-work throughput
    }}
    speedup_vs_baseline: {name: ratio}   # informational, median-based

Works both installed (``pip install -e .``) and from a bare checkout (it
adds ``src/`` and the repo root to ``sys.path`` itself).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from benchmarks.perf_harness import (  # noqa: E402
    BACKEND_SCENARIOS,
    DEFAULT_SCENARIOS,
    JOBS_SCENARIOS,
    OBS_AB_SCENARIOS,
    OBS_SCENARIOS,
    QUICK_SCENARIOS,
    SCENARIOS,
    SHARDS_SCENARIOS,
    measure_all,
    speedup,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_hotpath.json"


def git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                check=True,
            ).stdout.strip()
        )
    except Exception:  # pragma: no cover - bare tarball checkouts
        return "unknown"


def load_trajectory(path: Path) -> list:
    if path.exists():
        return json.loads(path.read_text())
    return []


def find_baseline(
    trajectory: list,
    jobs: int = 1,
    trains: str = "on",
    backend: str = "default",
    sanitize: str = "off",
    shards: int = 1,
) -> dict:
    """The speedup reference: the entry tagged ``"label": "baseline"``, else
    the oldest entry — considering only entries measured with the same
    ``jobs`` value, ``trains`` mode, ``backend``, ``sanitize`` modes and
    ``shards`` count.  Comparing wall times across worker counts would
    report parallelism as hot-path speedup, across train modes would report
    the fast path as history, across backends would report the fluid tier
    as a packet-engine win, across sanitize modes would report debug
    instrumentation as a regression, and across shard counts would report
    the partitioned engine's sync overhead (or its parallelism, on a
    multi-core recorder) as a hot-path delta (the same rules ``--check``
    enforces)."""
    candidates = [
        e
        for e in trajectory
        if entry_jobs(e) == jobs
        and entry_trains(e) == trains
        and entry_backend(e) == backend
        and entry_sanitize(e) == sanitize
        and entry_shards(e) == shards
    ]
    for entry in candidates:
        if entry.get("label") == "baseline":
            return entry
    return candidates[0] if candidates else {}


def entry_jobs(entry: dict) -> int:
    """The worker count an entry was measured with (pre-provenance entries
    recorded no ``jobs`` key and were all serial)."""
    return int(entry.get("jobs", 1))


def entry_trains(entry: dict) -> str:
    """The frame-train mode an entry was measured with.  Entries predating
    the toggle count as ``"on"``: trains are on by default, and gating a
    new trains-on entry against the pre-train per-frame engine is exactly
    the cross-PR regression comparison the gate exists for."""
    return str(entry.get("trains", "on"))


def entry_backend(entry: dict) -> str:
    """The simulation backend an entry was measured with.  ``"default"``
    means no ``--backend`` override: every scenario ran its own default
    (packet for the classic set and ``paper_scale``, hybrid for the
    ``million_flows`` pair).  A hybrid ``paper_scale`` entry must never be
    gated against — or used as the speedup baseline for — a packet one;
    the ≥10x co-simulation ratio is read off *explicitly labelled*
    back-to-back entries instead."""
    return str(entry.get("backend", "default"))


def entry_sanitize(entry: dict) -> str:
    """The runtime-sanitizer modes an entry was measured under, normalized
    to ``"off"`` or a sorted comma-join (``"pool,tie"``).  Entries predating
    the sanitizers ran without them."""
    return norm_sanitize(entry.get("sanitize", "off"))


def entry_shards(entry: dict) -> int:
    """The shard count an entry was measured with (``1`` = the serial
    engine; entries predating the partitioned engine were all serial).
    Read alongside ``cpu_count``: a ``shards=4`` entry recorded on a
    1-core machine measures protocol overhead, not speedup."""
    return int(entry.get("shards", 1))


def norm_sanitize(spec: str) -> str:
    """Canonical form of a sanitize spec: ``"off"`` for none, else the
    sorted comma-join — so ``"tie,pool"`` and ``"pool, tie"`` compare equal
    in provenance partitioning."""
    from repro.sim.sanitize import parse_sanitize

    modes = parse_sanitize(spec if spec != "off" else "")
    return ",".join(sorted(modes)) if modes else "off"


def check_regression(trajectory: list, threshold: float = 0.15) -> int:
    """Compare the newest trajectory entry against its baseline.

    The baseline is the most recent *previous* entry with the same
    ``jobs`` value — wall times measured at different worker counts are
    parallelism comparisons, not regression signals, so mixed-jobs pairs
    are never gated against each other.

    Returns an exit code: 0 when nothing regressed (or there is nothing to
    compare yet), 1 when at least one shared scenario regressed beyond
    ``threshold``, 2 when the two compared entries share no scenarios (the
    gate cannot decide anything — that must not pass silently).

    Only scenarios present in both entries are compared (a ``--quick``
    entry measures the smoke subset against the full set of its
    predecessor).
    """
    if not trajectory:
        print(
            "check: trajectory is empty — run tools/bench.py (or --quick) "
            "to record a first entry"
        )
        return 0
    if len(trajectory) == 1:
        print(
            "check: only one trajectory entry "
            f"({trajectory[0].get('label') or trajectory[0].get('git_rev')}) "
            "— nothing to compare against yet"
        )
        return 0
    newest = trajectory[-1]
    jobs = entry_jobs(newest)
    trains = entry_trains(newest)
    backend = entry_backend(newest)
    sanitize = entry_sanitize(newest)
    shards = entry_shards(newest)
    prev = None
    prev_pos = -1
    for pos in range(len(trajectory) - 2, -1, -1):
        cand = trajectory[pos]
        if (
            entry_jobs(cand) == jobs
            and entry_trains(cand) == trains
            and entry_backend(cand) == backend
            and entry_sanitize(cand) == sanitize
            and entry_shards(cand) == shards
        ):
            prev = cand
            prev_pos = pos
            break
    if prev is None:
        print(
            f"check: no previous entry measured with jobs={jobs} "
            f"trains={trains} backend={backend} sanitize={sanitize} "
            f"shards={shards} "
            f"(newest: {newest.get('label') or newest.get('git_rev')}) — "
            "nothing comparable to gate against yet"
        )
        return 0
    prev_sc = prev.get("scenarios") or {}
    new_sc = newest.get("scenarios") or {}
    shared = sorted(set(prev_sc) & set(new_sc))
    if not shared:
        print(
            "check: the compared entries share no scenarios "
            f"({sorted(new_sc) or 'none'} vs {sorted(prev_sc) or 'none'}) — "
            "the gate cannot compare them; measure overlapping scenario sets"
        )
        return 2
    failures = 0
    print(
        f"check: entry #{len(trajectory)} ({newest.get('label') or newest.get('git_rev')}) "
        f"vs #{prev_pos + 1} ({prev.get('label') or prev.get('git_rev')}), "
        f"jobs={jobs}, trains={trains}, backend={backend}, "
        f"sanitize={sanitize}, shards={shards}, "
        f"threshold +{threshold:.0%} on wall_min_s"
    )
    for name in shared:
        # Gate on the min over repeats, not the median: robust to noisy-
        # neighbor spikes on shared runners (a spike can slow one repeat,
        # never speed one up), so CI flakes don't masquerade as perf
        # regressions.  Entries keep both (see the schema comment above).
        old_wall = prev_sc[name].get("wall_min_s") or prev_sc[name].get("wall_s")
        new_wall = new_sc[name].get("wall_min_s") or new_sc[name].get("wall_s")
        if not old_wall or not new_wall:
            continue
        ratio = new_wall / old_wall
        verdict = "FAIL" if ratio > 1 + threshold else "ok"
        if verdict == "FAIL":
            failures += 1
        print(
            f"  {name:>18}: {old_wall:.3f}s -> {new_wall:.3f}s "
            f"({ratio - 1:+.1%}) {verdict}"
        )
    if failures:
        print(f"check: {failures} scenario(s) regressed beyond threshold")
        return 1
    return 0


def main(argv=None) -> int:
    # REPRO_SANITIZE is mutated during measurement (it is how spawned
    # sweep workers inherit the sanitize mode) but must not leak past the
    # call: a later in-process consumer — e.g. the rest of a pytest
    # session — would silently construct sanitized Simulators.
    prev = os.environ.get("REPRO_SANITIZE")
    try:
        return _main(argv)
    finally:
        if prev is None:
            os.environ.pop("REPRO_SANITIZE", None)
        else:
            os.environ["REPRO_SANITIZE"] = prev


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fig9 microbench + pause_storm, 3 repeats",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default="", help="tag for this entry")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print only"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="no measurement: fail if the newest trajectory entry regresses "
        "vs the previous entry on any shared scenario",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="--check regression tolerance (fraction of wall time)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-capable scenarios (the 'sweep' "
        "scenario); recorded in the trajectory entry so --check only "
        "compares entries with matching jobs",
    )
    parser.add_argument(
        "--lookahead",
        type=int,
        default=0,
        help="override Port.commit_lookahead for this run (0 = default; "
        "a huge value reproduces the eager commit-everything port, for "
        "apples-to-apples pause-cost comparisons on one machine)",
    )
    parser.add_argument(
        "--backend",
        choices=("packet", "flow", "hybrid"),
        default="",
        help="simulation backend for the backend-capable scenarios "
        f"({sorted(BACKEND_SCENARIOS)}); unset keeps each scenario's "
        "default (packet for paper_scale — the ground-truth baseline — "
        "hybrid for the million_flows pair); recorded in the entry so "
        "--check only compares matching backends",
    )
    parser.add_argument(
        "--trains",
        choices=("on", "off"),
        default="on",
        help="frame-train fast path toggle (byte-identical results either "
        "way); recorded in the entry so --check only compares matching "
        "modes",
    )
    parser.add_argument(
        "--ab-trains",
        action="store_true",
        help="measure the selected scenarios under trains off AND on in "
        "one process, print the A/B, and exit 1 if trains-on is slower "
        "than trains-off beyond --threshold on any scenario (never "
        "writes the trajectory)",
    )
    parser.add_argument(
        "--sanitize",
        default=os.environ.get("REPRO_SANITIZE", "off") or "off",
        help="runtime sanitizers for every measured scenario "
        "('off', 'tie', 'pool', or 'tie,pool'; default from REPRO_SANITIZE); "
        "recorded in the entry so --check only compares matching modes",
    )
    parser.add_argument(
        "--ab-sanitize",
        action="store_true",
        help="measure the selected scenarios with sanitizers off AND "
        "tie,pool in one process, print the A/B, and exit 1 if the "
        "sanitized run is slower beyond --threshold (CI gates the debug-"
        "only overhead at the default 15%%; never writes the trajectory)",
    )
    parser.add_argument(
        "--ab-obs",
        action="store_true",
        help="measure the obs-capable scenarios with the telemetry bundle "
        f"(registry + tracer) off AND on ({sorted(OBS_SCENARIOS)}; default "
        f"set {list(OBS_AB_SCENARIOS)}), print the A/B, and exit 1 if "
        "obs-on is slower beyond --threshold on any scenario (target is "
        "<=2%; the gate reuses the wall threshold for CI-noise headroom; "
        "never writes the trajectory)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="topology shards for the shard-capable scenarios "
        f"({sorted(SHARDS_SCENARIOS)}); 1 = the serial engine, N>1 = the "
        "partitioned conservative-sync engine (byte-identical results — "
        "DESIGN.md §11); recorded with cpu_count in the entry so --check "
        "only compares matching shard counts and speedup claims carry "
        "their core-count provenance",
    )
    parser.add_argument(
        "--ab-shards",
        action="store_true",
        help="run the shard_scale cell serial AND partitioned (--shards N, "
        "default 2) in paired rounds; exit 1 if the FCT or merged "
        "PortStats fingerprints differ (byte-identity is the sharded "
        "engine's correctness bar — DESIGN.md §11) or the in-process "
        "sharded run's protocol overhead exceeds --threshold over the "
        "per-shard compute on the quietest round (never writes the "
        "trajectory)",
    )
    parser.add_argument(
        "--ab-faults",
        action="store_true",
        help="measure the §5.5 FCT cell with the fault layer off "
        "(faults=None) AND armed with the no-op FaultPlan, in paired "
        "rounds; exit 1 if the FCT or PortStats fingerprints differ (the "
        "no-op plan must be byte-identical — DESIGN.md §10 zero-"
        "perturbation obligation) or the armed run is slower beyond "
        "--threshold on the quietest round (target is <=2%%; the gate "
        "reuses the wall threshold for CI-noise headroom; never writes "
        "the trajectory)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="attach a live progress reporter (wall-clock heartbeats with "
        "events/s and ETA on stderr) to the obs-capable scenarios "
        f"({sorted(OBS_SCENARIOS)}); the entry records obs=true provenance",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1 (1 = serial engine)")
    if args.lookahead < 0:
        parser.error("--lookahead must be >= 1 (0 = keep the port default)")
    if args.lookahead:
        import repro.net.port as _port

        _port.COMMIT_LOOKAHEAD = args.lookahead

    import repro.sim.engine as _engine

    def _set_trains(mode: str) -> None:
        # Both the in-process global AND the env var: spawn-started sweep
        # workers (--jobs > 1) re-import repro.sim.engine rather than
        # inheriting this process's module state, and the engine default
        # reads REPRO_TRAINS at import.
        _engine.TRAINS = mode == "on"
        os.environ["REPRO_TRAINS"] = mode

    _set_trains(args.trains)

    def _set_sanitize(spec: str) -> None:
        # Env var only: the engine reads REPRO_SANITIZE at *construction*
        # time (not import), and spawn-started sweep workers inherit the
        # environment.
        if spec == "off":
            os.environ.pop("REPRO_SANITIZE", None)
        else:
            os.environ["REPRO_SANITIZE"] = spec

    try:
        sanitize = norm_sanitize(args.sanitize)
    except ValueError as exc:
        parser.error(str(exc))
    _set_sanitize(sanitize)

    if args.check:
        return check_regression(load_trajectory(args.out), args.threshold)

    if args.ab_trains:
        names = list(QUICK_SCENARIOS) if args.quick else (
            args.scenario or list(SCENARIOS)
        )
        repeats = 3 if args.quick else args.repeats
        print(f"A/B trains off vs on: {names} (repeats={repeats}) ...", flush=True)
        walls = {}
        for mode in ("off", "on"):
            _set_trains(mode)
            walls[mode] = measure_all(names, repeats=repeats, jobs=args.jobs)
        failures = 0
        print(f"{'scenario':>18} {'off(s)':>9} {'on(s)':>9} {'on/off':>8}")
        for name in names:
            off = walls["off"][name].get("wall_min_s") or walls["off"][name]["wall_s"]
            on = walls["on"][name].get("wall_min_s") or walls["on"][name]["wall_s"]
            ratio = on / off
            verdict = "FAIL" if ratio > 1 + args.threshold else "ok"
            if verdict == "FAIL":
                failures += 1
            print(f"{name:>18} {off:9.3f} {on:9.3f} {ratio:8.2f} {verdict}")
        if failures:
            print(f"ab-trains: trains-on regressed on {failures} scenario(s)")
            return 1
        return 0

    if args.ab_sanitize:
        names = list(QUICK_SCENARIOS) if args.quick else (
            args.scenario or list(SCENARIOS)
        )
        # More rounds than the other A/B gates: each round is ~1 s on the
        # quick set, and the min-vs-min comparison needs enough samples
        # that both modes land in a quiet window on a noisy runner.
        repeats = 7 if args.quick else args.repeats
        print(
            f"A/B sanitize off vs tie,pool: {names} (repeats={repeats}, "
            "interleaved) ...",
            flush=True,
        )
        # Machine-level drift on shared/CI runners (clock scaling, noisy
        # neighbours) swings wall times by >10% between windows — more
        # than the overhead being gated.  Two defences: (a) a discarded
        # warmup pass so neither mode pays cold-start costs, (b) paired
        # per-round ratios — off and on measured back to back so drift
        # hits both sides of each ratio — gated on the *minimum* round
        # ratio: a lower bound on the true overhead.  The semantics are
        # deliberately one-sided for a noisy runner: the gate fails only
        # when every round, including the quietest, shows >threshold
        # overhead — i.e. the overhead is provably too high.  A real
        # regression of the class this guards against (poisoning or tie
        # tracking accidentally going unconditional, ~2x a cycle) clears
        # the bar in every round; ambient ±10% container noise cannot
        # produce a false FAIL the way a median or mean estimator does.
        walls = {"off": {}, "pool,tie": {}}
        ratios = {}
        for rnd in range(repeats + 1):
            round_walls = {}
            for mode in ("off", "pool,tie"):
                _set_sanitize(mode)
                for name, m in measure_all(names, repeats=1, jobs=args.jobs).items():
                    w = m.get("wall_min_s") or m["wall_s"]
                    round_walls.setdefault(name, {})[mode] = w
            if rnd == 0:
                continue  # warmup pass: both modes run, nothing recorded
            for name, pair in round_walls.items():
                ratios.setdefault(name, []).append(pair["pool,tie"] / pair["off"])
                for mode, w in pair.items():
                    cur_w = walls[mode].get(name)
                    walls[mode][name] = w if cur_w is None else min(cur_w, w)
        _set_sanitize(sanitize)
        failures = 0
        print(f"{'scenario':>18} {'off(s)':>9} {'on(s)':>9} {'on/off':>8}")
        for name in names:
            off = walls["off"][name]
            on = walls["pool,tie"][name]
            ratio = min(ratios[name])
            verdict = "FAIL" if ratio > 1 + args.threshold else "ok"
            if verdict == "FAIL":
                failures += 1
            print(f"{name:>18} {off:9.3f} {on:9.3f} {ratio:8.2f} {verdict}")
        if failures:
            print(
                f"ab-sanitize: sanitizer overhead exceeded the gate on "
                f"{failures} scenario(s)"
            )
            return 1
        return 0

    if args.ab_obs:
        names = args.scenario or list(OBS_AB_SCENARIOS)
        bad = sorted(set(names) - OBS_SCENARIOS)
        if bad:
            parser.error(
                f"--ab-obs: {bad} take no obs bundle (capable: "
                f"{sorted(OBS_SCENARIOS)})"
            )
        repeats = 3 if args.quick else args.repeats
        print(f"A/B obs off vs on: {names} (repeats={repeats}) ...", flush=True)
        walls = {}
        for mode, with_obs in (("off", False), ("on", True)):
            walls[mode] = measure_all(
                names, repeats=repeats, jobs=args.jobs, backend=args.backend,
                obs=with_obs,
            )
        failures = 0
        print(f"{'scenario':>18} {'off(s)':>9} {'on(s)':>9} {'on/off':>8}")
        for name in names:
            off = walls["off"][name].get("wall_min_s") or walls["off"][name]["wall_s"]
            on = walls["on"][name].get("wall_min_s") or walls["on"][name]["wall_s"]
            ratio = on / off
            verdict = "FAIL" if ratio > 1 + args.threshold else "ok"
            if verdict == "FAIL":
                failures += 1
            print(f"{name:>18} {off:9.3f} {on:9.3f} {ratio:8.2f} {verdict}")
        if failures:
            print(f"ab-obs: telemetry overhead exceeded the gate on {failures} scenario(s)")
            return 1
        return 0

    if args.ab_shards:
        from benchmarks.perf_harness import SHARD_SCALE_KW
        from repro.experiments.fct_experiment import run_fct_experiment
        from repro.shard import run_sharded_fct
        from repro.shard.builders import portstats_rows

        n = max(2, args.shards)
        rounds = 3 if args.quick else max(3, args.repeats)
        print(
            f"A/B serial vs {n}-shard partitioned: shard_scale cell "
            f"(rounds={rounds}, paired) ...",
            flush=True,
        )

        def _rows13(rows) -> tuple:
            # All PortStats counters except the last column: train_frames
            # legitimately differs on the cut ports (a boundary hop cannot
            # fuse, by design — tests/shard/test_identity.py pins the
            # per-cut-port masking; the gate uses the simpler global drop).
            return tuple(tuple(r)[:-1] for r in rows)

        # Paired rounds (cf. --ab-faults): serial and sharded run back to
        # back so machine drift hits both sides of each ratio; the wall
        # gate reads the *minimum* round ratio.  Identity is absolute:
        # every round of every mode must reproduce the same fingerprints,
        # and sharded must equal serial byte for byte.  The wall bound is
        # 2x(1+threshold): in-process the N shards' event loops serialize
        # on one core, so the sharded wall is (sum of per-shard compute +
        # per-horizon sync); keeping it within 2x serial is exactly the
        # <=100%-overhead condition the >=2x-at-4-shards projection needs
        # (on >=N cores, wall ~ sharded/N for balanced partitions, so
        # projected speedup ~ N * serial/sharded).
        walls = {"serial": None, "sharded": None}
        fps = {}
        ratios = []
        for _ in range(rounds):
            round_walls = {}
            for mode in ("serial", "sharded"):
                t0 = time.perf_counter()
                if mode == "serial":
                    res = run_fct_experiment("fncc", **SHARD_SCALE_KW)
                    rows = sorted(
                        tuple(r)
                        for r in portstats_rows(
                            list(res.topo.hosts) + list(res.topo.switches)
                        )
                    )
                else:
                    res = run_sharded_fct("fncc", shards=n, **SHARD_SCALE_KW)
                    rows = res.portstats
                round_walls[mode] = time.perf_counter() - t0
                fp = (res.fct_fingerprint(), _rows13(rows))
                if mode not in fps:
                    fps[mode] = fp
                elif fps[mode] != fp:
                    print(f"ab-shards: mode {mode!r} is not run-to-run deterministic")
                    return 1
            ratios.append(round_walls["sharded"] / round_walls["serial"])
            for mode, w in round_walls.items():
                cur = walls[mode]
                walls[mode] = w if cur is None else min(cur, w)
        if fps["serial"] != fps["sharded"]:
            print(
                f"ab-shards: FAIL — the {n}-shard run diverged from the "
                "serial engine (FCT/PortStats fingerprints differ); the "
                "conservative-sync protocol is broken"
            )
            return 1
        ratio = min(ratios)
        bound = 2 * (1 + args.threshold)
        verdict = "FAIL" if ratio > bound else "ok"
        projected = n * walls["serial"] / walls["sharded"]
        print(
            f"  fingerprints: identical ({len(fps['serial'][0])} flows, "
            f"{len(fps['serial'][1])} port rows)"
        )
        print(
            f"  wall: serial {walls['serial']:.3f}s -> {n}-shard in-process "
            f"{walls['sharded']:.3f}s (min round ratio {ratio:.3f}, "
            f"bound {bound:.2f}) {verdict}"
        )
        print(
            f"  projection: ~{projected:.2f}x on >={n} cores "
            f"({n} x serial/sharded; this machine has {os.cpu_count()})"
        )
        if verdict == "FAIL":
            print(
                "ab-shards: partition/sync overhead exceeded the gate "
                "(sharded total compute must stay within 2x serial for the "
                ">=2x-at-4-shards projection to hold)"
            )
            return 1
        return 0

    if args.ab_faults:
        from repro.experiments.common import portstats_fingerprint
        from repro.experiments.fct_experiment import run_fct_experiment
        from repro.faults import FaultPlan

        repeats = 3 if args.quick else max(3, args.repeats)
        cell = dict(cc="fncc", n_flows=120, max_horizon_ms=20.0, seed=1)
        print(
            f"A/B faults off vs no-op plan: fct cell {cell} "
            f"(rounds={repeats}, paired) ...",
            flush=True,
        )
        # Paired rounds (cf. --ab-sanitize): off and armed run back to
        # back so machine drift hits both sides of each ratio; the wall
        # gate reads the *minimum* round ratio.  The byte-identity check
        # is absolute: every round of every mode must produce the same
        # FCT + PortStats fingerprints, and off must equal armed.
        walls = {"off": None, "noop": None}
        fps = {}
        ratios = []
        for _ in range(repeats):
            round_walls = {}
            for mode, faults in (("off", None), ("noop", FaultPlan.noop())):
                t0 = time.perf_counter()
                res = run_fct_experiment(faults=faults, **cell)
                round_walls[mode] = time.perf_counter() - t0
                fp = (res.fct_fingerprint(), portstats_fingerprint(res.topo))
                if mode not in fps:
                    fps[mode] = fp
                elif fps[mode] != fp:
                    print(f"ab-faults: mode {mode!r} is not run-to-run deterministic")
                    return 1
            ratios.append(round_walls["noop"] / round_walls["off"])
            for mode, w in round_walls.items():
                cur = walls[mode]
                walls[mode] = w if cur is None else min(cur, w)
        if fps["off"] != fps["noop"]:
            print(
                "ab-faults: FAIL — arming the no-op FaultPlan perturbed the "
                "run (FCT/PortStats fingerprints differ from faults=None)"
            )
            return 1
        ratio = min(ratios)
        verdict = "FAIL" if ratio > 1 + args.threshold else "ok"
        print(
            f"  fingerprints: identical ({len(fps['off'][0])} flows, "
            f"{len(fps['off'][1])} port rows)"
        )
        print(
            f"  wall: off {walls['off']:.3f}s -> armed {walls['noop']:.3f}s "
            f"(min round ratio {ratio:.3f}) {verdict}"
        )
        if verdict == "FAIL":
            print("ab-faults: no-op fault layer overhead exceeded the gate")
            return 1
        return 0

    if args.quick:
        names = list(QUICK_SCENARIOS)
        # 3 repeats keep --check's medians/minima meaningful on noisy CI
        # runners; fig9 + pause_storm are each well under a second on the
        # bounded-lookahead port, so this stays a smoke test.
        repeats = 3
    else:
        # The no-args default set excludes the minutes-scale scenarios
        # (paper_scale, million_flows) — name them via --scenario.
        names = args.scenario or list(DEFAULT_SCENARIOS)
        repeats = args.repeats

    # An entry is only a jobs=N measurement if a jobs-aware scenario was
    # actually measured; otherwise --jobs changed nothing and tagging the
    # entry with it would fragment --check's same-jobs comparison history.
    effective_jobs = args.jobs if any(n in JOBS_SCENARIOS for n in names) else 1
    if args.jobs != 1 and effective_jobs == 1:
        print(
            f"note: --jobs {args.jobs} has no effect on {names} (only "
            f"{sorted(JOBS_SCENARIOS)} honour it); recording entry as jobs=1"
        )

    # Same fragmentation rule for --backend: the flag only means something
    # when a backend-capable scenario was measured.
    effective_backend = (
        args.backend
        if args.backend and any(n in BACKEND_SCENARIOS for n in names)
        else "default"
    )
    if args.backend and effective_backend == "default":
        print(
            f"note: --backend {args.backend} has no effect on {names} (only "
            f"{sorted(BACKEND_SCENARIOS)} honour it); recording entry as "
            "backend=default"
        )

    # And for --shards: only a shard-capable scenario makes an entry a
    # shards=N measurement.
    effective_shards = (
        args.shards if any(n in SHARDS_SCENARIOS for n in names) else 1
    )
    if args.shards != 1 and effective_shards == 1:
        print(
            f"note: --shards {args.shards} has no effect on {names} (only "
            f"{sorted(SHARDS_SCENARIOS)} honour it); recording entry as "
            "shards=1"
        )

    print(
        f"measuring {names} (repeats={repeats}, jobs={effective_jobs}"
        + (f", backend={effective_backend}" if effective_backend != "default" else "")
        + (f", sanitize={sanitize}" if sanitize != "off" else "")
        + (f", shards={effective_shards}" if effective_shards != 1 else "")
        + ") ...",
        flush=True,
    )
    if args.progress and not any(n in OBS_SCENARIOS for n in names):
        print(
            f"note: --progress has no effect on {names} (only "
            f"{sorted(OBS_SCENARIOS)} honour it)"
        )
    metrics = measure_all(
        names, repeats=repeats, jobs=effective_jobs, backend=args.backend,
        shards=effective_shards, progress=args.progress,
    )

    trajectory = load_trajectory(args.out)
    baseline = find_baseline(
        trajectory,
        jobs=effective_jobs,
        trains=args.trains,
        backend=effective_backend,
        sanitize=sanitize,
        shards=effective_shards,
    )
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "label": args.label,
        "repeats": repeats,
        "jobs": effective_jobs,
        "cpu_count": os.cpu_count(),
        "trains": args.trains,
        "backend": effective_backend,
        "sanitize": sanitize,
        "shards": effective_shards,
        "scenarios": metrics,
    }
    if args.progress and any(n in OBS_SCENARIOS for n in names):
        # Provenance: these walls include the telemetry bundle (target
        # overhead <=2%, gated separately by --ab-obs).
        entry["obs"] = True
    if baseline:
        entry["speedup_vs_baseline"] = speedup(
            metrics, baseline.get("scenarios", {})
        )

    header = f"{'scenario':>18} {'wall(s)':>9} {'events':>9} {'ev/s':>10} {'hops/s':>10} {'speedup':>8}"
    print(header)
    for name, m in metrics.items():
        sp = entry.get("speedup_vs_baseline", {}).get(name)
        print(
            f"{name:>18} {m['wall_s']:9.3f} {m['events']:9d} "
            f"{m['events_per_sec']:10d} {m.get('frame_hops_per_sec', 0):10d} "
            f"{(f'{sp:.2f}x' if sp else '—'):>8}"
        )

    if not args.no_write:
        trajectory.append(entry)
        args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended entry #{len(trajectory)} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
