#!/usr/bin/env python
"""Hot-path perf bench CLI.

Runs the fixed scenarios from :mod:`benchmarks.perf_harness`, appends one
entry to the ``BENCH_hotpath.json`` trajectory, and prints the speedup of
this run against the recorded baseline (the first entry, or the entry
tagged ``"label": "baseline"``).

Usage::

    python tools/bench.py                 # full scenario set, 3 repeats
    python tools/bench.py --quick         # CI smoke: fig9 only, 1 repeat
    python tools/bench.py --scenario fig14_websearch --repeats 5
    python tools/bench.py --label my-change

Works both installed (``pip install -e .``) and from a bare checkout (it
adds ``src/`` and the repo root to ``sys.path`` itself).
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT / "src", REPO_ROOT):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from benchmarks.perf_harness import (  # noqa: E402
    QUICK_SCENARIOS,
    SCENARIOS,
    measure_all,
    speedup,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_hotpath.json"


def git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                check=True,
            ).stdout.strip()
        )
    except Exception:  # pragma: no cover - bare tarball checkouts
        return "unknown"


def load_trajectory(path: Path) -> list:
    if path.exists():
        return json.loads(path.read_text())
    return []


def find_baseline(trajectory: list) -> dict:
    for entry in trajectory:
        if entry.get("label") == "baseline":
            return entry
    return trajectory[0] if trajectory else {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fig9 microbench only, 1 repeat",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default="", help="tag for this entry")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print only"
    )
    args = parser.parse_args(argv)

    if args.quick:
        names = list(QUICK_SCENARIOS)
        repeats = 1
    else:
        names = args.scenario or list(SCENARIOS)
        repeats = args.repeats

    print(f"measuring {names} (repeats={repeats}) ...", flush=True)
    metrics = measure_all(names, repeats=repeats)

    trajectory = load_trajectory(args.out)
    baseline = find_baseline(trajectory)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "label": args.label,
        "repeats": repeats,
        "scenarios": metrics,
    }
    if baseline:
        entry["speedup_vs_baseline"] = speedup(
            metrics, baseline.get("scenarios", {})
        )

    header = f"{'scenario':>18} {'wall(s)':>9} {'events':>9} {'ev/s':>10} {'hops/s':>10} {'speedup':>8}"
    print(header)
    for name, m in metrics.items():
        sp = entry.get("speedup_vs_baseline", {}).get(name)
        print(
            f"{name:>18} {m['wall_s']:9.3f} {m['events']:9d} "
            f"{m['events_per_sec']:10d} {m.get('frame_hops_per_sec', 0):10d} "
            f"{(f'{sp:.2f}x' if sp else '—'):>8}"
        )

    if not args.no_write:
        trajectory.append(entry)
        args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"appended entry #{len(trajectory)} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
