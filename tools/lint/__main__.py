"""``python -m tools.lint`` — same as the ``fncc-lint`` console script."""

from tools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
