"""fncc-lint: invariant-enforcing static analysis for this repo.

DESIGN.md documents load-bearing invariants that plain Python cannot
express — determinism (§4), hot-path state ownership (§2), spec
picklability (§5), observability discipline (§8).  This package turns them
into machine-checked AST rules (DESIGN.md §9 is the catalog).  Run as
``fncc-lint`` (a ``[project.scripts]`` entry) or ``python -m tools.lint``.

Layout:

* :mod:`tools.lint.core` — finding/rule registry, suppression comments,
  per-file analysis context.
* :mod:`tools.lint.config` — ``[tool.fncc-lint]`` loading (tomllib when
  available, a vendored mini-parser for the 3.9/3.10 floor).
* :mod:`tools.lint.baseline` — the checked-in findings baseline: existing
  debt fails CI only when it grows.
* ``rules_*`` modules — the D/P/H/O rule families.  Importing this package
  registers them all.
"""

from tools.lint import (  # noqa: F401  (import-for-registration)
    rules_determinism,
    rules_hotpath,
    rules_obs,
    rules_pickle,
    rules_shard,
)
from tools.lint.core import RULES, Finding, lint_paths, lint_source  # noqa: F401
