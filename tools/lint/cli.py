"""fncc-lint command line.

Modes::

    fncc-lint                      # lint configured paths vs the baseline
    fncc-lint src/repro/net        # explicit paths (still vs baseline)
    fncc-lint --check-baseline     # CI gate: also report shrinkable debt
    fncc-lint --update-baseline    # rewrite the baseline to current state
    fncc-lint --no-baseline        # raw findings, baseline ignored
    fncc-lint --list-rules         # rule catalog with DESIGN.md references

Exit status: 0 clean (or fully baselined), 1 findings the baseline does not
cover, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from tools.lint import RULES  # imports register all rule modules
from tools.lint.baseline import (
    compare,
    count_findings,
    finding_key,
    load_baseline,
    save_baseline,
)
from tools.lint.config import load_config
from tools.lint.core import Finding, iter_py_files, lint_source


def find_repo_root(start: str) -> str:
    """Walk up to the directory holding pyproject.toml (falls back to cwd)."""
    d = os.path.abspath(start)
    while True:
        if os.path.isfile(os.path.join(d, "pyproject.toml")):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return os.path.abspath(start)
        d = parent


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="fncc-lint",
        description="invariant-enforcing static analysis (DESIGN.md §9)",
    )
    ap.add_argument("paths", nargs="*", help="repo-relative paths (default: config)")
    ap.add_argument("--root", default=None, help="repo root (default: auto-detect)")
    ap.add_argument(
        "--rules", default=None, help="comma-separated rule subset (default: all)"
    )
    ap.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI gate: fail on unbaselined findings, report shrinkable debt",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file to match current findings",
    )
    ap.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    ap.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            _, summary, design_ref = RULES[name]
            print(f"{name}  [{design_ref}]  {summary}")
        return 0

    root = args.root or find_repo_root(os.getcwd())
    cfg = load_config(root)
    paths = args.paths or cfg.get("paths", ["src/repro"])
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"fncc-lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    findings: List[Finding] = []
    sources: Dict[str, List[str]] = {}
    for abspath, relpath in iter_py_files(root, paths):
        with open(abspath, "r", encoding="utf-8") as fh:
            text = fh.read()
        sources[relpath] = text.splitlines()
        try:
            findings.extend(lint_source(text, relpath, cfg, rules))
        except SyntaxError as exc:
            print(f"fncc-lint: {relpath}: does not parse: {exc.msg}", file=sys.stderr)
            return 2

    baseline_path = os.path.join(root, cfg.get("baseline", "tools/lint/baseline.json"))
    current = count_findings(findings, sources)

    if args.update_baseline:
        save_baseline(baseline_path, current)
        print(
            f"fncc-lint: baseline updated: {len(current)} key(s), "
            f"{sum(current.values())} finding(s) -> {baseline_path}"
        )
        return 0

    if args.no_baseline:
        for f in findings:
            print(f.format())
        print(f"fncc-lint: {len(findings)} finding(s) (baseline ignored)")
        return 1 if findings else 0

    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"fncc-lint: {exc}", file=sys.stderr)
        return 2
    regressions, fixed = compare(current, baseline)

    if regressions:
        # Print the actual findings behind unbaselined keys, so the console
        # output is actionable without decoding baseline keys.
        covered: Dict[str, int] = dict(baseline)
        for f in findings:
            lines = sources.get(f.path, ())
            text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
            key = finding_key(f, text)
            if covered.get(key, 0) > 0:
                covered[key] -= 1  # this occurrence is baselined debt
                continue
            print(f.format())
        print(
            f"fncc-lint: FAIL — {len(regressions)} finding key(s) exceed the "
            f"baseline ({baseline_path})"
        )
        print(
            "fncc-lint: fix the findings, add a justified inline suppression "
            "(# fncc-lint: allow[RULE] why-it-is-safe), or — for pre-existing "
            "debt only — run --update-baseline"
        )
        return 1

    if args.check_baseline and fixed:
        print("fncc-lint: baseline debt shrank (run --update-baseline to ratchet):")
        for line in fixed:
            print(f"  {line}")
    n_baselined = sum(current.values())
    print(
        f"fncc-lint: OK — 0 unbaselined finding(s)"
        + (f", {n_baselined} baselined" if n_baselined else "")
        + f" across {len(sources)} file(s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
