"""S-series: shard-isolation rules (DESIGN.md §11).

Shards never share live objects: the only state that crosses a cut is a
plain-data frame message, and the only code allowed to peek inside a
fabric object's private machinery on a shard's behalf is the sanctioned
boundary adapter (``repro.shard.boundary``, which walks the cut port's
in-flight FIFO to build those messages).  Everything else in the shard
package must drive fabrics through their public surface — a coordinator
that reaches into ``port._inflight`` or ``sim._heap`` directly would
read state that, in the process-backed runtime, belongs to another
interpreter and silently desynchronize the two backends.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import FileContext, Finding, rule


def _is_private(attr: str) -> bool:
    return attr.startswith("_") and not (attr.startswith("__") and attr.endswith("__"))


@rule(
    "S501",
    "shard orchestration code must not touch private attributes of fabric "
    "objects; boundary crossings go through the shard message types",
    "DESIGN.md §11",
)
def check_s501(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("s501")
    prefixes = tuple(cfg.get("shard_modules", ()))
    adapters = set(cfg.get("adapter_modules", ()))
    path = ctx.relpath.replace("\\", "/")
    if not path.startswith(prefixes) or path in adapters:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute) or not _is_private(node.attr):
            continue
        base = node.value
        # An object's own private state (self._x / cls._x) is its business;
        # the rule targets reach-through into *other* objects.
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            continue
        yield Finding(
            "S501",
            ctx.relpath,
            node.lineno,
            node.col_offset + 1,
            f"private attribute {node.attr!r} of a fabric object accessed "
            f"from shard orchestration code; only the boundary adapter may "
            f"reach inside — cross-shard state travels as plain-data "
            f"messages (repro.shard.messages)",
        )
