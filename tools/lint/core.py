"""fncc-lint core: findings, the rule registry, suppressions, file walking.

A *rule* is a function ``check(ctx) -> Iterable[Finding]`` registered with
the :func:`rule` decorator; ``ctx`` is a :class:`FileContext` carrying the
parsed AST, source lines, repo-relative path and merged config.  Rules are
pure — all repo-specific policy (sanctioned modules, ownership maps) comes
in through config, which is what makes the fixture tests in ``tests/lint/``
able to exercise each rule on synthetic snippets with synthetic paths.

Suppressions (DESIGN.md §9): ``# fncc-lint: allow[RULE]`` (or
``allow[R1,R2]``) on the offending line or the line directly above it.
Justification text after the bracket is **required** — a bare allow is
itself a finding (``LINT000``), and LINT000 cannot be suppressed.  The
justification is the reviewable artifact: it must say why the invariant
holds anyway, not merely that the author wanted the warning gone.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: rule name -> (check_fn, summary, design_ref)
RULES: Dict[str, Tuple[Callable, str, str]] = {}

#: The meta-rule for malformed/unjustified suppressions.  Unsuppressable.
META_RULE = "LINT000"

_SUPPRESS_RE = re.compile(
    r"#\s*fncc-lint:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*:?\s*(.*?)\s*$"
)


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "path", "line", "col", "message")

    def __init__(self, rule: str, path: str, line: int, col: int, message: str) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Finding {self.format()}>"


def rule(name: str, summary: str, design_ref: str):
    """Register a rule function in :data:`RULES`."""

    def deco(fn):
        if name in RULES:
            raise RuntimeError(f"duplicate rule {name}")
        RULES[name] = (fn, summary, design_ref)
        return fn

    return deco


class FileContext:
    """Everything a rule needs to analyze one file."""

    def __init__(self, relpath: str, text: str, cfg: dict) -> None:
        self.relpath = relpath.replace(os.sep, "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=relpath)
        self.cfg = cfg
        self.import_aliases = self._collect_imports(self.tree)

    @staticmethod
    def _collect_imports(tree: ast.AST) -> Dict[str, str]:
        """Map local names to dotted origins: ``import random as r`` ->
        ``{"r": "random"}``; ``from random import shuffle`` ->
        ``{"shuffle": "random.shuffle"}``."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    aliases[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for a in node.names:
                    if a.name != "*":
                        aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve ``Name``/``Attribute`` chains to a dotted origin string
        through the file's import aliases; None for dynamic expressions."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.import_aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def rule_cfg(self, name: str) -> dict:
        return self.cfg.get(name.lower(), {})

    def in_paths(self, paths: Iterable[str]) -> bool:
        """Is this file one of / under any of the given repo-relative paths?"""
        for p in paths:
            p = p.rstrip("/")
            if self.relpath == p or self.relpath.startswith(p + "/"):
                return True
        return False


def parse_suppressions(
    lines: List[str], relpath: str
) -> Tuple[Dict[int, frozenset], List[Finding]]:
    """Scan for ``# fncc-lint: allow[...]`` comments.

    Returns ``(line -> allowed rule names, meta findings)``; an allow with
    no justification text yields a LINT000 meta finding and still does NOT
    suppress anything (a broken gag must not silence the alarm).
    """
    supp: Dict[int, frozenset] = {}
    meta: List[Finding] = []
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        names = frozenset(n.strip() for n in m.group(1).split(",") if n.strip())
        justification = m.group(2).strip()
        if not names or META_RULE in names:
            meta.append(
                Finding(META_RULE, relpath, i, 1, "malformed fncc-lint suppression")
            )
            continue
        if not justification:
            meta.append(
                Finding(
                    META_RULE,
                    relpath,
                    i,
                    1,
                    f"suppression allow[{','.join(sorted(names))}] has no "
                    f"justification text (required; see DESIGN.md §9)",
                )
            )
            continue
        supp[i] = names
    return supp, meta


def lint_source(
    text: str,
    relpath: str,
    cfg: dict,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``relpath``.

    The entry point for both the CLI (which reads files first) and the
    fixture tests (which pass synthetic snippets).  Findings covered by a
    valid inline suppression on the same or preceding line are dropped;
    LINT000 meta findings are always kept.
    """
    ctx = FileContext(relpath, text, cfg)
    supp, findings = parse_suppressions(ctx.lines, ctx.relpath)
    names = sorted(RULES) if rules is None else list(rules)
    for name in names:
        check, _, _ = RULES[name]
        for f in check(ctx):
            allowed = supp.get(f.line, frozenset()) | supp.get(f.line - 1, frozenset())
            if f.rule not in allowed:
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_py_files(root: str, paths: Iterable[str]) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, repo-relative posix path)`` for every .py file under
    the given repo-relative paths (files accepted verbatim)."""
    for p in paths:
        ap = os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap, p.replace(os.sep, "/")
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    full = os.path.join(dirpath, fn)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    yield full, rel


def lint_paths(
    root: str,
    paths: Iterable[str],
    cfg: dict,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (repo-relative, from ``root``)."""
    findings: List[Finding] = []
    for abspath, relpath in iter_py_files(root, paths):
        with open(abspath, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            findings.extend(lint_source(text, relpath, cfg, rules))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    META_RULE,
                    relpath,
                    exc.lineno or 1,
                    exc.offset or 1,
                    f"file does not parse: {exc.msg}",
                )
            )
    return findings
