"""fncc-lint baseline: pre-existing findings fail CI only when they grow.

The baseline maps a *content-anchored* key — ``rule|path|normalized source
line`` — to an occurrence count.  Anchoring to line content instead of line
numbers keeps the baseline stable across unrelated edits to the same file;
two identical offending lines in one file share a key via the count.

Semantics against the current findings:

* a key absent from the baseline → **new** finding, fails.
* a key whose current count exceeds its baselined count → **grew**, fails.
* a baselined key with fewer/zero current findings → fixed debt; reported
  so ``--update-baseline`` can shrink the file (the ratchet only tightens).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from tools.lint.core import Finding

_WS = re.compile(r"\s+")


def finding_key(f: Finding, line_text: str) -> str:
    return f"{f.rule}|{f.path}|{_WS.sub(' ', line_text.strip())}"


def count_findings(findings: List[Finding], sources: Dict[str, List[str]]) -> Dict[str, int]:
    """Aggregate findings into baseline-key counts.  ``sources`` maps
    relpath -> source lines (for the content anchor)."""
    counts: Dict[str, int] = {}
    for f in findings:
        lines = sources.get(f.path, ())
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        key = finding_key(f, text)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: str) -> Dict[str, int]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    if not isinstance(data, dict) or not isinstance(data.get("findings"), dict):
        raise ValueError(f"{path}: not a fncc-lint baseline file")
    return {str(k): int(v) for k, v in data["findings"].items()}


def save_baseline(path: str, counts: Dict[str, int]) -> None:
    body = {
        "comment": (
            "fncc-lint baseline: existing findings, keyed by "
            "rule|path|normalized-line. CI fails only when a count grows or "
            "a new key appears. Regenerate with fncc-lint --update-baseline."
        ),
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(body, fh, indent=2)
        fh.write("\n")


def compare(
    current: Dict[str, int], baseline: Dict[str, int]
) -> Tuple[List[str], List[str]]:
    """Return ``(regressions, fixed)`` — baseline keys that grew/appeared,
    and baseline keys now at a lower count (shrinkable debt)."""
    regressions = []
    for key, n in sorted(current.items()):
        base = baseline.get(key, 0)
        if n > base:
            regressions.append(f"{key}  ({n} > baseline {base})")
    fixed = [
        f"{key}  ({baseline[key]} -> {current.get(key, 0)})"
        for key in sorted(baseline)
        if current.get(key, 0) < baseline[key]
    ]
    return regressions, fixed
