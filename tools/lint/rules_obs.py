"""O-series: observability-discipline rules (DESIGN.md §8).

The obs layer's contract: instrumented code *pushes* metrics, collectors
and exporters only *pull* snapshots (O401) — a collector that mutates a
metric double-counts on the next export and perturbs the thing it
measures.  And the frame-train gate ``Switch._train_ok`` has exactly one
safe manipulation protocol, PacketTap's (clear on install, recompute on
detach); any hook that pokes it directly either leaks a closed gate (perf
cliff) or reopens it under a live tap (missed frames) — O402.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import FileContext, Finding, rule


@rule(
    "O401",
    "metric mutation (.inc/.observe/.set) from a collector/exporter module "
    "— registry access from collectors is pull-only",
    "DESIGN.md §8",
)
def check_o401(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("o401")
    if not ctx.in_paths(cfg.get("collector_modules", ())):
        return
    mutators = set(cfg.get("mutators", ()))
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in mutators
        ):
            yield Finding(
                "O401",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f".{node.func.attr}() from a collector module; collectors "
                f"pull snapshots only — push metrics from the instrumented "
                f"code itself",
            )


@rule(
    "O402",
    "_train_ok written outside the switch/PacketTap protocol",
    "DESIGN.md §8",
)
def check_o402(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("o402")
    if ctx.in_paths(cfg.get("owner_modules", ())):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for t in targets:
            if isinstance(t, ast.Attribute) and t.attr == "_train_ok":
                yield Finding(
                    "O402",
                    ctx.relpath,
                    t.lineno,
                    t.col_offset + 1,
                    "direct write to Switch._train_ok; hooks must follow the "
                    "PacketTap protocol (clear on install, "
                    "_recompute_train_ok() on detach) — see DESIGN.md §8",
                )
