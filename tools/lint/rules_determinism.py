"""D-series: determinism rules (DESIGN.md §4, §10).

The determinism contract says a run is a pure function of its seed: same
seed, same fingerprints, on any machine, under any PYTHONHASHSEED.  These
rules catch the ways code silently breaks that — ambient entropy (D101),
hash-ordered iteration feeding the event queue (D102), float arithmetic
in event-key expressions (D103), and fault-module randomness that does
not derive from the plan's named seed stream (D104).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from tools.lint.core import FileContext, Finding, rule


@rule(
    "D101",
    "ambient entropy (random.*/time.time/datetime.now/os.urandom/uuid/"
    "key=id) outside the sanctioned seeded-RNG module",
    "DESIGN.md §4",
)
def check_d101(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("d101")
    if ctx.in_paths(cfg.get("allow_modules", ())):
        return
    banned = set(cfg.get("banned_calls", ()))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted in banned:
            yield Finding(
                "D101",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"call to {dotted}() draws ambient entropy/wall-clock; use a "
                f"named stream from repro.sim.rng (seeded) instead",
            )
        elif dotted == "random.Random" and not node.args and not node.keywords:
            yield Finding(
                "D101",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                "random.Random() with no seed is OS-entropy seeded; derive "
                "the stream from the run seed (repro.sim.rng)",
            )
        elif dotted in ("sorted", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        ):
            for kw in node.keywords:
                if kw.arg == "key" and _is_id_key(kw.value):
                    yield Finding(
                        "D101",
                        ctx.relpath,
                        node.lineno,
                        node.col_offset + 1,
                        "ordering by id() depends on allocator addresses; "
                        "order by a stable field (flow_id, name, seq)",
                    )


def _is_id_key(expr: ast.AST) -> bool:
    """``key=id`` or ``key=lambda ...: ...id(...)...``."""
    if isinstance(expr, ast.Name) and expr.id == "id":
        return True
    if isinstance(expr, ast.Lambda):
        for sub in ast.walk(expr.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
    return False


def _is_set_producing(ctx: FileContext, expr: ast.AST) -> str:
    """Classify an iterable expression as hash-ordered, returning a human
    label ('' when ordered).  ``sorted(...)`` at the top normalizes anything.
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(expr, ast.Call):
        dotted = ctx.dotted(expr.func)
        if dotted in ("set", "frozenset"):
            return f"{dotted}()"
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "keys":
            return ".keys()"
    return ""


def _body_schedules(ctx: FileContext, body: List[ast.stmt]) -> bool:
    cfg = ctx.rule_cfg("d102")
    sched = set(cfg.get("schedule_calls", ()))
    heaps = set(cfg.get("heap_calls", ()))
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in sched:
                return True
            if ctx.dotted(node.func) in heaps:
                return True
    return False


@rule(
    "D102",
    "iteration over a set/.keys() view feeding schedule()/heappush — "
    "hash-ordered scheduling",
    "DESIGN.md §4",
)
def check_d102(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.For):
            continue
        label = _is_set_producing(ctx, node.iter)
        if not label:
            continue
        if _body_schedules(ctx, node.body):
            yield Finding(
                "D102",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"loop over {label} schedules events: iteration order is "
                f"hash-/insertion-dependent and becomes the event tiebreak; "
                f"iterate a sorted() or list-ordered collection",
            )


#: Ad-hoc RNG constructors: even *seeded*, these are parallel entropy roots
#: — a fault schedule drawn from one replays differently the moment anyone
#: reorders construction, and its seed is invisible to the run fingerprint.
_ADHOC_RNGS = (
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
)


@rule(
    "D104",
    "fault-module randomness not derived from the plan's named seed "
    "stream (ambient random.*/time sources, or ad-hoc RNG construction)",
    "DESIGN.md §10",
)
def check_d104(ctx: FileContext) -> Iterator[Finding]:
    """Replay of an armed :class:`FaultPlan` must be byte-identical per
    seed (ISSUE: faultmatrix fingerprints match across ``--jobs``).  That
    holds only if *every* draw a fault module makes flows from the plan's
    named stream (``seeds.stream("faults.<plan>")``) — module-level
    ``random.*``, wall-clock sources, and privately constructed RNGs all
    break it, ambient or not."""
    cfg = ctx.rule_cfg("d104")
    if not ctx.in_paths(cfg.get("fault_modules", ())):
        return
    banned = set(cfg.get("banned_calls", ()))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted in banned:
            yield Finding(
                "D104",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"fault schedules must be a pure function of the plan's "
                f"named seed: {dotted}() draws outside the seed factory; "
                f"use seeds.stream('faults.<plan>') (repro.sim.rng)",
            )
        elif dotted in _ADHOC_RNGS:
            yield Finding(
                "D104",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"{dotted}() builds a private RNG in a fault module; even "
                f"seeded, its draws are invisible to the run seed — derive "
                f"the stream via seeds.stream('faults.<plan>') instead",
            )


def _float_in_key_expr(expr: ast.AST) -> bool:
    """True if the event-key expression performs float arithmetic *itself*.

    Calls are trusted — units helpers like ``us(1.5)`` return ints, and a
    top-level ``round()``/``int()`` wrapper launders anything inside it —
    so the walk prunes at every Call node and only inspects the arithmetic
    the expression performs directly.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            continue  # never descend into a call's arguments
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@rule(
    "D103",
    "float arithmetic in an event-key (schedule delay/time) expression",
    "DESIGN.md §4",
)
def check_d103(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("d103")
    sched = set(cfg.get("schedule_calls", ()))
    arg1 = set(cfg.get("arg1_calls", ()))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        name = node.func.attr
        if name in sched and node.args:
            key_expr = node.args[0]
        elif name in arg1 and len(node.args) >= 2:
            key_expr = node.args[1]
        else:
            continue
        if isinstance(key_expr, ast.Call):
            continue  # a call's return feeds the key: trusted (see helper)
        if _float_in_key_expr(key_expr):
            yield Finding(
                "D103",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"{name}() key expression uses float arithmetic (/ or a float "
                f"literal); event keys are integer picoseconds — use // or "
                f"wrap in round()/int() (repro.units helpers return ints)",
            )
