"""fncc-lint configuration: compiled-in defaults + ``[tool.fncc-lint]``.

The defaults below ARE the repo policy — pyproject.toml entries override or
extend them, which is how new sanctioned modules and ownership grants land
in review rather than in tool code.  TOML loading uses :mod:`tomllib` where
available (3.11+); on the 3.9/3.10 CI floor a vendored mini-parser covers
the small TOML subset this repo's pyproject actually uses (tables, string /
string-list / bool / int values).  No third-party dependency either way.
"""

from __future__ import annotations

import os
import re
from typing import Any, Dict, List, Optional

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on the 3.9/3.10 CI floor
    _toml = None

#: Ambient entropy / wall-clock sources banned outside the sanctioned RNG
#: module (D101 everywhere; D104 re-bans them in fault modules with the
#: stricter no-ad-hoc-RNG policy layered on top).
_ENTROPY_CALLS: List[str] = [
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.paretovariate",
    "random.triangular",
    "random.vonmisesvariate",
    "random.seed",
    "random.getrandbits",
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
]

#: Repo policy.  Keys are lower-cased rule names; ``paths``/``baseline`` are
#: tool-level.  Path values are repo-relative posix paths.
DEFAULTS: Dict[str, Any] = {
    "paths": ["src/repro"],
    "baseline": "tools/lint/baseline.json",
    "d101": {
        # The sanctioned seeded-RNG module (DESIGN.md §4): named streams
        # derived from the run seed.  Everything else draws through it.
        "allow_modules": ["src/repro/sim/rng.py"],
        "banned_calls": list(_ENTROPY_CALLS),
    },
    "d104": {
        # Fault-schedule modules (DESIGN.md §10): every draw must come from
        # the plan's named stream off the topology seed factory.  Same
        # entropy ban as D101, plus ad-hoc RNG construction (hardcoded in
        # the rule) — and no allow-list: nothing in faults/ is exempt.
        "fault_modules": ["src/repro/faults"],
        "banned_calls": list(_ENTROPY_CALLS),
    },
    "d102": {
        "schedule_calls": ["schedule", "schedule_at", "schedule_reuse"],
        "heap_calls": ["heapq.heappush", "heappush"],
    },
    "d103": {
        "schedule_calls": ["schedule", "schedule_at"],
        # schedule_reuse(ev, delay): the key expression is argument 1.
        "arg1_calls": ["schedule_reuse"],
    },
    "p201": {"spec_classes": ["RunSpec"]},
    "p202": {"spec_classes": ["RunSpec"]},
    "s501": {
        # Shard isolation (DESIGN.md §11): only the boundary adapter may
        # reach into fabric objects' private machinery; everything else in
        # the shard package drives fabrics through their public surface so
        # the in-process and process-backed runtimes stay interchangeable.
        "shard_modules": ["src/repro/shard"],
        "adapter_modules": ["src/repro/shard/boundary.py"],
    },
    "h301": {
        # protected attribute -> modules allowed to assign it.  port.py is a
        # sanctioned friend of the engine: Port._tx_deliver inlines
        # schedule_reuse's body (documented at both sites).
        "owners": {
            "_heap": ["src/repro/sim/engine.py", "src/repro/net/port.py"],
            "_seq": ["src/repro/sim/engine.py", "src/repro/net/port.py"],
            "_pool": ["src/repro/sim/engine.py"],
            "_running": ["src/repro/sim/engine.py"],
            "_stopped": ["src/repro/sim/engine.py"],
            "alive": ["src/repro/sim/engine.py", "src/repro/net/port.py"],
            "key": ["src/repro/sim/engine.py", "src/repro/net/port.py"],
            "_acct": ["src/repro/net/port.py"],
            "_inflight": ["src/repro/net/port.py"],
            "_del_ev": ["src/repro/net/port.py"],
            "_queued_bytes": ["src/repro/net/port.py"],
            "_uncommitted": ["src/repro/net/port.py"],
            "_ser": ["src/repro/net/port.py"],
            "_rt_cache": ["src/repro/net/port.py"],
            "next_free_ps": ["src/repro/net/port.py"],
            "_free": ["src/repro/net/packet.py"],
            "_tap_pauses": ["src/repro/net/packet.py"],
            "_was_enabled": ["src/repro/net/packet.py"],
        },
    },
    "h302": {
        # Modules whose classes are instantiated per-frame / per-event: an
        # instance __dict__ here is a real memory + attribute-lookup cost.
        # switch.py/node.py are deliberately absent — the PacketTap protocol
        # installs instance-dict receive wrappers on them (DESIGN.md §8).
        "hot_modules": [
            "src/repro/sim/engine.py",
            "src/repro/sim/timer.py",
            "src/repro/net/packet.py",
            "src/repro/net/port.py",
            "src/repro/transport/flow.py",
        ],
        "exempt_bases": [
            "Exception",
            "RuntimeError",
            "ValueError",
            "Enum",
            "IntEnum",
            "NamedTuple",
            "Protocol",
        ],
    },
    "o401": {
        # Collector/exporter modules consume registry snapshots; mutating a
        # metric from one would double-count on re-export (DESIGN.md §8:
        # reads are pull-based, writes belong to the instrumented code).
        "collector_modules": [
            "src/repro/obs/export.py",
            "src/repro/obs/flight.py",
            "src/repro/obs/progress.py",
        ],
        "mutators": ["inc", "observe", "set"],
    },
    "o402": {
        # Switch owns the gate; metrics/tap.py IS the PacketTap protocol.
        # Tap-like hooks elsewhere must go through that protocol (§8) and
        # carry a justified suppression.
        "owner_modules": ["src/repro/net/switch.py", "src/repro/metrics/tap.py"],
    },
}


def _deep_merge(base: Any, override: Any) -> Any:
    """Dict-aware merge: dicts merge key-wise, everything else replaces."""
    if isinstance(base, dict) and isinstance(override, dict):
        out = dict(base)
        for k, v in override.items():
            out[k] = _deep_merge(base.get(k), v) if k in base else v
        return out
    return override


# -- mini TOML subset parser (3.9/3.10 fallback) -----------------------------

_TABLE_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KV_RE = re.compile(r"^([A-Za-z0-9_.\-]+|\"[^\"]+\"|'[^']+')\s*=\s*(.+)$")


def _strip_comment(line: str) -> str:
    out = []
    in_str: Optional[str] = None
    for ch in line:
        if in_str:
            if ch == in_str:
                in_str = None
        elif ch in "\"'":
            in_str = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        # split on top-level commas (strings may not contain commas in our
        # subset-of-a-subset; repo paths and rule names never do)
        return [_parse_value(part) for part in inner.split(",") if part.strip()]
    if (raw.startswith('"') and raw.endswith('"')) or (
        raw.startswith("'") and raw.endswith("'")
    ):
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"mini-toml: unsupported value {raw!r}")


def _split_key(dotted: str) -> List[str]:
    """Split a table header / key on dots, honoring quoted segments
    (``[tool.fncc-lint.h301.owners]`` and ``"_heap" = [...]``)."""
    parts: List[str] = []
    buf = ""
    in_str: Optional[str] = None
    for ch in dotted:
        if in_str:
            if ch == in_str:
                in_str = None
            else:
                buf += ch
        elif ch in "\"'":
            in_str = ch
        elif ch == ".":
            parts.append(buf.strip())
            buf = ""
        else:
            buf += ch
    parts.append(buf.strip())
    return [p for p in parts if p]


def _mini_toml_load(text: str) -> dict:
    """Parse the TOML subset this repo's pyproject uses: ``[dotted.tables]``,
    ``key = string | [strings] | bool | int | float``.  Multi-line arrays are
    joined first.  Unsupported constructs in *irrelevant* sections are
    skipped; errors only surface for sections we later read."""
    root: Dict[str, Any] = {}
    current = root
    # Join multi-line arrays: accumulate until brackets balance.
    logical: List[str] = []
    pending = ""
    for line in text.splitlines():
        line = _strip_comment(line)
        if not line:
            continue
        pending = f"{pending} {line}".strip() if pending else line
        if pending.count("[") > pending.count("]") or pending.endswith(","):
            # inside a multi-line array (table headers always balance)
            continue
        logical.append(pending)
        pending = ""
    if pending:
        logical.append(pending)
    for line in logical:
        m = _TABLE_RE.match(line)
        if m:
            current = root
            for part in _split_key(m.group(1)):
                current = current.setdefault(part, {})
            continue
        m = _KV_RE.match(line)
        if not m:
            continue  # arrays-of-tables etc.: not used by sections we read
        key_parts = _split_key(m.group(1))
        try:
            value = _parse_value(m.group(2))
        except ValueError:
            continue
        tgt = current
        for part in key_parts[:-1]:
            tgt = tgt.setdefault(part, {})
        tgt[key_parts[-1]] = value
    return root


def load_pyproject(path: str) -> dict:
    """Parse pyproject.toml into a dict (tomllib, or the mini-parser)."""
    if _toml is not None:
        with open(path, "rb") as fh:
            return _toml.load(fh)
    with open(path, "r", encoding="utf-8") as fh:
        return _mini_toml_load(fh.read())


def load_config(root: str, pyproject: Optional[str] = None) -> dict:
    """The merged lint config for a repo rooted at ``root``."""
    cfg = DEFAULTS
    path = pyproject or os.path.join(root, "pyproject.toml")
    if os.path.isfile(path):
        data = load_pyproject(path)
        override = data.get("tool", {}).get("fncc-lint", {})
        if override:
            cfg = _deep_merge(cfg, override)
    return cfg
