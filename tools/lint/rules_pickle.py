"""P-series: picklability rules (DESIGN.md §5).

A :class:`repro.exec.spec.RunSpec` is shipped by pickle to a *spawned*
interpreter, so its ``fn`` must be resolvable by reference and its kwargs
must be plain data.  Violations surface only at sweep time, in a worker,
as an opaque pickling traceback — these rules move the failure to lint
time, at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.lint.core import FileContext, Finding, rule


def _spec_calls(ctx: FileContext, spec_classes) -> Iterator[ast.Call]:
    names = set(spec_classes)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Name) and f.id in names:
            yield node
        elif isinstance(f, ast.Attribute) and f.attr in names:
            yield node


def _fn_arg(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    return call.args[0] if call.args else None


def _kwargs_arg(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "kwargs":
            return kw.value
    return call.args[1] if len(call.args) >= 2 else None


@rule(
    "P201",
    "RunSpec fn must be module-level (a name or 'module:qualname' string), "
    "never a lambda/closure/partial",
    "DESIGN.md §5",
)
def check_p201(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("p201")
    for call in _spec_calls(ctx, cfg.get("spec_classes", ())):
        fn = _fn_arg(call)
        if fn is None:
            continue
        bad = ""
        if isinstance(fn, ast.Lambda):
            bad = "a lambda"
        elif isinstance(fn, ast.Call):
            dotted = ctx.dotted(fn.func) or ""
            if dotted.endswith("partial"):
                bad = "a functools.partial"
            else:
                bad = "a call result"
        if bad:
            yield Finding(
                "P201",
                ctx.relpath,
                fn.lineno,
                fn.col_offset + 1,
                f"spec fn is {bad}; spawn-started workers re-import it by "
                f"reference — pass a module-level callable or a "
                f"'module:qualname' string",
            )


@rule(
    "P202",
    "RunSpec kwargs must be plain data (no lambdas / live objects)",
    "DESIGN.md §5",
)
def check_p202(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("p202")
    for call in _spec_calls(ctx, cfg.get("spec_classes", ())):
        kwargs = _kwargs_arg(call)
        if kwargs is None:
            continue
        for sub in ast.walk(kwargs):
            if isinstance(sub, ast.Lambda):
                yield Finding(
                    "P202",
                    ctx.relpath,
                    sub.lineno,
                    sub.col_offset + 1,
                    "lambda inside RunSpec kwargs cannot pickle to a spawned "
                    "worker; pass plain configuration values and rebuild "
                    "behavior from them in the run fn",
                )
