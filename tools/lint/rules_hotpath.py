"""H-series: hot-path ownership rules (DESIGN.md §2).

The hot path trades encapsulation for speed in a few documented places
(inlined ``schedule_reuse`` in ``Port._tx_deliver``, flattened
``Packet.reset`` in ``PacketPool.acquire``) — which only stays sound
because the set of modules allowed to touch each piece of internal state
is closed.  H301 enforces that closure; H302 enforces ``__slots__`` on
classes living in per-frame modules, where an instance ``__dict__`` is a
real memory and lookup cost.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import FileContext, Finding, rule


@rule(
    "H301",
    "assignment to engine/port/pool internal state outside its owning module",
    "DESIGN.md §2",
)
def check_h301(ctx: FileContext) -> Iterator[Finding]:
    owners = ctx.rule_cfg("h301").get("owners", {})
    if not owners:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for tgt in targets:
            # Chained assignments (a.x = b.y = v) list every target; tuple
            # targets unpack one level.
            elts = tgt.elts if isinstance(tgt, (ast.Tuple, ast.List)) else [tgt]
            for t in elts:
                if not isinstance(t, ast.Attribute):
                    continue
                # self.X / cls.X is the object's *own* state (any class may
                # reuse a protected name for itself); H301 polices writes
                # into OTHER objects' internals: sim._heap, ev.alive, ...
                if isinstance(t.value, ast.Name) and t.value.id in ("self", "cls"):
                    continue
                allowed = owners.get(t.attr)
                if allowed is None or ctx.in_paths(allowed):
                    continue
                yield Finding(
                    "H301",
                    ctx.relpath,
                    t.lineno,
                    t.col_offset + 1,
                    f"write to protected attribute {t.attr!r} from a "
                    f"non-owning module (owners: {', '.join(allowed)}); go "
                    f"through the owner's API or land an ownership grant in "
                    f"pyproject [tool.fncc-lint.h301.owners]",
                )


def _last_attr(expr: ast.AST) -> str:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


@rule(
    "H302",
    "classes in per-frame hot modules must declare __slots__",
    "DESIGN.md §2",
)
def check_h302(ctx: FileContext) -> Iterator[Finding]:
    cfg = ctx.rule_cfg("h302")
    if not ctx.in_paths(cfg.get("hot_modules", ())):
        return
    exempt = set(cfg.get("exempt_bases", ()))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {_last_attr(b) for b in node.bases}
        if any(b in exempt or b.endswith(("Error", "Exception")) for b in bases):
            continue
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            for stmt in node.body
        )
        if not has_slots:
            yield Finding(
                "H302",
                ctx.relpath,
                node.lineno,
                node.col_offset + 1,
                f"class {node.name} lives in a per-frame hot module but has "
                f"no __slots__; an instance __dict__ here costs memory and "
                f"attribute-lookup time at frame rates",
            )
