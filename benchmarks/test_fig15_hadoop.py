"""Bench: Fig. 15 — FB_Hadoop FCT slowdown on the fat-tree at 50% load."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fct_experiment import format_panel
from repro.experiments.fig15_hadoop import run_fig15, short_flow_p95_reduction
from repro.metrics.fct import PERCENTILE_COLUMNS


@pytest.mark.benchmark(group="fig15")
def test_fig15_hadoop_fct(benchmark, paper_scale):
    kwargs = (
        dict(k=4, n_flows=500, scale=1.0, seed=3)
        if not paper_scale
        else dict(k=8, n_flows=5000, scale=1.0, seed=3)
    )

    def scenario():
        return run_fig15(**kwargs)

    results = benchmark.pedantic(scenario, **BENCH_KW)

    for col in PERCENTILE_COLUMNS:
        print("\n" + format_panel(results, col, f"Fig 15 ({col}) — FB_Hadoop @50%"))
    red = short_flow_p95_reduction(results)
    print(
        f"\nFNCC p95 reduction <100KB (paper: 27.4% vs HPCC, 88.9% vs DCQCN): "
        + ", ".join(f"{cc}={pct:.1f}%" for cc, pct in red.items())
    )

    for cc, r in results.items():
        assert r.completed() == kwargs["n_flows"], f"{cc} lost flows"
    # The paper's short-flow claim, as ordering: FNCC <= HPCC << DCQCN.
    p95 = {
        cc: r.table.aggregate("p95", max_size=100_000) for cc, r in results.items()
    }
    assert p95["fncc"] <= p95["hpcc"]
    assert p95["fncc"] < p95["dcqcn"]
    assert red["dcqcn"] > 20.0  # large gain over DCQCN
