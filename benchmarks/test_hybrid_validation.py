"""Bench: the hybrid backend's fidelity gate vs packet ground truth.

Runs :func:`repro.hybrid.validate.validate` on the fig14/fig15 scenarios:
per-size-bin mean slowdown within 10% and p99 within 20% of the packet
simulator, whole-distribution KS distance bounded, every flow completed.

Default runs gate the ``--quick`` slice (200 flows: means + KS — small
bins make a p99 the sample max, so the p99 check needs the full run);
``--paper-scale`` runs the full 400-flow gate, p99 checks included.
"""

import pytest

from repro.hybrid.validate import validate


@pytest.mark.parametrize("scenario", ["fig14", "fig15"])
def test_hybrid_validation_gate(scenario, paper_scale):
    report = validate(scenario, quick=not paper_scale)
    print("\n" + report.format())
    assert report.passed, "\n" + report.format()
    # The gate is only meaningful if the hybrid actually split the tiers:
    # a degenerate all-packet run would pass trivially.
    assert 0 < report.demoted <= report.n_flows
    assert report.completed_hybrid == report.n_flows
