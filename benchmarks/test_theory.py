"""Bench: §5.4.1 theoretical model vs simulation (the Fig. 12 analysis)."""

import pytest

from conftest import BENCH_KW
from repro.experiments.theory import run_theory


@pytest.mark.benchmark(group="theory")
def test_theory_vs_simulation(benchmark):
    rows = benchmark.pedantic(lambda: run_theory(duration_us=500.0), **BENCH_KW)

    print("\n§5.4.1 theory vs measured response gap (us)")
    print(f"{'loc':>7} {'theory gain':>12} {'measured':>9}")
    for loc, r in rows.items():
        print(f"{loc:>7} {r['theory_gain_us']:12.2f} {r['measured_gap_us']:9.2f}")
    print(f"last hop + LHCS: {rows['last']['measured_gap_with_lhcs_us']:.2f}")

    # The model's ordering must show up in simulation.
    assert rows["first"]["measured_gap_us"] > rows["last"]["measured_gap_us"]
    # And LHCS must recover the last hop's small gain (Alg. 2's purpose).
    assert (
        rows["last"]["measured_gap_with_lhcs_us"]
        > rows["last"]["measured_gap_us"]
    )
