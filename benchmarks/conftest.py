"""Benchmark-wide knobs.

Every benchmark regenerates one figure of the paper on scaled-down defaults
(DESIGN.md documents the scaling).  pytest-benchmark runs each scenario a
single round — these are scenario regenerations, not microbenchmarks, and
the interesting output is the printed paper-style rows plus the timing.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at closer-to-paper scale (much slower)",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    return request.config.getoption("--paper-scale")


#: single-round pedantic settings shared by all scenario benches
BENCH_KW = dict(iterations=1, rounds=1, warmup_rounds=0)
