"""Bench: ablations of FNCC's design choices (not paper figures — the
studies DESIGN.md calls out: beta/alpha sweeps, ACK coalescing, LHCS
contribution, INT staleness, engine throughput)."""

import pytest

from conftest import BENCH_KW
from repro.experiments.ablations import (
    ack_coalescing_sweep,
    alpha_sweep,
    beta_sweep,
    int_staleness_sweep,
    lhcs_contribution,
)


@pytest.mark.benchmark(group="ablations")
def test_lhcs_contribution(benchmark):
    res = benchmark.pedantic(lhcs_contribution, **BENCH_KW)
    print(f"\nLHCS ablation (last-hop peak queue KB): {res}")
    assert res["fncc_lhcs"] <= res["fncc_nolhcs"]
    assert res["fncc_lhcs"] < res["hpcc"]


@pytest.mark.benchmark(group="ablations")
def test_beta_sweep(benchmark):
    res = benchmark.pedantic(beta_sweep, **BENCH_KW)
    print("\nbeta sweep (peakQ KB, util):")
    for b, (q, u) in res.items():
        print(f"  beta={b:4.2f}: q={q:7.1f}KB util={u:.3f}")
    # Smaller beta must not queue deeper than beta ~ 1.
    assert res[0.7][0] <= res[0.95][0] * 1.1


@pytest.mark.benchmark(group="ablations")
def test_alpha_sweep(benchmark):
    res = benchmark.pedantic(alpha_sweep, **BENCH_KW)
    print(f"\nalpha sweep (peakQ KB): {res}")
    # A threshold too high to ever fire behaves like no LHCS: deepest queue.
    assert res[1.05] <= res[1.5] * 1.1


@pytest.mark.benchmark(group="ablations")
def test_ack_coalescing_sweep(benchmark):
    res = benchmark.pedantic(ack_coalescing_sweep, **BENCH_KW)
    print(f"\nACK coalescing m -> peakQ KB: {res}")
    # Coarser ACKs mean staler notification: m=8 must not beat m=1.
    assert res[1] <= res[8] * 1.1


@pytest.mark.benchmark(group="ablations")
def test_int_staleness_sweep(benchmark):
    res = benchmark.pedantic(int_staleness_sweep, **BENCH_KW)
    print(f"\nAll_INT_Table refresh us -> peakQ KB: {res}")
    # Live readout (0) must not be worse than 20 us-stale telemetry.
    assert res[0.0] <= res[20.0] * 1.1


@pytest.mark.benchmark(group="engine")
def test_engine_event_throughput(benchmark):
    """Raw engine dispatch rate — the number DESIGN.md's scaling argument
    rests on (a genuine pytest-benchmark microbenchmark, many rounds)."""
    from repro.sim.engine import Simulator

    def run_20k_events():
        sim = Simulator()

        def chain(_):
            nonlocal left
            left -= 1
            if left:
                sim.schedule(100, chain)

        left = 20_000
        sim.schedule(100, chain)
        sim.run()
        return sim.events_dispatched

    events = benchmark(run_20k_events)
    assert events == 20_000
