"""Bench: Fig. 1a — the hardware-trend dataset (static, trivially fast;
kept as a bench so every figure has exactly one regeneration target)."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig1_hw_trends import absorption_is_shrinking, run_fig1a


@pytest.mark.benchmark(group="fig1a")
def test_fig1a_hw_trends(benchmark):
    rows = benchmark.pedantic(run_fig1a, **BENCH_KW)
    print("\nFig 1a — buffer/capacity (us):")
    for name, cap, buf, t in rows:
        print(f"  {name:>22}: {cap:5.1f} Tb/s, {buf:6.1f} MB -> {t:6.2f} us")
    assert len(rows) == 4
    assert absorption_is_shrinking(rows)
    # Newest generation absorbs bursts for barely half the time of 2015's.
    assert rows[-1][3] < 0.65 * rows[0][3]
