"""Perf-trajectory harness for the packet hot path.

Measures wall time and scheduler throughput of fixed, seeded paper
scenarios so every PR has a comparable perf number.  Three scenarios mirror
the figures that stress the hot path the hardest:

* ``fig1_queue``  — one Fig. 1b cell (two elephants, dumbbell, FNCC).
* ``fig9_micro``  — the Fig. 9 micro-benchmark scenario (FNCC @ 100G).
* ``fig14_websearch`` — the Fig. 14 WebSearch FCT run on a k=4 fat-tree.
* ``lbmatrix`` — two cells of the CC × LB matrix (spray under WebSearch,
  ConWeave-lite under permutation, both FNCC on the k=4 fat-tree): the
  load-balancing subsystem's hot path — per-packet strategy dispatch plus
  the receiver-side reorder buffer — measured alongside the classic paths.
* ``pause_storm`` — the PFC pause-transition regime (Fig. 3 / incast):
  a port holding a deep backlog behind a relentless XOFF/XON cadence,
  plus a PFC-heavy FNCC dumbbell with a tight XOFF threshold.  This is
  the scenario that gates the cost of a single pause transition — the
  eager commit-everything port paid O(backlog) per XOFF/XON here; the
  bounded-lookahead port pays O(K).
* ``sweep`` — the sweep-executor scenario: a multi-seed slice of the
  CC × LB matrix run through :class:`repro.exec.SweepExecutor`.  The only
  scenario that honours ``--jobs N`` (``tools/bench.py --jobs``): at
  ``jobs=1`` it measures the in-process fallback, at ``jobs>1`` the
  spawn + pickle + ordered-reduce pool path.  Wall-clock ratio between a
  ``--jobs 1`` and a ``--jobs N`` entry on the same machine is the
  sweep-layer speedup; entries record ``jobs``/``cpu_count`` so the
  ``--check`` gate never compares entries with different job counts.

Metrics per scenario (all medians over ``repeats`` runs after one warmup):

* ``wall_s`` — wall-clock seconds for the scenario.
* ``events`` / ``events_per_sec`` — scheduler dispatches.  NOTE: the
  single-event link pipeline dispatches ~1 event per frame-hop where the
  seed engine needed ~2.2, so ``events_per_sec`` is **not** comparable
  across that change; ``frame_hops_per_sec`` and ``wall_s`` are.
* ``frame_hops`` / ``frame_hops_per_sec`` — frames delivered across any
  link (sum of per-port tx counters): the unit of simulated work, stable
  across engine representations.  Speedups between trajectory entries
  should be computed as ratios of ``wall_s`` (identical scenario) or
  equivalently ``frame_hops_per_sec``.

The trajectory file (``BENCH_hotpath.json``) is append-per-run: every
invocation of ``tools/bench.py`` adds one entry, so the repo accumulates a
measured perf history alongside the code history.
"""

from __future__ import annotations

import statistics
import time
from types import SimpleNamespace
from typing import Callable, Dict, List, Tuple

from repro.exec import SweepExecutor
from repro.experiments.common import run_microbench
from repro.experiments.fct_experiment import compare_ccs
from repro.experiments.lbmatrix import run_lb_cell, sweep_specs
from repro.units import KB

#: scenario name -> zero-arg callable returning a list of Simulator objects
#: plus a list of Topology-like objects exposing per-port tx counters.
ScenarioResult = Tuple[List[object], List[object]]  # (sims, topos)


def _fig1_queue() -> ScenarioResult:
    r = run_microbench("fncc", link_rate_gbps=100.0, duration_us=600.0, seed=1)
    return [r.sim], [r.topo]


def _fig9_micro() -> ScenarioResult:
    r = run_microbench("fncc", link_rate_gbps=100.0, duration_us=700.0, seed=1)
    return [r.sim], [r.topo]


def _fig14_websearch(obs=None) -> ScenarioResult:
    # compare_ccs is the rich in-process path (run_fig14 now reduces to
    # portable summaries); same workload/defaults as the figure runner.
    # Results carry their topologies, so this scenario records frame_hops
    # like the microbench ones (an entry without it cannot distinguish
    # event-count wins from per-event wins).
    results = compare_ccs(
        ("fncc",), workload="websearch", n_flows=200, seed=1, obs=obs
    )
    return [r.sim for r in results.values()], [r.topo for r in results.values()]


def _lbmatrix(obs=None) -> ScenarioResult:
    # With obs, the bundle rides both cells sequentially (re-attached on
    # the second; its snapshot reflects the last cell — the ConWeave one,
    # whose reroute counters are what the lb category observes).
    spray = run_lb_cell(
        "spray", "fncc", workload="websearch", n_flows=200, seed=1, obs=obs
    )
    conweave = run_lb_cell(
        "conweave", "fncc", workload="permutation", perm_flow_bytes=600 * KB,
        seed=1, obs=obs,
    )
    return [spray.sim, conweave.sim], [spray.topo, conweave.topo]


#: pause_storm knobs — sized so the pre-fix O(backlog) port spends seconds
#: here while the bounded-lookahead port stays in the same ballpark as the
#: fig9 smoke scenario.
STORM_BACKLOG_FRAMES = 3000
STORM_CYCLES = 2500
STORM_MTU = 1518


def _storm_port():
    """A 100G port preloaded with a deep backlog, then driven through
    ``STORM_CYCLES`` XOFF/XON transitions (one frame drains per cycle, one
    fresh frame is fed per cycle, so the backlog stays deep throughout)."""
    from repro.net.node import Node
    from repro.net.packet import DATA, Packet
    from repro.net.port import connect
    from repro.sim.engine import Simulator

    class _Sink(Node):
        def receive(self, pkt, in_port):
            pass

    sim = Simulator()
    a, b = _Sink(sim, "a"), _Sink(sim, "b")
    pa, _pb = connect(sim, a, b, 100.0, 1000)

    def _mk(i: int) -> Packet:
        return Packet(
            DATA, flow_id=i, src=0, dst=1,
            size=STORM_MTU, payload=STORM_MTU - 48,
        )

    for i in range(STORM_BACKLOG_FRAMES):
        pa.enqueue(_mk(i))
    ser = round(STORM_MTU * 8000 / 100.0)
    period = 2 * ser

    def _xoff(_arg):
        pa.pause(0)

    def _xon(i):
        pa.resume(0)
        pa.enqueue(_mk(STORM_BACKLOG_FRAMES + i))

    for i in range(STORM_CYCLES):
        sim.schedule(i * period, _xoff, None)
        sim.schedule(i * period + ser, _xon, i)
    sim.run()

    class _StormTopo:  # duck-typed for _frame_hops
        hosts = (a, b)
        switches = ()

    return sim, _StormTopo()


def _pause_storm() -> ScenarioResult:
    storm_sim, storm_topo = _storm_port()
    # Full-stack pause regime: tight XOFF forces sustained PFC churn
    # through switch ingress accounting and the port pause path.
    r = run_microbench(
        "fncc", link_rate_gbps=100.0, duration_us=400.0, seed=3, pfc_xoff=40_000
    )
    return [storm_sim, r.sim], [storm_topo, r.topo]


#: sweep scenario shape: |SWEEP_SEEDS| × |lbs| × |ccs| independent cells,
#: heavy enough (1.5 MB permutation elephants, ~1 s/cell) that per-run
#: work dominates the ~1.5 s pool startup (spawned workers re-import
#: numpy + repro) once jobs > 1 on multi-core machines.
SWEEP_SEEDS = (1, 2, 3, 4)
SWEEP_SLICE = dict(
    lbs=("ecmp", "spray"),
    ccs=("fncc",),
    topos=("fattree",),
    workloads=("permutation",),
    perm_flow_bytes=1500 * KB,
)


def _sweep(jobs: int = 1) -> ScenarioResult:
    specs = sweep_specs(seeds=SWEEP_SEEDS, **SWEEP_SLICE)
    results = SweepExecutor(jobs=jobs).map(specs)
    # Workers own the simulators; the summaries carry the dispatch and
    # frame-hop counts home, so both metrics stay comparable across job
    # counts (``frame_hops`` rides a duck-typed topo object — see
    # :func:`_frame_hops`).
    events = sum(r.value.events_dispatched for r in results)
    hops = sum(r.value.frame_hops for r in results)
    return (
        [SimpleNamespace(events_dispatched=events)],
        [SimpleNamespace(frame_hops=hops)],
    )


#: Hybrid co-simulation scenarios (DESIGN.md §6).  ``paper_scale`` is the
#: full paper fabric (k=8, 128 hosts) under the Fig. 14 workload at 30%
#: load — heavy enough that the packet engine needs minutes, small enough
#: that a packet ground-truth entry is still recordable back-to-back with
#: the hybrid one (the ≥10x claim needs both on one machine).
#: ``million_flows`` is the scale ceiling: 100k flows on the same fabric —
#: feasible only under the hybrid backend (the packet engine would need
#: hours), so its default backend is ``hybrid``.
PAPER_SCALE_KW = dict(
    workload="websearch", k=8, load=0.3, n_flows=800, scale=1.0, seed=1
)
MILLION_FLOWS_KW = dict(
    workload="websearch", k=8, load=0.2, n_flows=100_000, scale=0.01, seed=1
)
MILLION_FLOWS_QUICK_KW = dict(MILLION_FLOWS_KW, n_flows=10_000)


def _hybrid_scale_config(strict: bool = False):
    """The scalability-tuned tier split for the bench scenarios: demote
    only persistently hot elephants (the fidelity-tuned defaults demote
    aggressively, which is right for the validation gate and wrong for a
    throughput ceiling — ``repro.hybrid.validate`` gates fidelity, these
    scenarios measure the co-simulation ceiling).  ``strict`` is the
    million-flows variant: at scale=0.01 every flow is sub-BDP, so PFC
    refinement re-simulation and transient-congestion demotion buy no
    fidelity worth their extra fluid/packet passes."""
    from repro.hybrid.backend import HybridConfig

    common = dict(
        mouse_bytes=0, epoch_us=200.0, bg_quantum_bytes=64 * STORM_MTU
    )
    if strict:
        return HybridConfig(
            threshold=0.99, min_link_flows=10, congested_frac=0.9,
            refine_rounds=0, **common
        )
    return HybridConfig(
        threshold=0.98, min_link_flows=8, congested_frac=0.85, **common
    )


def _fct_cell(
    kw: dict, backend: str, strict: bool = False, obs=None
) -> ScenarioResult:
    if backend == "packet":
        from repro.experiments.fct_experiment import run_fct_experiment

        r = run_fct_experiment("fncc", obs=obs, **kw)
        assert r.completed() == kw["n_flows"], "packet cell lost flows"
        return [r.sim], [r.topo]

    from repro.hybrid.backend import run_fct_hybrid
    from repro.metrics.monitors import topo_frame_hops

    cfg = _hybrid_scale_config(strict)
    thr = {"flow": None}.get(backend, cfg.threshold)
    r = run_fct_hybrid("fncc", config=cfg, threshold=thr, obs=obs, **kw)
    assert r.completed() == kw["n_flows"], "hybrid cell lost flows"
    events = sum(
        r.stats.get(k, 0)
        for k in ("classify_events", "fluid_events", "packet_events")
    )
    hops = topo_frame_hops(r.topo) if r.sim is not None else 0
    return (
        [SimpleNamespace(events_dispatched=events)],
        [SimpleNamespace(frame_hops=hops)],
    )


def _paper_scale(backend: str = "packet", obs=None) -> ScenarioResult:
    return _fct_cell(PAPER_SCALE_KW, backend, obs=obs)


#: ``shard_scale`` cell — the sharded-engine scenario (DESIGN.md §11): the
#: paper fabric (k=8, 128 hosts) under the Fig. 14 workload, sized down to
#: seconds-scale so serial (``--shards 1``) and partitioned (``--shards N``)
#: entries are recordable back-to-back.  Identity between the two is pinned
#: by tests/shard/test_identity.py and re-asserted by ``--ab-shards``; the
#: trajectory entries carry ``shards``/``cpu_count`` provenance, so a wall
#: ratio is only a speedup claim when the recording machine had the cores.
SHARD_SCALE_KW = dict(
    workload="websearch", k=8, load=0.3, n_flows=200, scale=0.2, seed=1
)


def _shard_scale(shards: int = 1) -> ScenarioResult:
    if shards <= 1:
        from repro.experiments.fct_experiment import run_fct_experiment

        r = run_fct_experiment("fncc", **SHARD_SCALE_KW)
        assert r.completed() == SHARD_SCALE_KW["n_flows"], "serial cell lost flows"
        return [r.sim], [r.topo]

    from repro.shard import run_sharded_fct

    r = run_sharded_fct("fncc", shards=shards, **SHARD_SCALE_KW)
    assert r.completed == SHARD_SCALE_KW["n_flows"], "sharded cell lost flows"
    # Per-shard dispatch totals legitimately exceed the serial count
    # (injection bounces, unowned-copy ticks — see ShardedRunResult); the
    # merged tx counters are byte-identical to serial, so frame_hops stays
    # the cross-representation throughput metric.
    events = sum(r.events_by_shard.values())
    hops = sum(row[2] for row in r.portstats)
    return (
        [SimpleNamespace(events_dispatched=events)],
        [SimpleNamespace(frame_hops=hops)],
    )


def _million_flows(backend: str = "hybrid", obs=None) -> ScenarioResult:
    return _fct_cell(MILLION_FLOWS_KW, backend, strict=True, obs=obs)


def _million_flows_quick(backend: str = "hybrid", obs=None) -> ScenarioResult:
    return _fct_cell(MILLION_FLOWS_QUICK_KW, backend, strict=True, obs=obs)


SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "fig1_queue": _fig1_queue,
    "fig9_micro": _fig9_micro,
    "fig14_websearch": _fig14_websearch,
    "lbmatrix": _lbmatrix,
    "pause_storm": _pause_storm,
    "sweep": _sweep,
    "shard_scale": _shard_scale,
    "paper_scale": _paper_scale,
    "million_flows": _million_flows,
    "million_flows_quick": _million_flows_quick,
}

#: Scenarios whose callable takes ``jobs`` (the sweep-executor fan-out);
#: all others ignore ``--jobs`` and measure the single-run hot path.
JOBS_SCENARIOS = frozenset({"sweep"})

#: Scenarios whose callable takes ``shards`` (``tools/bench.py
#: --shards``): partitioned-engine scenarios.  Entries record the flag so
#: ``--check`` never gates a sharded entry against a serial one.
SHARDS_SCENARIOS = frozenset({"shard_scale"})

#: Scenarios whose callable takes ``backend`` (``tools/bench.py
#: --backend``); entries record the flag so ``--check`` never gates a
#: hybrid entry against a packet one.
BACKEND_SCENARIOS = frozenset({"paper_scale", "million_flows", "million_flows_quick"})

#: Scenarios whose callable takes ``obs`` (a
#: :class:`repro.obs.RunObservability` bundle): the set ``tools/bench.py
#: --ab-obs``/``--progress`` and ``tools/profile.py --obs`` can observe.
OBS_SCENARIOS = frozenset(
    {"fig14_websearch", "lbmatrix", "paper_scale", "million_flows",
     "million_flows_quick"}
)

#: The default ``--ab-obs`` A/B set: obs-capable, seconds-scale, covers
#: both the FCT pipeline and the LB dispatch path.
OBS_AB_SCENARIOS = ("fig14_websearch", "lbmatrix")

#: The last RunObservability bundle built by :func:`measure_scenario`
#: (``tools/profile.py --obs`` reads it after a profiled run).
LAST_OBS = None


#: Trace categories for harness bundles: the always-cheap set.  ``cc``
#: wraps the per-ack hot path (cost proportional to CC decisions, ~10% of
#: wall on ack-heavy scenarios), so the ``--ab-obs`` wall gate measures
#: the cold-path categories; opt into ``cc`` where the ring matters more
#: than wall time (``tools/profile.py --obs`` does, via categories=None).
BENCH_TRACE_CATEGORIES = ("flow", "pfc", "lb", "hybrid")


def make_obs(label: str, progress: bool = False, tracer: bool = True,
             categories=BENCH_TRACE_CATEGORIES):
    """A registry(+tracer, + optional progress) bundle for harness runs.
    ``categories=None`` enables every trace category (including the
    per-ack ``cc`` hook)."""
    from repro.obs import (
        EventTracer,
        MetricsRegistry,
        ProgressReporter,
        RunObservability,
    )

    return RunObservability(
        registry=MetricsRegistry(),
        tracer=EventTracer(categories=categories) if tracer else None,
        progress=ProgressReporter(label=label) if progress else None,
    )

#: Minutes-scale scenarios: excluded from the no-args default set (run
#: them via ``--scenario``), and measured without the untimed warmup run —
#: at minutes per run the allocator-warmup noise the warmup exists to
#: shave is far below measurement noise anyway.
HEAVY_SCENARIOS = frozenset({"paper_scale", "million_flows"})

#: The no-args ``tools/bench.py`` set: everything that finishes in seconds.
DEFAULT_SCENARIOS = tuple(n for n in SCENARIOS if n not in HEAVY_SCENARIOS)

#: Scenarios exercised by ``tools/bench.py --quick`` (CI smoke).
#: ``pause_storm`` rides along so a PR reintroducing O(backlog) pause
#: transitions blows past the ``--check`` gate instead of slipping through
#: a pause-free smoke set.
QUICK_SCENARIOS = ("fig9_micro", "pause_storm")


def _frame_hops(topos: List[object]) -> int:
    from repro.metrics.monitors import topo_frame_hops

    total = 0
    for topo in topos:
        # Pool-path scenarios pre-sum in the worker (live ports never
        # cross process boundaries) and ship the count on a duck-typed
        # topo object.
        pre = getattr(topo, "frame_hops", None)
        total += pre if pre is not None else topo_frame_hops(topo)
    return total


def measure_scenario(
    name: str,
    repeats: int = 3,
    jobs: int = 1,
    backend: str = "",
    shards: int = 1,
    obs: bool = False,
    progress: bool = False,
) -> Dict[str, float]:
    """Run ``name`` ``repeats`` times (plus one untimed warmup) and return
    the metric dict for one trajectory entry.  ``jobs`` reaches only the
    scenarios in :data:`JOBS_SCENARIOS`; pool startup is deliberately
    *inside* the timed region (it is part of the sweep's wall cost).
    ``backend`` (when non-empty) reaches the :data:`BACKEND_SCENARIOS`;
    others keep the packet hot path.  ``shards`` reaches the
    :data:`SHARDS_SCENARIOS` (``shards=1`` is the serial engine; like pool
    startup, the coordinator's barrier protocol is deliberately inside the
    timed region).  ``obs``/``progress`` attach one
    :class:`repro.obs.RunObservability` bundle to the
    :data:`OBS_SCENARIOS` (re-bound across repeats; it is left on
    :data:`LAST_OBS` for ``tools/profile.py --obs``)."""
    global LAST_OBS
    fn = SCENARIOS[name]
    kwargs = {"jobs": jobs} if name in JOBS_SCENARIOS else {}
    if backend and name in BACKEND_SCENARIOS:
        kwargs["backend"] = backend
    if name in SHARDS_SCENARIOS:
        kwargs["shards"] = shards
    if (obs or progress) and name in OBS_SCENARIOS:
        LAST_OBS = kwargs["obs"] = make_obs(name, progress=progress, tracer=obs)
    if name not in HEAVY_SCENARIOS:
        fn(**kwargs)  # warmup: imports, routing tables, allocator steady state
    walls: List[float] = []
    events = 0
    hops = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        sims, topos = fn(**kwargs)
        walls.append(time.perf_counter() - t0)
        events = sum(s.events_dispatched for s in sims)
        hops = _frame_hops(topos)
    wall = statistics.median(walls)
    out = {
        "wall_s": round(wall, 4),
        "wall_min_s": round(min(walls), 4),
        "events": events,
        "events_per_sec": round(events / wall),
    }
    if hops:
        out["frame_hops"] = hops
        out["frame_hops_per_sec"] = round(hops / wall)
    return out


def measure_all(
    names=None,
    repeats: int = 3,
    jobs: int = 1,
    backend: str = "",
    shards: int = 1,
    obs: bool = False,
    progress: bool = False,
) -> Dict[str, Dict[str, float]]:
    names = list(names) if names is not None else list(DEFAULT_SCENARIOS)
    return {
        name: measure_scenario(
            name, repeats=repeats, jobs=jobs, backend=backend, shards=shards,
            obs=obs, progress=progress,
        )
        for name in names
    }


def speedup(entry: Dict, baseline: Dict) -> Dict[str, float]:
    """Per-scenario wall-time speedup of ``entry`` over ``baseline``
    (identical scenarios, so wall ratio == simulated-work throughput
    ratio)."""
    out = {}
    for name, m in entry.items():
        base = baseline.get(name)
        if base and base.get("wall_s"):
            out[name] = round(base["wall_s"] / m["wall_s"], 3)
    return out
