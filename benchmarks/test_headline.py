"""Bench: the abstract's headline claims, end to end."""

import pytest

from conftest import BENCH_KW
from repro.experiments.headline import run_headline


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark):
    res = benchmark.pedantic(lambda: run_headline(seed=3), **BENCH_KW)

    hp = res["hadoop_p95_reduction"]
    ws = res["websearch_median_reduction"]
    print("\nHeadline (paper -> measured):")
    print(
        f"  Hadoop <100KB p95 reduction: 27.4%/88.9% -> "
        f"hpcc={hp.get('hpcc', float('nan')):.1f}% dcqcn={hp.get('dcqcn', float('nan')):.1f}%"
    )
    print(
        f"  WebSearch >1MB median reduction: 12.4%/42.8% -> "
        f"hpcc={ws.get('hpcc', float('nan')):.1f}% dcqcn={ws.get('dcqcn', float('nan')):.1f}%"
    )
    print(f"  pause frames @400G: {res['pause_frames_400g']}")
    print(f"  utilization @400G: {res['utilization_400g']}")

    # Direction of every headline claim.
    assert hp["dcqcn"] > 0, "FNCC must beat DCQCN on short-flow tails"
    pf = res["pause_frames_400g"]
    assert pf["fncc"] <= pf["hpcc"] and pf["fncc"] <= pf["dcqcn"]
    assert res["utilization_400g"]["fncc"] > 0.85
