"""Bench: Figs. 1b-d — queue depth vs link rate, FNCC/HPCC/DCQCN.

Regenerates the motivation plot's data and asserts the paper's shape:
queues deepen with rate for the sluggish schemes, FNCC stays shallowest.
"""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig1_queue_motivation import run_fig1_queue
from repro.units import KB


@pytest.mark.benchmark(group="fig1")
def test_fig1_queue_vs_rate(benchmark, paper_scale):
    rates = (100.0, 200.0, 400.0)
    duration = 600.0 if not paper_scale else 1200.0

    def scenario():
        return run_fig1_queue(rates=rates, duration_us=duration)

    results = benchmark.pedantic(scenario, **BENCH_KW)

    print("\nFig 1b-d — peak queue at congestion point (KB)")
    print(f"{'rate':>8} {'fncc':>9} {'hpcc':>9} {'dcqcn':>9}")
    for rate, per_cc in results.items():
        print(
            f"{rate:6.0f}G  "
            f"{per_cc['fncc'].peak_queue_bytes / KB:9.1f} "
            f"{per_cc['hpcc'].peak_queue_bytes / KB:9.1f} "
            f"{per_cc['dcqcn'].peak_queue_bytes / KB:9.1f}"
        )

    for rate, per_cc in results.items():
        fncc = per_cc["fncc"].peak_queue_bytes
        assert fncc < per_cc["hpcc"].peak_queue_bytes, f"@{rate}G"
        assert fncc < per_cc["dcqcn"].peak_queue_bytes, f"@{rate}G"
    # Deeper queues at higher rates for the sluggish schemes (Figs. 1b-d).
    assert (
        results[400.0]["dcqcn"].peak_queue_bytes
        > results[100.0]["dcqcn"].peak_queue_bytes
    )
