"""Bench: Fig. 13e — the four-flow fairness staircase."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig13_fairness import run_fairness


@pytest.mark.benchmark(group="fig13e")
def test_fig13e_fairness_staircase(benchmark, paper_scale):
    epoch_us = 1000.0 if not paper_scale else 100_000.0

    def scenario():
        return run_fairness("fncc", n_flows=4, epoch_us=epoch_us, sample_us=10.0)

    res = benchmark.pedantic(scenario, **BENCH_KW)

    print("\nFig 13e — FNCC fairness staircase")
    print(f"{'epoch':>6} {'active':>7} {'fair':>7} {'jain':>6}")
    for t in res.epoch_probe_times():
        active = res.active_flows_at(t)
        print(
            f"{t / res.epoch_ps:6.1f} {len(active):>7} "
            f"{res.fair_share_at(t):7.1f} {res.jain_index_at(t):6.3f}"
        )

    for t in res.epoch_probe_times():
        active = res.active_flows_at(t)
        jain = res.jain_index_at(t)
        assert jain > 0.9, f"unfair at t={t} (jain={jain:.3f})"
        fair = res.fair_share_at(t)
        total = sum(res.rates[i].value_at(t) for i in active)
        # Aggregate near the bottleneck capacity (eta-scaled).
        assert total == pytest.approx(fair * len(active), rel=0.3)
