"""Bench: Figs. 13a-d — congestion location study with the LHCS ablation."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig13_congestion_location import (
    queue_reduction_pct,
    run_fig13,
    run_location,
)
from repro.units import KB, us


@pytest.mark.benchmark(group="fig13")
def test_fig13_congestion_location(benchmark):
    def scenario():
        return run_fig13(duration_us=800.0)

    results = benchmark.pedantic(scenario, **BENCH_KW)

    print("\nFig 13a-c — FNCC queue-depth reduction vs HPCC (paper: 37.5/29.5/8.4/38.5%)")
    for loc, cells in results.items():
        hp, fn = cells["hpcc"], cells["fncc"]
        msg = (
            f"{loc:>7}: HPCC={hp.peak_queue_bytes / KB:7.1f}KB "
            f"FNCC={fn.peak_queue_bytes / KB:7.1f}KB "
            f"reduction={queue_reduction_pct(hp, fn):5.1f}% "
            f"util(F/H)={fn.utilization.mean_after(us(100)):.3f}/"
            f"{hp.utilization.mean_after(us(100)):.3f}"
        )
        if "fncc_nolhcs" in cells:
            nl = cells["fncc_nolhcs"]
            msg += f" | no-LHCS reduction={queue_reduction_pct(hp, nl):5.1f}%"
        print(msg)

    for loc, cells in results.items():
        hp, fn = cells["hpcc"], cells["fncc"]
        assert fn.peak_queue_bytes < hp.peak_queue_bytes, loc
        # Utilization at least comparable (within 5%).
        assert (
            fn.utilization.mean_after(us(100))
            >= hp.utilization.mean_after(us(100)) - 0.05
        ), loc
    # LHCS adds gain on the last hop over FNCC-without-LHCS.
    last = results["last"]
    assert (
        last["fncc"].peak_queue_bytes <= last["fncc_nolhcs"].peak_queue_bytes
    )


@pytest.mark.benchmark(group="fig13")
def test_fig13d_lhcs_rate_snap(benchmark):
    """Fig. 13d: with LHCS the joining flows snap to fair*beta quickly."""

    def scenario():
        return run_location("fncc", "last", duration_us=600.0)

    res = benchmark.pedantic(scenario, **BENCH_KW)
    fair_beta = 100.0 / 2 * 0.9
    # Within ~15 RTTs of the 300 us join both flows sit near fair*beta.
    t = us(500)
    r0 = res.rates[0].value_at(t)
    r1 = res.rates[1].value_at(t)
    print(f"\nFig 13d — rates at 500us: flow0={r0:.1f} flow1={r1:.1f} (fair*beta={fair_beta:.1f})")
    assert r0 == pytest.approx(fair_beta, rel=0.35)
    assert r1 == pytest.approx(fair_beta, rel=0.35)
