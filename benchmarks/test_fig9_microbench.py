"""Bench: Fig. 9 — the full micro-benchmark (queue, response, convergence,
utilization) for all four schemes at 100/200/400 Gb/s."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig9_microbench import (
    convergence_time_us,
    response_time_us,
    run_fig9,
)
from repro.units import KB, us


@pytest.mark.benchmark(group="fig9")
def test_fig9_microbenchmark(benchmark, paper_scale):
    rates = (100.0, 200.0, 400.0) if paper_scale else (100.0, 400.0)

    def scenario():
        return run_fig9(rates=rates, duration_us=800.0)

    results = benchmark.pedantic(scenario, **BENCH_KW)

    for rate, per_cc in results.items():
        print(f"\nFig 9 @ {rate:.0f}Gbps")
        print(f"{'cc':>7} {'peakQ(KB)':>10} {'respond(us)':>12} {'converge(us)':>13} {'util':>6} {'pauses':>7}")
        for cc, r in per_cc.items():
            resp = response_time_us(r)
            conv = convergence_time_us(r)
            print(
                f"{cc:>7} {r.peak_queue_bytes / KB:10.1f} "
                f"{resp if resp is not None else -1:12.1f} "
                f"{conv if conv is not None else -1:13.1f} "
                f"{r.utilization.mean_after(us(100)):6.3f} {r.pause_frames:7d}"
            )

    for rate, per_cc in results.items():
        # Fig 9a/c/e: FNCC shallowest queue.
        assert per_cc["fncc"].peak_queue_bytes == min(
            r.peak_queue_bytes for r in per_cc.values()
        ), f"@{rate}G"
        # Fig 9b/d/f: FNCC first to respond; RoCC last (or unresponsive).
        resp = {cc: response_time_us(r) for cc, r in per_cc.items()}
        assert resp["fncc"] < resp["hpcc"] < resp["dcqcn"], f"@{rate}G"
        # Fig 9g/h: FNCC keeps utilization high.
        assert per_cc["fncc"].utilization.mean_after(us(100)) > 0.85, f"@{rate}G"
