"""Bench: Fig. 14 — WebSearch FCT slowdown on the fat-tree at 50% load."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fct_experiment import format_panel
from repro.experiments.fig14_websearch import run_fig14
from repro.metrics.fct import PERCENTILE_COLUMNS


@pytest.mark.benchmark(group="fig14")
def test_fig14_websearch_fct(benchmark, paper_scale):
    kwargs = (
        dict(k=4, n_flows=200, scale=0.1, seed=1)
        if not paper_scale
        else dict(k=8, n_flows=2000, scale=1.0, seed=1)
    )

    def scenario():
        return run_fig14(**kwargs)

    results = benchmark.pedantic(scenario, **BENCH_KW)

    for col in PERCENTILE_COLUMNS:
        print("\n" + format_panel(results, col, f"Fig 14 ({col}) — WebSearch @50%"))

    for cc, r in results.items():
        assert r.completed() == kwargs["n_flows"], f"{cc} lost flows"
    # Whole-workload comparison: FNCC <= HPCC < DCQCN on the tails.
    p95 = {cc: r.table.aggregate("p95") for cc, r in results.items()}
    avg = {cc: r.table.aggregate("average") for cc, r in results.items()}
    print(f"\naggregate p95: {p95}\naggregate avg: {avg}")
    assert avg["fncc"] <= avg["hpcc"] * 1.05
    assert p95["fncc"] < p95["dcqcn"]
    assert avg["fncc"] < avg["dcqcn"]
