"""Bench: Fig. 3 — pause-frame counts at 200/400 Gb/s."""

import pytest

from conftest import BENCH_KW
from repro.experiments.fig3_pause_frames import run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_pause_frames(benchmark, paper_scale):
    duration = 600.0 if not paper_scale else 1500.0

    def scenario():
        return run_fig3(duration_us=duration)

    counts = benchmark.pedantic(scenario, **BENCH_KW)

    print("\nFig 3 — pause frames at the congestion point")
    print(f"{'rate':>8} {'dcqcn':>7} {'hpcc':>7} {'fncc':>7}")
    for rate, per_cc in counts.items():
        print(
            f"{rate:6.0f}G  {per_cc['dcqcn']:7d} {per_cc['hpcc']:7d} {per_cc['fncc']:7d}"
        )

    for rate, per_cc in counts.items():
        assert per_cc["fncc"] <= per_cc["hpcc"], f"@{rate}G"
        assert per_cc["fncc"] <= per_cc["dcqcn"], f"@{rate}G"
    # At 400G the sluggish schemes must actually hit PFC.
    assert counts[400.0]["dcqcn"] > 0
