"""Bench: paper-scale (k=8, 128 hosts) cross-validation via the flow-level
model, justifying DESIGN.md's scaling substitution."""

import pytest

from conftest import BENCH_KW
from repro.experiments.paper_scale import run_flow_level, shape_correlation


@pytest.mark.benchmark(group="paper-scale")
def test_paper_scale_cross_validation(benchmark, paper_scale):
    n_flows = 2000 if paper_scale else 800

    def scenario():
        return {
            "k8_full": run_flow_level(k=8, n_flows=n_flows, scale=1.0, seed=1),
            "k4_scaled": run_flow_level(k=4, n_flows=n_flows, scale=0.1, seed=1),
        }

    tables = benchmark.pedantic(scenario, **BENCH_KW)
    full, scaled = tables["k8_full"], tables["k4_scaled"]
    rho = shape_correlation(full, scaled)
    print(
        f"\nk=8 full-size vs k=4 x0.1 (flow-level, {n_flows} WebSearch flows @50%):"
        f"\n  overall avg slowdown: {full.aggregate('average'):.2f} vs {scaled.aggregate('average'):.2f}"
        f"\n  overall p95 slowdown: {full.aggregate('p95'):.2f} vs {scaled.aggregate('p95'):.2f}"
        f"\n  per-bin p95 rank correlation: {rho:.2f}"
    )
    assert rho > 0.4, "scaling must preserve the per-bin shape"
    assert full.aggregate("average") >= 1.0
