"""Identical configs must produce bit-identical results (DESIGN.md §4)."""

import pytest

from repro.experiments.common import run_microbench
from repro.experiments.fct_experiment import run_fct_experiment


class TestMicrobenchDeterminism:
    def test_same_seed_same_series(self):
        a = run_microbench("fncc", duration_us=300.0, seed=9)
        b = run_microbench("fncc", duration_us=300.0, seed=9)
        assert a.queue.values == b.queue.values
        assert a.rates[0].values == b.rates[0].values
        assert a.pause_frames == b.pause_frames
        assert a.sim.events_dispatched == b.sim.events_dispatched

    def test_dcqcn_ecn_randomness_is_seeded(self):
        a = run_microbench("dcqcn", duration_us=300.0, seed=9)
        b = run_microbench("dcqcn", duration_us=300.0, seed=9)
        assert a.queue.values == b.queue.values

    def test_different_seed_differs_for_stochastic_cc(self):
        a = run_microbench("dcqcn", duration_us=400.0, seed=1)
        b = run_microbench("dcqcn", duration_us=400.0, seed=2)
        # RED marking draws differ -> queue trajectories differ.
        assert a.queue.values != b.queue.values


class TestWorkloadDeterminism:
    def test_fct_experiment_reproducible(self):
        a = run_fct_experiment("fncc", workload="hadoop", n_flows=60, seed=4)
        b = run_fct_experiment("fncc", workload="hadoop", n_flows=60, seed=4)
        sa = [(r.flow.flow_id, r.fct_ps) for r in a.collector.records]
        sb = [(r.flow.flow_id, r.fct_ps) for r in b.collector.records]
        assert sa == sb

    def test_seed_changes_workload(self):
        a = run_fct_experiment("fncc", workload="hadoop", n_flows=60, seed=4)
        b = run_fct_experiment("fncc", workload="hadoop", n_flows=60, seed=5)
        sa = [r.flow.size_bytes for r in a.collector.records]
        sb = [r.flow.size_bytes for r in b.collector.records]
        assert sa != sb
