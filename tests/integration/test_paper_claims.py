"""The paper's qualitative claims, asserted as regression tests.

These assert *shape*, not absolute numbers (our substrate is a Python
simulator, not the authors' OMNeT++ testbed): who wins, orderings, and
directions of effects.  EXPERIMENTS.md records the measured magnitudes.
"""

import pytest

from repro.experiments.common import run_microbench
from repro.experiments.fig9_microbench import convergence_time_us, response_time_us
from repro.units import KB, us

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def micro100():
    return {
        cc: run_microbench(cc, link_rate_gbps=100.0, duration_us=700.0, seed=1)
        for cc in ("fncc", "hpcc", "dcqcn", "rocc")
    }


class TestFig9QueueOrdering:
    def test_fncc_shallowest_queue(self, micro100):
        fncc = micro100["fncc"].peak_queue_bytes
        assert fncc < micro100["hpcc"].peak_queue_bytes
        assert fncc < micro100["dcqcn"].peak_queue_bytes
        assert fncc < micro100["rocc"].peak_queue_bytes

    def test_hpcc_beats_dcqcn(self, micro100):
        assert micro100["hpcc"].peak_queue_bytes < micro100["dcqcn"].peak_queue_bytes


class TestFig9ResponseOrdering:
    def test_fncc_first_to_slow_down(self, micro100):
        r = {cc: response_time_us(m) for cc, m in micro100.items()}
        assert r["fncc"] is not None and r["hpcc"] is not None
        assert r["fncc"] < r["hpcc"], "sub-RTT notification must beat HPCC"
        assert r["hpcc"] < r["dcqcn"], "INT-driven HPCC must beat DCQCN"

    def test_rocc_slowest_or_unresponsive(self, micro100):
        r_rocc = response_time_us(micro100["rocc"])
        r_dcqcn = response_time_us(micro100["dcqcn"])
        assert r_rocc is None or r_rocc >= r_dcqcn

    def test_fncc_converges_to_fair_rate(self, micro100):
        conv = convergence_time_us(micro100["fncc"])
        assert conv is not None

    def test_fncc_converges_promptly(self, micro100):
        # FNCC dips harder first (earlier notification) and settles into the
        # fair band within ~8 RTTs of the join; HPCC lands in the same
        # window, so assert promptness rather than a strict ordering that
        # the band-hold metric cannot resolve.
        c_f = convergence_time_us(micro100["fncc"])
        assert c_f is not None
        assert c_f <= 300.0 + 100.0  # joined at 300 us; ~8 RTTs of slack


class TestFig9Utilization:
    def test_fncc_keeps_bottleneck_busy(self, micro100):
        assert micro100["fncc"].utilization.mean_after(us(100)) > 0.85

    def test_fncc_at_least_hpcc_level(self, micro100):
        u_f = micro100["fncc"].utilization.mean_after(us(100))
        u_h = micro100["hpcc"].utilization.mean_after(us(100))
        assert u_f >= u_h - 0.05


class TestRateRobustness:
    """Figs. 1/9: the FNCC advantage persists at 200 and 400 Gb/s."""

    @pytest.mark.parametrize("rate", [200.0, 400.0])
    def test_fncc_shallowest_at_high_rates(self, rate):
        peaks = {}
        for cc in ("fncc", "hpcc", "dcqcn"):
            peaks[cc] = run_microbench(
                cc, link_rate_gbps=rate, duration_us=600.0, seed=1
            ).peak_queue_bytes
        assert peaks["fncc"] < peaks["hpcc"] < peaks["dcqcn"]


class TestFig3PauseFrames:
    def test_fncc_fewest_pauses_at_400g(self):
        counts = {}
        for cc in ("fncc", "hpcc", "dcqcn"):
            counts[cc] = run_microbench(
                cc, link_rate_gbps=400.0, duration_us=600.0, seed=1
            ).pause_frames
        assert counts["fncc"] <= counts["hpcc"]
        assert counts["fncc"] <= counts["dcqcn"]
        # The scenario is severe enough that somebody pauses.
        assert max(counts.values()) > 0


class TestFig13Lhcs:
    def test_lhcs_cuts_last_hop_queue(self):
        from repro.experiments.fig13_congestion_location import run_location

        with_ = run_location("fncc", "last", duration_us=600.0)
        without = run_location("fncc", "last", duration_us=600.0, lhcs_enabled=False)
        hpcc = run_location("hpcc", "last", duration_us=600.0)
        assert with_.peak_queue_bytes < hpcc.peak_queue_bytes
        assert with_.peak_queue_bytes <= without.peak_queue_bytes

    def test_fncc_wins_at_every_location(self):
        from repro.experiments.fig13_congestion_location import run_location

        for loc in ("first", "middle", "last"):
            fncc = run_location("fncc", loc, duration_us=600.0)
            hpcc = run_location("hpcc", loc, duration_us=600.0)
            assert fncc.peak_queue_bytes < hpcc.peak_queue_bytes, loc
