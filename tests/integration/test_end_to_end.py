"""End-to-end sanity for every CC scheme on every topology family."""

import pytest

from helpers import make_dumbbell, run_one_flow
from repro.experiments.common import build_cc_env, launch_flows
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.fattree import fattree
from repro.topo.jellyfish import jellyfish
from repro.topo.star import star
from repro.traffic.generator import incast_flows, permutation_flows
from repro.transport.flow import Flow
from repro.units import KB, MB, us

ALL_CCS = ["fncc", "hpcc", "dcqcn", "rocc", "timely", "swift"]


class TestSingleFlowAllCcs:
    @pytest.mark.parametrize("cc", ALL_CCS)
    def test_flow_completes(self, sim, cc):
        topo, env = make_dumbbell(sim, cc=cc)
        rqp = run_one_flow(sim, topo, env, size_bytes=1 * MB)
        assert rqp.completed

    @pytest.mark.parametrize("cc", ALL_CCS)
    def test_no_drops_with_pfc(self, sim, cc):
        topo, env = make_dumbbell(sim, cc=cc)
        run_one_flow(sim, topo, env, size_bytes=1 * MB)
        assert sum(sw.drops for sw in topo.switches) == 0


class TestTwoElephants:
    @pytest.mark.parametrize("cc", ["fncc", "hpcc", "dcqcn"])
    def test_both_finish_and_share(self, sim, cc):
        topo, env = make_dumbbell(sim, cc=cc)
        recv = topo.hosts[-1].host_id
        flows = [Flow(0, 0, recv, 4 * MB), Flow(1, 1, recv, 4 * MB, start_ps=us(50))]
        launch_flows(topo, flows, env)
        sim.run(until=us(30_000))
        assert topo.hosts[recv].receivers[0].completed
        assert topo.hosts[recv].receivers[1].completed


class TestIncastOnStar:
    @pytest.mark.parametrize("cc", ["fncc", "hpcc", "dcqcn"])
    def test_8_to_1_lossless(self, sim, cc):
        env = build_cc_env(cc)
        topo = star(
            sim,
            9,
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(1),
            cnp_enabled=env.cnp_enabled,
        )
        env.post_install(topo)
        col = FctCollector(topo)
        flows = incast_flows(range(8), 8, 200 * KB)
        launch_flows(topo, flows, env)
        sim.run(until=us(5000))
        assert col.completed() == 8
        assert sum(sw.drops for sw in topo.switches) == 0


class TestFatTreePermutation:
    def test_permutation_all_complete(self, sim):
        env = build_cc_env("fncc")
        topo = fattree(
            sim, k=4, switch_config=env.switch_config, seeds=SeedSequenceFactory(2)
        )
        col = FctCollector(topo)
        flows = permutation_flows(
            range(len(topo.hosts)), 200 * KB, SeedSequenceFactory(3)
        )
        launch_flows(topo, flows, env)
        sim.run(until=us(10_000))
        assert col.completed() == len(topo.hosts)

    def test_cross_pod_flow_uses_symmetric_path(self, sim):
        """The FNCC sender must see a stable per-hop INT vector — only
        possible if ACKs retrace the data path (6 links -> 3 switch hops)."""
        env = build_cc_env("fncc")
        topo = fattree(
            sim, k=4, switch_config=env.switch_config, seeds=SeedSequenceFactory(2)
        )
        a = topo.node("h_0_0_0").host_id
        b = topo.node("h_3_1_1").host_id
        flow = Flow(0, a, b, 1 * MB)
        qps = launch_flows(topo, [flow], env)
        sim.run(until=us(5000))
        cc = qps[0].cc
        assert topo.hosts[b].receivers[0].completed
        assert len(cc.prev_records) == 5  # ToR, agg, core, agg, ToR


class TestJellyfishSpanningTrees:
    def test_flow_over_spanning_tree_routing(self, sim):
        env = build_cc_env("fncc")
        topo = jellyfish(
            sim,
            n_switches=8,
            switch_degree=4,
            hosts_per_switch=1,
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(4),
        )
        col = FctCollector(topo)
        flows = [Flow(i, i, (i + 3) % 8, 300 * KB) for i in range(8)]
        launch_flows(topo, flows, env)
        sim.run(until=us(10_000))
        assert col.completed() == 8


class TestConservation:
    @pytest.mark.parametrize("cc", ["fncc", "hpcc", "dcqcn"])
    def test_every_byte_delivered_exactly_once(self, sim, cc):
        topo, env = make_dumbbell(sim, cc=cc, n_senders=3)
        recv = topo.hosts[-1].host_id
        sizes = [777_777, 1_234_567, 2_000_000]
        flows = [Flow(i, i, recv, s) for i, s in enumerate(sizes)]
        launch_flows(topo, flows, env)
        sim.run(until=us(50_000))
        for i, s in enumerate(sizes):
            rqp = topo.hosts[recv].receivers[i]
            assert rqp.completed
            assert rqp.rcv_nxt == s
