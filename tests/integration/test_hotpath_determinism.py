"""Determinism regression guard for the hot-path rewrite (single-event
link pipeline, event free list, packet pooling).

Two runs of the same seeded scenario must agree on *everything* the
engine/port rewrite could perturb: dispatch counts, FCT aggregates, and
PFC pause-frame counts.  See DESIGN.md §determinism."""

from repro.experiments.common import run_microbench
from repro.experiments.fct_experiment import run_fct_experiment
from repro.metrics.monitors import pause_frame_count


def _micro_fingerprint(result):
    return {
        "events": result.sim.events_dispatched,
        "pause_frames": result.pause_frames,
        "queue": tuple(result.queue.values),
        "rates": {
            fid: tuple(series.values) for fid, series in result.rates.items()
        },
        "tx": tuple(
            p.stats.tx_packets
            for sw in result.topo.switches
            for p in sw.ports
        ),
    }


class TestMicrobenchDeterminism:
    def test_fncc_fingerprint_identical_across_runs(self):
        a = run_microbench("fncc", duration_us=400.0, seed=11)
        b = run_microbench("fncc", duration_us=400.0, seed=11)
        assert _micro_fingerprint(a) == _micro_fingerprint(b)

    def test_pfc_heavy_run_identical(self):
        # A tight XOFF forces real pause/resume traffic through the
        # uncommit/recommit path; counts must still be bit-identical.
        a = run_microbench("fncc", duration_us=400.0, seed=3, pfc_xoff=40_000)
        b = run_microbench("fncc", duration_us=400.0, seed=3, pfc_xoff=40_000)
        assert a.pause_frames > 0  # the scenario actually exercises PFC
        assert _micro_fingerprint(a) == _micro_fingerprint(b)


class TestFctDeterminism:
    def test_fct_aggregates_and_pauses_identical(self):
        a = run_fct_experiment("fncc", workload="websearch", n_flows=80, seed=7)
        b = run_fct_experiment("fncc", workload="websearch", n_flows=80, seed=7)
        fct_a = sorted((r.flow.flow_id, r.fct_ps) for r in a.collector.records)
        fct_b = sorted((r.flow.flow_id, r.fct_ps) for r in b.collector.records)
        assert fct_a == fct_b
        assert a.sim.events_dispatched == b.sim.events_dispatched

    def test_pause_counts_identical(self):
        # Small buffers + tight XOFF to actually generate pauses.
        kw = dict(
            workload="websearch", n_flows=60, seed=5, pfc_xoff=30_000
        )
        a = run_fct_experiment("fncc", **kw)
        b = run_fct_experiment("fncc", **kw)
        # pause counts per switch, order-sensitive
        pa = [sw.total_pause_frames() for sw in a_topo_switches(a)]
        pb = [sw.total_pause_frames() for sw in a_topo_switches(b)]
        assert pa == pb


def a_topo_switches(result):
    # FctResult does not expose the topology directly; the collector does.
    return result.collector.topo.switches
