"""Stress & failure-injection: random mixed traffic, loss recovery without
PFC, and cross-CC coexistence."""

import random

import pytest

from helpers import make_dumbbell
from repro.experiments.common import build_cc_env, launch_flows
from repro.metrics.fct import FctCollector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedSequenceFactory
from repro.topo.fattree import fattree
from repro.topo.star import star
from repro.transport.flow import Flow
from repro.transport.sender import TransportConfig
from repro.units import KB, MB, us


class TestRandomMixedTraffic:
    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_fattree_random_mesh_conserves_all_bytes(self, seed):
        rng = random.Random(seed)
        sim = Simulator()
        env = build_cc_env("fncc")
        topo = fattree(
            sim, k=4, switch_config=env.switch_config, seeds=SeedSequenceFactory(seed)
        )
        col = FctCollector(topo)
        n_hosts = len(topo.hosts)
        flows = []
        for i in range(40):
            src = rng.randrange(n_hosts)
            dst = rng.randrange(n_hosts - 1)
            if dst >= src:
                dst += 1
            flows.append(
                Flow(i, src, dst, rng.randrange(1 * KB, 500 * KB), start_ps=us(rng.uniform(0, 100)))
            )
        launch_flows(topo, flows, env)
        sim.run(until=us(50_000))
        assert col.completed() == 40
        for rec in col.records:
            assert rec.slowdown >= 0.999  # never faster than ideal
        assert sum(sw.drops for sw in topo.switches) == 0


class TestLossRecovery:
    def test_no_pfc_small_buffer_recovers_via_go_back_n(self, sim):
        """PFC off + tiny switch buffer: drops happen, go-back-N heals."""
        env = build_cc_env(
            "fncc", pfc_enabled=False, buffer_bytes=40 * KB
        )
        topo = star(
            sim,
            5,
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(1),
            transport_config=TransportConfig(retx_timeout_ps=us(100)),
        )
        col = FctCollector(topo)
        flows = [Flow(i, i, 4, 500 * KB) for i in range(4)]  # 4-to-1 incast
        launch_flows(topo, flows, env)
        sim.run(until=us(100_000))
        assert sum(sw.drops for sw in topo.switches) > 0, "scenario must drop"
        assert col.completed() == 4, "every flow must still finish"
        for i in range(4):
            assert topo.hosts[4].receivers[i].rcv_nxt == 500 * KB

    def test_retransmissions_counted(self, sim):
        env = build_cc_env("fncc", pfc_enabled=False, buffer_bytes=40 * KB)
        topo = star(
            sim,
            5,
            switch_config=env.switch_config,
            seeds=SeedSequenceFactory(2),
            transport_config=TransportConfig(retx_timeout_ps=us(100)),
        )
        flows = [Flow(i, i, 4, 500 * KB) for i in range(4)]
        qps = launch_flows(topo, flows, env)
        sim.run(until=us(100_000))
        assert sum(qp.timeouts for qp in qps.values()) > 0


class TestCoexistence:
    def test_mixed_cc_flows_share_one_fabric(self, sim):
        """Different flows can run different CC modules on the same fabric
        (switch config is FNCC's; HPCC flows simply see no usable INT on
        their data path and fall back to their seeded window)."""
        from repro.cc import make_cc_factory

        topo, env = make_dumbbell(sim, cc="fncc", n_senders=2)
        recv = topo.hosts[-1].host_id
        f0 = Flow(0, 0, recv, 2 * MB)
        f1 = Flow(1, 1, recv, 2 * MB)
        topo.hosts[recv].register_receiver(f0)
        topo.hosts[recv].register_receiver(f1)
        fncc = env.cc_factory(f0, topo.hosts[0])
        swift = make_cc_factory("swift")(f1, topo.hosts[1])
        topo.hosts[0].start_flow(f0, fncc, topo.base_rtt_ps(0, recv))
        topo.hosts[1].start_flow(f1, swift, topo.base_rtt_ps(1, recv))
        sim.run(until=us(30_000))
        assert topo.hosts[recv].receivers[0].completed
        assert topo.hosts[recv].receivers[1].completed

    def test_many_small_flows_one_host_pair(self, sim):
        """QP multiplexing: 50 concurrent flows between one pair."""
        topo, env = make_dumbbell(sim, cc="fncc", n_senders=1)
        recv = topo.hosts[-1].host_id
        flows = [Flow(i, 0, recv, 20 * KB) for i in range(50)]
        launch_flows(topo, flows, env)
        sim.run(until=us(20_000))
        done = sum(1 for r in topo.hosts[recv].receivers.values() if r.completed)
        assert done == 50
