"""MetricsRegistry: instruments, pull collectors, snapshot schema, worker
merge semantics and the per-run ownership rule."""

import pytest

from repro.exec import SweepExecutor
from repro.experiments.fct_experiment import compare_ccs_sweep, run_fct_summary
from repro.obs import MetricsRegistry, RunObservability, merge_snapshots


class TestInstruments:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(7.5)
        h = reg.histogram("h", bounds=[1.0, 10.0])
        for v in (0.5, 5.0, 50.0, 1.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7.5
        # upper-inclusive buckets: 0.5 and 1.0 in the first, 5.0 in the
        # second, 50.0 overflows.
        assert snap["histograms"]["h"] == {
            "bounds": [1.0, 10.0],
            "counts": [2, 1, 1],
        }
        assert snap["meta"] == {"runs": 1}

    def test_instruments_are_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z", [1]) is reg.histogram("z", [1])

    def test_histogram_rejects_unsorted_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", bounds=[2.0, 1.0])

    def test_callback_gauge_reads_at_snapshot_time(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("live", fn=lambda: box["v"])
        assert reg.snapshot()["gauges"]["live"] == 1
        box["v"] = 9
        assert reg.snapshot()["gauges"]["live"] == 9


class TestRunBinding:
    def test_bind_sim_is_per_run(self, sim):
        from repro.sim.engine import Simulator

        reg = MetricsRegistry()
        reg.bind_sim(sim)
        reg.bind_sim(sim)  # same simulator: idempotent
        with pytest.raises(ValueError):
            reg.bind_sim(Simulator())

    def test_reset_run_bindings_allows_rebuild(self, sim):
        from repro.sim.engine import Simulator

        reg = MetricsRegistry()
        reg.counter("kept").inc(3)
        reg.bind_sim(sim)
        reg.reset_run_bindings()
        reg.bind_sim(Simulator())  # rebuilt fabric of the same run
        snap = reg.snapshot()
        assert snap["counters"]["kept"] == 3  # push instruments survive

    def test_attach_rebinds_on_new_sim(self, sim):
        from repro.sim.engine import Simulator

        class _Topo:
            hosts = ()
            switches = ()

        obs = RunObservability(registry=MetricsRegistry())
        obs.attach(sim, _Topo())
        sim2 = Simulator()
        obs.attach(sim2, _Topo())  # must not raise; drops the old collectors
        snap = obs.snapshot()
        assert snap["counters"]["engine.events_dispatched"] == 0

    def test_run_snapshot_keys(self):
        obs = RunObservability(registry=MetricsRegistry())
        run_fct_summary(
            "fncc", workload="websearch", n_flows=30, seed=2,
            max_horizon_ms=30.0, obs=obs,
        )
        snap = obs.snapshot()
        for key in (
            "engine.events_dispatched",
            "ports.tx_packets",
            "ports.tx_bytes",
            "ports.rx_packets",
            "pfc.pause_sent",
            "flows.completed",
        ):
            assert key in snap["counters"], key
        assert snap["counters"]["engine.events_dispatched"] > 0
        assert snap["counters"]["flows.completed"] == 30
        assert "engine.now_ps" in snap["gauges"]
        assert "ports.max_qlen" in snap["gauges"]


class TestMergeSnapshots:
    def test_merge_semantics(self):
        a = {
            "counters": {"c": 2, "only_a": 1},
            "gauges": {"g": 5},
            "histograms": {"h": {"bounds": [1.0], "counts": [1, 0]}},
            "meta": {"runs": 1},
        }
        b = {
            "counters": {"c": 3},
            "gauges": {"g": 9, "only_b": 2},
            "histograms": {"h": {"bounds": [1.0], "counts": [0, 4]}},
            "meta": {"runs": 2},
        }
        m = merge_snapshots([a, None, b])
        assert m["counters"] == {"c": 5, "only_a": 1}
        assert m["gauges"] == {"g": 9, "only_b": 2}
        assert m["histograms"]["h"] == {"bounds": [1.0], "counts": [1, 4]}
        assert m["meta"]["runs"] == 3

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = {"histograms": {"h": {"bounds": [1.0], "counts": [0, 0]}}}
        b = {"histograms": {"h": {"bounds": [2.0], "counts": [0, 0]}}}
        with pytest.raises(ValueError):
            merge_snapshots([a, b])


class TestWorkerSnapshots:
    """``obs_snapshot=True`` builds the registry inside the worker; the
    snapshot rides home on the summary and merges across workers with the
    same totals serial execution produces."""

    KW = dict(
        ccs=("fncc", "dcqcn"),
        workload="websearch",
        n_flows=30,
        seed=2,
        max_horizon_ms=30.0,
        obs_snapshot=True,
    )

    def test_serial_and_pooled_merge_identically(self):
        serial = compare_ccs_sweep(jobs=1, **self.KW)
        pooled = compare_ccs_sweep(
            executor=SweepExecutor(jobs=2), **self.KW
        )
        for results in (serial, pooled):
            for s in results.values():
                assert s.obs_snapshot is not None
                assert s.obs_snapshot["counters"]["flows.completed"] == 30
        m_serial = merge_snapshots(s.obs_snapshot for s in serial.values())
        m_pooled = merge_snapshots(s.obs_snapshot for s in pooled.values())
        # Gauge engine.now_ps reflects each run's final clock; counters and
        # meta must agree exactly across execution modes.
        assert m_serial["counters"] == m_pooled["counters"]
        assert m_serial["meta"]["runs"] == m_pooled["meta"]["runs"] == 2
