"""ProgressReporter: heartbeat format, rate limiting, and the wired-in
drive-loop path."""

import io

from repro.experiments.fct_experiment import run_fct_experiment
from repro.obs import MetricsRegistry, ProgressReporter, RunObservability
from repro.units import us


class TestHeartbeat:
    def test_forced_tick_prints_rate_and_eta(self, sim):
        out = io.StringIO()
        prog = ProgressReporter(label="cell", stream=out)
        sim.schedule(us(10), lambda arg: None)
        sim.run(until=us(20))
        assert prog.tick(
            sim, completed=3, total=10, horizon_ps=us(100), force=True
        )
        line = out.getvalue()
        assert line.startswith("[progress] cell ")
        assert "events/s=" in line
        assert "eta=" in line
        assert "flows=3/10" in line
        # sim=now/horizon with a percent readout.
        assert "sim=" in line and "%" in line
        assert prog.heartbeats == 1

    def test_wall_clock_rate_limited(self, sim):
        out = io.StringIO()
        prog = ProgressReporter(stream=out, interval_s=3600.0)
        assert not prog.tick(sim), "within the interval: no line"
        assert prog.tick(sim, force=True)
        assert not prog.tick(sim)
        assert prog.heartbeats == 1
        assert out.getvalue().count("\n") == 1

    def test_zero_interval_prints_every_tick(self, sim):
        out = io.StringIO()
        prog = ProgressReporter(stream=out, interval_s=0.0)
        for _ in range(3):
            prog.tick(sim)
        assert prog.heartbeats == 3

    def test_heartbeat_without_horizon_or_flows(self, sim):
        out = io.StringIO()
        prog = ProgressReporter(stream=out)
        prog.tick(sim, force=True)
        line = out.getvalue()
        assert "sim=0.00ms" in line
        assert "eta=?" in line  # nothing to extrapolate from


class TestPhaseAndFinish:
    def test_phase_line_always_prints(self):
        out = io.StringIO()
        prog = ProgressReporter(label="hybrid", stream=out, interval_s=3600.0)
        prog.phase("refine", round=2, hot_links=4)
        assert out.getvalue() == "[progress] hybrid phase refine: round=2 hot_links=4\n"

    def test_finish_summarizes_run(self, sim):
        out = io.StringIO()
        prog = ProgressReporter(stream=out)
        sim.schedule(us(1), lambda arg: None)
        sim.run(until=us(5))
        prog.finish(sim, completed=10, total=10)
        line = out.getvalue()
        assert "done" in line
        assert "flows=10/10" in line
        assert "events/s=" in line
        assert "wall=" in line


class TestDriveLoopWiring:
    def test_fct_run_emits_at_least_one_heartbeat(self):
        """drive_fct forces the first tick, so even a quick run heartbeats
        with the horizon and flow totals filled in."""
        out = io.StringIO()
        obs = RunObservability(
            registry=MetricsRegistry(),
            progress=ProgressReporter(label="fncc", stream=out),
        )
        run_fct_experiment(
            "fncc", workload="websearch", n_flows=20, seed=2,
            max_horizon_ms=30.0, obs=obs,
        )
        obs.detach()
        text = out.getvalue()
        assert obs.progress.heartbeats >= 1
        beats = [l for l in text.splitlines() if "events/s=" in l and "eta=" in l]
        assert beats, text
        assert "/20" in beats[0]  # flow total wired through
        assert "/30.00ms" in beats[0]  # horizon wired through
        assert "done" in text.splitlines()[-1]
