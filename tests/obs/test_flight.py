"""FlightRecorder: crash-state dumps on injected failures."""

import json

import pytest

from repro.exec import SweepError
from repro.hybrid.fluid import FluidStallError
from repro.metrics.monitors import QueueSampler
from repro.obs import (
    EventTracer,
    FlightRecorder,
    MetricsRegistry,
    RunObservability,
)
from repro.units import us


def loaded_dumbbell(sim, obs=None):
    from helpers import make_dumbbell
    from repro.experiments.common import launch_flows
    from repro.traffic.generator import staggered_elephants
    from repro.units import MB

    topo, env = make_dumbbell(sim, cc="fncc")
    if obs is not None:
        # Attach before launch so the flow-lifecycle hooks see the starts.
        obs.attach(sim, topo)
    flows = staggered_elephants(
        [h.host_id for h in topo.hosts[:2]], topo.hosts[-1].host_id, 5 * MB, us(50)
    )
    launch_flows(topo, flows, env)
    return topo


class TestGuardDump:
    def test_fluid_stall_dumps_state(self, sim, tmp_path):
        """The acceptance-criterion path: an injected FluidStallError inside
        the guard produces a diagnosis file with exception, engine state,
        trace tail and registry snapshot — then re-raises."""
        path = tmp_path / "fr.json"
        obs = RunObservability(
            registry=MetricsRegistry(),
            tracer=EventTracer(),
            flight=FlightRecorder(path=str(path)),
        )
        topo = loaded_dumbbell(sim, obs=obs)
        with pytest.raises(FluidStallError):
            with obs.guard(sim=sim, topo=topo):
                sim.run(until=us(30))
                raise FluidStallError("all active flows stalled at t=30us")
        assert obs.flight.dumped_path == str(path)
        doc = json.loads(path.read_text())
        assert doc["exception"]["type"] == "FluidStallError"
        assert "stalled" in doc["exception"]["message"]
        assert "FluidStallError" in doc["exception"]["traceback"]
        eng = doc["engine"]
        assert eng["now_ps"] == sim.now and eng["now_ps"] > 0
        assert eng["events_dispatched"] > 0
        assert "queue_len" in eng and "pool_len" in eng
        # Port/flow state rides along, busiest first and bounded.
        assert doc["ports"] and doc["ports"][0]["tx_packets"] >= 0
        assert {"node", "port", "qbytes", "drops"} <= set(doc["ports"][0])
        assert isinstance(doc["flows"], list)
        assert doc["trace_tail"], "trace ring tail must be captured"
        assert doc["trace_counts"]["flow"] > 0
        assert doc["registry"]["counters"]["engine.events_dispatched"] > 0

    def test_sweep_error_carries_worker_traceback(self, sim, tmp_path):
        path = tmp_path / "fr.json"
        flight = FlightRecorder(path=str(path))
        err = SweepError(
            "worker died",
            key=("fncc", 7),
            worker_traceback="Traceback ...\nValueError: boom\n",
        )
        with pytest.raises(SweepError):
            with flight.guard(sim=sim):
                raise err
        doc = json.loads(path.read_text())
        assert doc["exception"]["type"] == "SweepError"
        assert "ValueError: boom" in doc["exception"]["worker_traceback"]
        assert doc["exception"]["sweep_key"] == repr(("fncc", 7))

    def test_crash_dump_disarms_registered_samplers(self, sim, tmp_path):
        """A dump must stop the run's samplers so the crashed simulator is
        not left with armed Periodics."""
        topo = loaded_dumbbell(sim)
        mon = QueueSampler(sim, topo.switches[0].ports[0], interval_ps=us(1))
        flight = FlightRecorder(path=str(tmp_path / "fr.json"))
        with pytest.raises(RuntimeError):
            with flight.guard(sim=sim, topo=topo):
                sim.run(until=us(10))
                raise RuntimeError("injected")
        n = len(mon.series)
        sim.run(until=us(50))
        assert len(mon.series) == n, "sampler kept firing after the dump"

    def test_no_dump_on_clean_exit(self, sim, tmp_path):
        path = tmp_path / "fr.json"
        flight = FlightRecorder(path=str(path))
        with flight.guard(sim=sim):
            sim.run(until=us(1))
        assert flight.dumped_path is None
        assert not path.exists()


class TestDumpRobustness:
    def test_dump_never_raises(self, tmp_path, capsys):
        """A recorder that dies while recording would mask the real
        failure — dump() swallows its own errors."""
        flight = FlightRecorder(path=str(tmp_path / "no" / "such" / "dir" / "f.json"))
        assert flight.dump(RuntimeError("primary failure")) == ""
        assert flight.dumped_path is None
        assert "flight recorder failed" in capsys.readouterr().err

    def test_dump_without_exception_or_bindings(self, tmp_path):
        path = tmp_path / "fr.json"
        flight = FlightRecorder(path=str(path))
        assert flight.dump() == str(path)
        doc = json.loads(path.read_text())
        assert doc["exception"]["type"] is None
        assert "engine" not in doc  # never bound to a sim


class TestFaultsSection:
    def test_armed_run_dumps_faults_section(self, sim, tmp_path):
        """A run with an armed injector + watchdog dumps a ``faults``
        section: plan name, counters, event timeline, active fault state,
        and per-switch watchdog state (DESIGN.md §10)."""
        from repro.faults import FaultInjector, FaultPlan
        from repro.net.switch import PfcWatchdogConfig, arm_watchdog

        topo = loaded_dumbbell(sim)
        plan = (
            FaultPlan("crashdump")
            .link_down("sw0", "sw1", at_ps=us(5))
            .gray_loss("sw1", "sw2", start_ps=us(1), end_ps=us(40), prob=0.1)
        )
        injector = FaultInjector(plan).arm(sim, topo, seeds=topo.seeds)
        wd = arm_watchdog(topo.switches[0], PfcWatchdogConfig(detect_ps=us(10)))
        path = tmp_path / "fr.json"
        flight = FlightRecorder(path=str(path))
        with pytest.raises(RuntimeError):
            with flight.guard(sim=sim, topo=topo):
                sim.run(until=us(30))
                raise RuntimeError("mid-outage crash")
        doc = json.loads(path.read_text())
        faults = doc["faults"]
        assert faults["plan"] == "crashdump"
        assert faults["specs"] == 2
        assert faults["counters"]["events"] > 0
        assert any(ev["event"] == "link_down" for ev in faults["timeline"])
        assert ["sw0", "sw1"] in faults["active"]["dead_links"]
        wd_rows = faults["watchdogs"]
        assert [row["switch"] for row in wd_rows] == [topo.switches[0].name]
        assert wd_rows[0] == wd.state()
        # Keep the injector from leaking wrappers into later tests.
        injector.disarm()

    def test_healthy_run_has_no_faults_section(self, sim, tmp_path):
        """faults=None runs dump the pre-existing schema: no key at all."""
        topo = loaded_dumbbell(sim)
        path = tmp_path / "fr.json"
        flight = FlightRecorder(path=str(path))
        with pytest.raises(RuntimeError):
            with flight.guard(sim=sim, topo=topo):
                sim.run(until=us(30))
                raise RuntimeError("healthy crash")
        doc = json.loads(path.read_text())
        assert "faults" not in doc
