"""Zero-perturbation property suite (DESIGN.md §8).

Registry/counter-level observability is pull-based: enabling a full
:class:`repro.obs.RunObservability` bundle (registry + tracer + flight
recorder) must leave every simulation observable byte-identical — FCT
fingerprints, every per-port :class:`PortStats` counter, the PFC frame
ledger — with frame trains ON and OFF, and must NOT close the frame-train
gate (unlike :class:`repro.metrics.tap.PacketTap` and the tap-like ``pkt``
trace category, which wrap ``receive`` and therefore demote trains).

Extends the A/B pattern of ``tests/property/test_trains.py`` with a third
axis: obs on vs off.
"""

import pytest

import repro.sim.engine as engine
from repro.experiments.fct_experiment import run_fct_experiment
from repro.experiments.lbmatrix import run_lb_cell
from repro.metrics import pfc_frame_totals
from repro.obs import EventTracer, FlightRecorder, MetricsRegistry, RunObservability


@pytest.fixture(autouse=True)
def _restore_trains_flag():
    saved = engine.TRAINS
    yield
    engine.TRAINS = saved


def _nodes(topo):
    return list(topo.hosts) + list(topo.switches)


def port_stats_fingerprint(topo):
    out = []
    for node in _nodes(topo):
        for port in node.ports:
            s = port.stats
            out.append(
                (
                    node.name,
                    port.index,
                    s.tx_packets,
                    s.tx_bytes,
                    s.rx_packets,
                    s.rx_bytes,
                    s.max_qlen,
                    s.drops,
                    s.ecn_marked,
                    s.pause_sent,
                    s.pause_received,
                    s.resume_sent,
                    s.resume_received,
                )
            )
    return tuple(out)


def train_frames_total(topo):
    return sum(p.train_frames for n in _nodes(topo) for p in n.ports)


def _full_bundle(tmp_path=None):
    return RunObservability(
        registry=MetricsRegistry(),
        tracer=EventTracer(),
        flight=FlightRecorder(path=str(tmp_path / "fr.json") if tmp_path else None),
    )


def _fig14_obs(obs):
    r = run_fct_experiment(
        "fncc", workload="websearch", n_flows=60, seed=5, max_horizon_ms=30.0,
        obs=obs,
    )
    if obs is not None:
        obs.detach()
    return (
        r.fct_fingerprint(),
        port_stats_fingerprint(r.topo),
        pfc_frame_totals(_nodes(r.topo)),
        train_frames_total(r.topo),
    )


def _pause_storm_obs(obs):
    # Tight XOFF threshold: real PAUSE/RESUME traffic, the regime where a
    # careless _send_pfc wrapper would shift wire timestamps.
    r = run_fct_experiment(
        "fncc", workload="websearch", n_flows=40, seed=3, max_horizon_ms=30.0,
        pfc_xoff=40_000, obs=obs,
    )
    if obs is not None:
        obs.detach()
    return (
        r.fct_fingerprint(),
        port_stats_fingerprint(r.topo),
        pfc_frame_totals(_nodes(r.topo)),
        train_frames_total(r.topo),
    )


def _lb_cell_obs(obs):
    cell = run_lb_cell(
        "conweave", "fncc", workload="websearch", n_flows=50, seed=4, obs=obs
    )
    if obs is not None:
        obs.detach()
    return (
        cell.fct_fingerprint(),
        port_stats_fingerprint(cell.topo),
        pfc_frame_totals(_nodes(cell.topo)),
        train_frames_total(cell.topo),
    )


def _ab_obs(run, trains: bool):
    """The same scenario with obs off and with a full bundle attached."""
    engine.TRAINS = trains
    plain = run(None)
    engine.TRAINS = trains
    observed = run(_full_bundle())
    return plain, observed


class TestObsIsByteIdentical:
    @pytest.mark.parametrize("trains", [True, False], ids=["trains-on", "trains-off"])
    def test_fig14_slice(self, trains):
        plain, observed = _ab_obs(_fig14_obs, trains)
        assert plain[:3] == observed[:3]
        # Gate guard: registry/tracer hooks must not close the train gate —
        # the fused path fires equally with and without the bundle.
        assert plain[3] == observed[3]
        if trains:
            assert observed[3] > 0, "trains must engage with obs attached"
        else:
            assert observed[3] == 0

    @pytest.mark.parametrize("trains", [True, False], ids=["trains-on", "trains-off"])
    def test_pause_storm(self, trains):
        plain, observed = _ab_obs(_pause_storm_obs, trains)
        assert plain[:3] == observed[:3]
        assert plain[3] == observed[3]
        assert plain[2]["pause_sent"] > 0, "scenario must exercise PFC"

    @pytest.mark.parametrize("trains", [True, False], ids=["trains-on", "trains-off"])
    def test_lbmatrix_conweave_slice(self, trains):
        plain, observed = _ab_obs(_lb_cell_obs, trains)
        assert plain[:3] == observed[:3]
        assert plain[3] == observed[3]


class TestTraceHooksObserve:
    def test_pfc_and_flow_events_captured_without_perturbation(self):
        engine.TRAINS = True
        obs = _full_bundle()
        _pause_storm_obs(obs)
        assert obs.tracer.counts["flow"] > 0
        assert obs.tracer.counts["pfc"] > 0
        snap = obs.snapshot()
        assert snap["counters"]["pfc.pause_sent"] > 0
        assert snap["counters"]["flows.completed"] > 0

    def test_lb_reroute_callback_fires(self):
        engine.TRAINS = True
        obs = _full_bundle()
        cell_obs = _lb_cell_obs(obs)
        snap = obs.snapshot()
        # The cell must exercise rerouting for the lb category to matter.
        if snap["counters"].get("lb.reroutes", 0) > 0:
            assert obs.tracer.counts["lb"] > 0
        assert snap["counters"]["lb.probes"] > 0
        assert cell_obs[0]  # flows completed


class TestTapLikeHooksCloseGate:
    def test_pkt_category_tap_demotes_trains(self):
        """The opt-in ``pkt`` category wraps ``receive`` like PacketTap:
        it MUST close the gate (and restore it on detach)."""
        from repro.experiments.common import build_cc_env
        from repro.obs.trace import PKT
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell
        from repro.units import us

        engine.TRAINS = True
        sim = Simulator()
        topo = dumbbell(
            sim,
            n_senders=2,
            n_switches=2,
            link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
            switch_config=build_cc_env("fncc").switch_config,
            seeds=SeedSequenceFactory(1),
        )
        sw = topo.switches[0]
        assert sw.train_transparent()
        tracer = EventTracer(categories=(PKT,))
        tracer.tap_switch(sw)
        assert not sw.train_transparent(), "pkt tap must close the train gate"
        tracer.detach()
        assert "receive" not in sw.__dict__
        assert sw.train_transparent()

    def test_pkt_tap_requires_category(self):
        from repro.experiments.common import build_cc_env
        from repro.sim.engine import Simulator
        from repro.sim.rng import SeedSequenceFactory
        from repro.topo.base import LinkSpec
        from repro.topo.dumbbell import dumbbell
        from repro.units import us

        sim = Simulator()
        topo = dumbbell(
            sim,
            n_senders=2,
            n_switches=2,
            link=LinkSpec(rate_gbps=100.0, prop_delay_ps=us(1.5)),
            switch_config=build_cc_env("fncc").switch_config,
            seeds=SeedSequenceFactory(1),
        )
        tracer = EventTracer()  # default categories exclude "pkt"
        with pytest.raises(ValueError):
            tracer.tap_switch(topo.switches[0])
