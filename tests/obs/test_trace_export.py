"""EventTracer ring semantics and the Chrome trace-event export/validate
round trip."""

import json

import pytest

from repro.obs import EventTracer, MetricsRegistry
from repro.obs.export import (
    REQUIRED_REGISTRY_COUNTERS,
    export_chrome_trace,
    validate_chrome_trace,
)


class TestTracerCore:
    def test_category_filter(self):
        tr = EventTracer(categories=("flow",))
        tr.emit("flow", "a", 10)
        tr.emit("pfc", "b", 20)  # disabled: dropped silently
        assert len(tr.events) == 1
        assert tr.events[0].name == "a"
        assert tr.enabled("flow") and not tr.enabled("pfc")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(categories=("nope",))

    def test_ring_eviction_keeps_counts(self):
        tr = EventTracer(categories=("flow",), capacity=8)
        for i in range(20):
            tr.emit("flow", f"e{i}", i)
        assert len(tr.events) == 8
        assert tr.counts["flow"] == 20
        assert tr.dropped == 12
        # tail() is the newest slice.
        assert [e.name for e in tr.tail(3)] == ["e17", "e18", "e19"]

    def test_top_categories_sorted(self):
        tr = EventTracer()
        for _ in range(3):
            tr.emit("cc", "rate", 0)
        tr.emit("flow", "start", 0)
        top = tr.top_categories()
        assert top[0] == ("cc", 3)
        assert ("flow", 1) in top

    def test_complete_event_round_trip(self):
        tr = EventTracer()
        tr.emit("flow", "flow 1", 1_000_000, ph="X", dur_ps=2_000_000,
                args={"flow": 1})
        d = tr.events[0].to_dict()
        assert d["ph"] == "X" and d["dur_ps"] == 2_000_000


class TestChromeExport:
    def _traced(self):
        tr = EventTracer()
        tr.emit("flow", "flow_start", 5_000_000, args={"flow": 1})
        tr.emit("flow", "flow 1 (100B)", 5_000_000, ph="X", dur_ps=7_000_000)
        tr.emit("pfc", "pause", 6_000_000, args={"node": "s0"})
        return tr

    def test_export_and_validate(self, tmp_path):
        path = tmp_path / "t.json"
        export_chrome_trace(str(path), self._traced())
        info = validate_chrome_trace(str(path))
        assert info["events"] == 3
        assert info["categories"] == {"flow": 2, "pfc": 1}
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        # ts is microseconds in the trace-event format: 5e6 ps -> 5 us.
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert data[0]["ts"] == 5.0
        x = [e for e in data if e["ph"] == "X"][0]
        assert x["dur"] == 7.0

    def test_multi_cell_export_with_registry(self, tmp_path):
        path = tmp_path / "t.json"
        reg = MetricsRegistry()
        for name in REQUIRED_REGISTRY_COUNTERS:
            reg.counter(name).inc()
        export_chrome_trace(
            str(path),
            [("fncc", self._traced()), ("hpcc", self._traced())],
            registry=reg.snapshot(),
        )
        info = validate_chrome_trace(str(path), require_registry=True)
        assert info["events"] == 6
        assert info["registry_counters"] >= len(REQUIRED_REGISTRY_COUNTERS)
        doc = json.loads(path.read_text())
        # One trace process per cell, named by its label.
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"fncc", "hpcc"}
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) == 2

    def test_validate_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "i"}]}))
        with pytest.raises(ValueError):
            validate_chrome_trace(str(path))

    def test_validate_requires_registry_when_asked(self, tmp_path):
        path = tmp_path / "t.json"
        export_chrome_trace(str(path), self._traced())  # no registry
        validate_chrome_trace(str(path))  # fine without the flag
        with pytest.raises(ValueError):
            validate_chrome_trace(str(path), require_registry=True)

    def test_cli_entry(self, tmp_path, capsys):
        from repro.obs.export import main

        path = tmp_path / "t.json"
        export_chrome_trace(str(path), self._traced())
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main([str(path), "--require-registry"]) == 1
